"""The monitoring service core: registrations, verdicts, mitigation.

:class:`MonitorService` is the synchronous heart of the daemon — the
asyncio front-end (:mod:`repro.service.api`) is a thin shell around it,
so every behaviour here is testable without an event loop, and the
offline :class:`~repro.stream.monitor.OnlineMonitor` parity the
integration suite pins holds by construction (same replayers, same
detectors, same events).

The loop it implements is ingest → shard → verdict → mitigation:

1. events enter through :meth:`ingest_line` / :meth:`ingest_event` and
   are routed by the :class:`~repro.service.shards.ShardPlane`;
2. :meth:`poll` flushes the shards, drains freshly raised alarms, and
   attributes each to the tenants whose registrations the alarmed NLRI
   concerns (covering *and* covered — the sub-prefix case), updating
   per-tenant detection-latency stats;
3. a CONFIRMED verdict (``hijack`` / ``forged-path`` / ``route-leak``)
   against an ``auto_mitigate`` registration fires the reactive hook:
   a ``DefenseActivate`` for the registration's deployers plus
   deaggregation — the tenant's origin announces the two more-specific
   halves of the hijacked NLRI (with fresh ROAs, or the response would
   itself be INVALID), which out-compete the bogus route by
   longest-prefix match exactly as in the batch-side
   :func:`~repro.defense.mitigation.deaggregation_response`.

:meth:`victim_coverage` measures the mitigation's effect: the fraction
of routing nodes whose most-specific live route for the contested space
originates from the tenant — before and after, so "measurably restores
the victim's routes" is a number in the record, not a claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.attacks.lab import HijackLab
from repro.detection.probes import ProbeSet
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.prefixes.prefix import Prefix
from repro.service.shards import ShardPlane
from repro.service.tenants import LatencyStats, TenantRegistration, TenantRegistry
from repro.stream.events import (
    Announce,
    DefenseActivate,
    RoaPublish,
    RoaRevoke,
    StreamEvent,
)
from repro.stream.monitor import StreamAlarm

__all__ = [
    "CONFIRMED_VERDICTS",
    "MitigationRecord",
    "MonitorService",
    "ServiceVerdict",
]

#: Verdicts that arm the reactive hook — the attack cells where the
#: announcement is provably bogus, not merely a MOAS to investigate.
CONFIRMED_VERDICTS = frozenset({"hijack", "forged-path", "route-leak"})


@dataclass(frozen=True)
class ServiceVerdict:
    """One alarm attributed to one tenant (or unclaimed space)."""

    tenant: str | None
    shard: int
    alarm: StreamAlarm

    @property
    def confirmed(self) -> bool:
        return self.alarm.verdict in CONFIRMED_VERDICTS

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "tenant": self.tenant,
            "shard": self.shard,
            "confirmed": self.confirmed,
        }
        payload.update(self.alarm.as_dict())
        return payload


@dataclass(frozen=True)
class MitigationRecord:
    """One firing of the auto-mitigation hook and its measured effect."""

    at: float
    tenant: str
    prefix: str
    verdict: str
    deployers: tuple[int, ...]
    announced: tuple[str, ...]
    coverage_before: float
    coverage_after: float

    def as_dict(self) -> dict[str, object]:
        return {
            "at": self.at,
            "tenant": self.tenant,
            "prefix": self.prefix,
            "verdict": self.verdict,
            "deployers": list(self.deployers),
            "announced": list(self.announced),
            "coverage_before": self.coverage_before,
            "coverage_after": self.coverage_after,
        }


class MonitorService:
    """The always-on multi-tenant hijack monitor over one lab topology."""

    def __init__(
        self,
        lab: HijackLab,
        *,
        shards: int = 1,
        probes: ProbeSet | None = None,
        batch_window: float = 0.0,
        queue_limit: int = 64,
        metrics: Metrics | None = None,
    ) -> None:
        self.lab = lab
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.registry = TenantRegistry()
        self.plane = ShardPlane(
            lab,
            shards=shards,
            registry=self.registry,
            probes=probes,
            batch_window=batch_window,
            queue_limit=queue_limit,
            metrics=self.metrics,
        )
        self.verdicts: list[ServiceVerdict] = []
        self.mitigations: list[MitigationRecord] = []
        self._stats: dict[str, LatencyStats] = {}
        self._mitigated: set[tuple[str, Prefix, str]] = set()
        self._started = time.monotonic()

    # -- registration plane ------------------------------------------------

    def register(
        self,
        tenant: str,
        prefix: Prefix | str,
        origin_asn: int,
        *,
        max_length: int | None = None,
        auto_mitigate: bool = False,
        deployers: tuple[int, ...] = (),
    ) -> TenantRegistration:
        """Register a watch and publish the tenant's ROA into every shard."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        view = self.lab.view
        if not view.has_asn(origin_asn):
            raise ValueError(f"unknown origin AS{origin_asn}")
        for deployer in deployers:
            if not view.has_asn(deployer):
                raise ValueError(f"unknown deployer AS{deployer}")
        registration = TenantRegistration(
            tenant=tenant,
            prefix=prefix,
            origin_asn=origin_asn,
            max_length=max_length,
            auto_mitigate=auto_mitigate,
            deployer_asns=tuple(deployers),
        )
        self.registry.register(registration)
        self.plane.submit(
            RoaPublish(
                at=self.plane.clock,
                prefix=prefix,
                origin_asn=origin_asn,
                max_length=max_length,
            )
        )
        self.plane.flush()
        self.metrics.count("service.registrations")
        return registration

    def deregister(self, tenant: str, prefix: Prefix | str) -> TenantRegistration:
        """Drop a watch and revoke the ROA it published."""
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        registration = self.registry.deregister(tenant, prefix)
        self.plane.submit(
            RoaRevoke(
                at=self.plane.clock,
                prefix=registration.prefix,
                origin_asn=registration.origin_asn,
                max_length=registration.max_length,
            )
        )
        self.plane.flush()
        self.metrics.count("service.deregistrations")
        return registration

    # -- ingest ------------------------------------------------------------

    def ingest_event(self, event: StreamEvent) -> None:
        self.plane.submit(event)

    def ingest_line(self, line: str) -> bool:
        return self.plane.submit_line(line)

    # -- the verdict loop --------------------------------------------------

    def poll(self) -> list[ServiceVerdict]:
        """Flush, drain new alarms, attribute them, run auto-mitigation."""
        self.plane.flush()
        fresh: list[ServiceVerdict] = []
        for shard, alarm in self.plane.drain_alarms():
            matched = self.registry.match(alarm.prefix)
            if not matched:
                fresh.append(ServiceVerdict(tenant=None, shard=shard, alarm=alarm))
                continue
            for registration in matched:
                verdict = ServiceVerdict(
                    tenant=registration.tenant, shard=shard, alarm=alarm
                )
                fresh.append(verdict)
                self._stats.setdefault(
                    registration.tenant, LatencyStats()
                ).add(alarm.latency_time)
                if (
                    registration.auto_mitigate
                    and verdict.confirmed
                    and registration.origin_asn not in alarm.invalid_origins
                ):
                    self._mitigate(registration, alarm)
        self.verdicts.extend(fresh)
        if fresh:
            self.metrics.count("service.verdicts", len(fresh))
        return fresh

    def _mitigate(self, registration: TenantRegistration, alarm: StreamAlarm) -> None:
        key = (registration.tenant, alarm.prefix, alarm.verdict)
        if key in self._mitigated:
            return
        self._mitigated.add(key)
        coverage_before = self.victim_coverage(alarm.prefix, registration.origin_asn)
        now = self.plane.clock
        events: list[StreamEvent] = []
        if registration.deployer_asns:
            events.append(
                DefenseActivate(at=now, deployer_asns=registration.deployer_asns)
            )
        if alarm.prefix.length < 32:
            halves = list(alarm.prefix.subnets())
        else:
            halves = [alarm.prefix]
        announced: list[str] = []
        for half in halves:
            # The deaggregated more-specifics need their own ROAs or the
            # response is INVALID under the tenant's covering ROA and the
            # service would page on its own counter-announcement.
            events.append(
                RoaPublish(at=now, prefix=half, origin_asn=registration.origin_asn)
            )
            events.append(
                Announce(at=now, prefix=half, origin_asn=registration.origin_asn)
            )
            announced.append(str(half))
        for event in events:
            self.plane.submit(event)
        self.plane.flush()
        coverage_after = self.victim_coverage(alarm.prefix, registration.origin_asn)
        self.mitigations.append(
            MitigationRecord(
                at=now,
                tenant=registration.tenant,
                prefix=str(alarm.prefix),
                verdict=alarm.verdict,
                deployers=registration.deployer_asns,
                announced=tuple(announced),
                coverage_before=coverage_before,
                coverage_after=coverage_after,
            )
        )
        self.metrics.count("service.mitigations")

    # -- measurement -------------------------------------------------------

    def victim_coverage(self, prefix: Prefix, origin_asn: int) -> float:
        """Fraction of routing nodes whose traffic for *prefix* reaches
        *origin_asn*, under longest-prefix-match over every live ledger.

        Sampled at one representative address per half of *prefix* (the
        deaggregation granularity), with most-specific-first fall-through:
        a node covered by a more-specific ledger that gives it no route
        falls back to the next covering ledger, as a FIB would.
        """
        live = [
            (stored, ledger)
            for stored, ledger in self.plane.ledgers().items()
            if ledger.state is not None
        ]
        if prefix.length < 32:
            samples = [half.first_address() for half in prefix.subnets()]
        else:
            samples = [prefix.first_address()]
        node_count = len(self.lab.view)
        total = node_count * len(samples)
        if total == 0:
            return 0.0
        reached = 0
        for address in samples:
            covering = sorted(
                (
                    (stored, ledger)
                    for stored, ledger in live
                    if stored.contains_address(address)
                ),
                key=lambda item: -item[0].length,
            )
            resolved = [
                (ledger.state, ledger.origin_asns()) for _stored, ledger in covering
            ]
            for node in range(node_count):
                for state, asn_of_origin in resolved:
                    origin_node = state.origin_of[node]
                    if origin_node == -1:
                        continue
                    if asn_of_origin.get(origin_node) == origin_asn:
                        reached += 1
                    break
        return reached / total

    # -- API payloads ------------------------------------------------------

    def health(self) -> dict[str, object]:
        return {
            "status": "ok",
            "uptime_s": time.monotonic() - self._started,
            "clock": self.plane.clock,
            "shards": self.plane.shards,
            "probe_set": self.plane.probes.name,
            "tenants": len(self.registry.tenants()),
            "registrations": len(self.registry),
            "roas": self.plane.authority_size(),
            "events": self.plane.counts(),
            "verdicts": len(self.verdicts),
            "mitigations": len(self.mitigations),
        }

    def verdict_payloads(self, tenant: str | None = None) -> list[dict[str, object]]:
        return [
            verdict.as_dict()
            for verdict in self.verdicts
            if tenant is None or verdict.tenant == tenant
        ]

    def mitigation_payloads(self) -> list[dict[str, object]]:
        return [record.as_dict() for record in self.mitigations]

    def tenant_stats(self, tenant: str) -> dict[str, object]:
        stats = self._stats.get(tenant, LatencyStats())
        return {
            "tenant": tenant,
            "registrations": [
                registration.as_dict()
                for registration in self.registry.for_tenant(tenant)
            ],
            "latency": stats.as_dict(),
            "verdicts": sum(1 for v in self.verdicts if v.tenant == tenant),
        }

    def tenant_payloads(self) -> list[dict[str, object]]:
        return [self.tenant_stats(tenant) for tenant in self.registry.tenants()]

    def metrics_snapshot(self) -> dict[str, object]:
        return dict(self.metrics.snapshot())
