"""The asyncio front-end: JSONL ingest workers and the JSON API.

The daemon follows the sync-core / async-shell split: every decision
lives in :class:`~repro.service.daemon.MonitorService`; this module only
moves bytes. Three kinds of tasks run on the loop:

* **ingest workers** — one per shard, each draining an
  :class:`asyncio.Queue` into its shard's replayer, so independent
  prefix families make progress independently;
* an optional **feed task** tailing a JSONL file (``--input`` /
  ``--follow``), the "tails event feeds" half of the ingest front-end;
* the **HTTP server** — a deliberately minimal HTTP/1.1 implementation
  over :func:`asyncio.start_server` (request line, headers,
  ``Content-Length`` body; one request per connection), because the
  stdlib-only constraint is part of the subsystem's contract.

Endpoints (all JSON):

====== ================================ =======================================
GET    ``/health``                      service health incl. malformed counter
GET    ``/metrics``                     :mod:`repro.obs` snapshot
GET    ``/tenants``                     per-tenant stats + registrations
GET    ``/tenants/<t>/stats``           one tenant's latency stats
GET    ``/tenants/<t>/verdicts``        one tenant's verdicts
GET    ``/verdicts``                    every verdict raised so far
GET    ``/mitigations``                 auto-mitigation records
POST   ``/tenants/<t>/prefixes``        register prefix+ROA (JSON body)
POST   ``/tenants/<t>/deregister``      drop a registration (JSON body)
POST   ``/events``                      ingest a JSONL batch, return verdicts
POST   ``/flush``                       force a poll, return fresh verdicts
POST   ``/shutdown``                    clean shutdown
====== ================================ =======================================
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from pathlib import Path
from typing import IO

from repro.service.daemon import MonitorService
from repro.stream.events import StreamEvent, StreamFormatError, parse_event_line

__all__ = ["ServiceDaemon", "ServiceThread"]


def _file_identity(handle: IO[bytes]) -> tuple[int, int]:
    """The (device, inode) pair that survives renames but not rotation."""
    stat = os.fstat(handle.fileno())
    return (stat.st_dev, stat.st_ino)

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed"}


class ServiceDaemon:
    """The asyncio shell: queues, workers, feed task and HTTP server."""

    def __init__(
        self,
        service: MonitorService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None
        self._queues: list[asyncio.Queue[StreamEvent]] = []
        self._workers: list[asyncio.Task[None]] = []
        self._feeds: list[asyncio.Task[None]] = []
        self._stopped = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        plane = self.service.plane
        self._queues = [asyncio.Queue() for _ in range(plane.shards)]
        self._workers = [
            asyncio.create_task(self._worker(shard), name=f"service-shard-{shard}")
            for shard in range(plane.shards)
        ]
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self) -> None:
        if self._stopped.is_set():
            return
        for task in self._feeds:
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._drain()
        for task in self._workers:
            task.cancel()
        self.service.poll()
        self._stopped.set()

    async def run(self) -> None:
        """Start, serve until a ``POST /shutdown`` arrives, tear down."""
        await self.start()
        await self.wait_stopped()

    # -- ingest ------------------------------------------------------------

    async def submit(self, event: StreamEvent) -> None:
        for shard in self.service.plane.begin_ingest(event):
            await self._queues[shard].put(event)

    async def _worker(self, shard: int) -> None:
        queue = self._queues[shard]
        plane = self.service.plane
        while True:
            event = await queue.get()
            try:
                plane.apply(shard, event)
            except Exception as error:  # same isolation contract as replay
                if len(plane.errors) < 32:
                    plane.errors.append(f"shard {shard}: {error}")
            finally:
                queue.task_done()

    async def _drain(self) -> None:
        """Wait until every enqueued event has been applied."""
        await asyncio.gather(*(queue.join() for queue in self._queues))

    async def ingest_text(self, text: str) -> dict[str, object]:
        """Ingest a JSONL batch: enqueue, drain, poll, report."""
        accepted = 0
        malformed = 0
        for raw in text.splitlines():
            line = raw.strip()
            if not line:
                continue
            try:
                event = parse_event_line(line)
            except StreamFormatError as error:
                self.service.plane.note_malformed(error)
                malformed += 1
                continue
            await self.submit(event)
            accepted += 1
        await self._drain()
        verdicts = self.service.poll()
        return {
            "accepted": accepted,
            "malformed": malformed,
            "verdicts": [verdict.as_dict() for verdict in verdicts],
        }

    def feed_file(self, path: str | Path, *, follow: bool = False) -> None:
        """Start a task feeding (and optionally tailing) a JSONL file."""
        self._feeds.append(
            asyncio.get_running_loop().create_task(self._feed(Path(path), follow))
        )

    async def _feed(self, path: Path, follow: bool) -> None:
        """Feed (and optionally tail) a JSONL file, surviving log rotation.

        The file is read in binary so the byte offset is exact, and
        split on newlines by hand: while following, a trailing fragment
        with no newline yet is held back until its newline lands — a
        writer caught mid-line must not produce a spurious malformed
        count. At EOF the tail loop re-stats the path; a shrunken size
        (truncation) or a changed ``(st_dev, st_ino)`` (rotation) means
        the read position no longer refers to the data it came from, so
        the feed reopens from the start of the current file and counts
        ``service.feed.reopened``. A transiently missing path (the
        rotation window) just waits for the next poll.
        """
        handle = path.open("rb")
        try:
            identity = _file_identity(handle)
            offset = 0
            buffer = b""
            while True:
                chunk = handle.read(65536)
                if chunk:
                    offset += len(chunk)
                    buffer += chunk
                    *lines, buffer = buffer.split(b"\n")
                    for raw in lines:
                        await self._feed_line(raw)
                    continue
                if not follow:
                    if buffer:  # no trailing newline at final EOF
                        await self._feed_line(buffer)
                    await self._drain()
                    self.service.poll()
                    return
                await self._drain()
                self.service.poll()
                try:
                    stat = path.stat()
                except OSError:
                    stat = None  # mid-rotation window: keep waiting
                if stat is not None and (
                    (stat.st_dev, stat.st_ino) != identity
                    or stat.st_size < offset
                ):
                    handle.close()
                    handle = path.open("rb")
                    identity = _file_identity(handle)
                    offset = 0
                    buffer = b""
                    self.service.metrics.count("service.feed.reopened")
                    continue
                await asyncio.sleep(0.1)
        finally:
            handle.close()

    async def _feed_line(self, raw: bytes) -> None:
        line = raw.decode("utf-8", "replace").strip()
        if not line:
            return
        try:
            event = parse_event_line(line)
        except StreamFormatError as error:
            self.service.plane.note_malformed(error)
            return
        await self.submit(event)

    # -- HTTP --------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._serve_one(reader)
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            reason = _REASONS.get(status, "OK")
            writer.write(
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, object] | list[object]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return 400, {"error": "bad Content-Length"}
        body = await reader.readexactly(length) if length else b""
        try:
            return await self._dispatch(method, path, body)
        except ValueError as error:
            return 400, {"error": str(error)}

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, object] | list[object]]:
        service = self.service
        segments = [segment for segment in path.split("?")[0].split("/") if segment]
        if method == "GET":
            if segments == ["health"]:
                return 200, service.health()
            if segments == ["metrics"]:
                return 200, service.metrics_snapshot()
            if segments == ["tenants"]:
                return 200, {"tenants": service.tenant_payloads()}
            if segments == ["verdicts"]:
                return 200, {"verdicts": service.verdict_payloads()}
            if segments == ["mitigations"]:
                return 200, {"mitigations": service.mitigation_payloads()}
            if len(segments) == 3 and segments[0] == "tenants":
                tenant = segments[1]
                if segments[2] == "stats":
                    return 200, service.tenant_stats(tenant)
                if segments[2] == "verdicts":
                    return 200, {"verdicts": service.verdict_payloads(tenant)}
            return 404, {"error": f"no such resource {path}"}
        if method == "POST":
            if segments == ["events"]:
                return 200, await self.ingest_text(body.decode("utf-8", "replace"))
            if segments == ["flush"]:
                await self._drain()
                verdicts = service.poll()
                return 200, {"verdicts": [v.as_dict() for v in verdicts]}
            if segments == ["shutdown"]:
                asyncio.get_running_loop().create_task(self.stop())
                return 200, {"status": "stopping"}
            if len(segments) == 3 and segments[0] == "tenants":
                tenant = segments[1]
                payload = _json_object(body)
                if segments[2] == "prefixes":
                    registration = service.register(
                        tenant,
                        _field_str(payload, "prefix"),
                        _field_int(payload, "origin"),
                        max_length=_field_opt_int(payload, "max_length"),
                        auto_mitigate=bool(payload.get("auto_mitigate", False)),
                        deployers=tuple(_field_int_list(payload, "deployers")),
                    )
                    return 200, registration.as_dict()
                if segments[2] == "deregister":
                    registration = service.deregister(
                        tenant, _field_str(payload, "prefix")
                    )
                    return 200, registration.as_dict()
            return 404, {"error": f"no such resource {path}"}
        return 405, {"error": f"method {method} not supported"}


def _json_object(body: bytes) -> dict[str, object]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"invalid JSON body: {error}") from error
    if not isinstance(payload, dict):
        raise ValueError("JSON body must be an object")
    return payload


def _field_str(payload: dict[str, object], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str):
        raise ValueError(f"missing/invalid {key!r}")
    return value


def _field_int(payload: dict[str, object], key: str) -> int:
    value = payload.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"missing/invalid {key!r}")
    return value


def _field_opt_int(payload: dict[str, object], key: str) -> int | None:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"invalid {key!r}")
    return value


def _field_int_list(payload: dict[str, object], key: str) -> list[int]:
    value = payload.get(key, [])
    if not isinstance(value, list) or not all(
        isinstance(item, int) and not isinstance(item, bool) for item in value
    ):
        raise ValueError(f"invalid {key!r}")
    return value


class ServiceThread:
    """Run a :class:`ServiceDaemon` on a background thread (tests, CLI).

    ``start()`` blocks until the listening port is known; ``stop()``
    requests a clean shutdown and joins the thread. The wrapped
    :class:`MonitorService` must only be touched from the daemon thread
    while running — interact over HTTP (or after ``stop()``).
    """

    def __init__(
        self, service: MonitorService, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.daemon = ServiceDaemon(service, host=host, port=port)
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None

    @property
    def port(self) -> int:
        return self.daemon.port

    @property
    def base_url(self) -> str:
        return f"http://{self.daemon.host}:{self.daemon.port}"

    def start(self) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.daemon.start()
        self._ready.set()
        await self.daemon.wait_stopped()

    def stop(self, timeout: float = 30.0) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                asyncio.run_coroutine_threadsafe(self.daemon.stop(), loop).result(
                    timeout=timeout
                )
            except Exception:
                pass
        self._thread.join(timeout=timeout)
