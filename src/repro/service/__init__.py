"""The always-on multi-tenant hijack-monitoring service.

The operational layer the ROADMAP's north star asks for: the offline
replay/monitor machinery (:mod:`repro.stream`) productionized into a
long-running daemon in the style of ARTEMIS's detection / mitigation /
monitoring microservice split. Tenants register the prefixes they
originate (:mod:`~repro.service.tenants`), announcements are routed by a
prefix trie to per-shard replayer+monitor pipelines
(:mod:`~repro.service.shards`), verdicts and per-tenant latency stats
are served over a stdlib-asyncio JSON API (:mod:`~repro.service.api`),
and CONFIRMED verdicts can trigger reactive DefenseActivate +
deaggregation events fed back into the stream
(:mod:`~repro.service.daemon`). See docs/service.md.
"""

from repro.service.api import ServiceDaemon, ServiceThread
from repro.service.daemon import (
    CONFIRMED_VERDICTS,
    MitigationRecord,
    MonitorService,
    ServiceVerdict,
)
from repro.service.shards import ShardPlane
from repro.service.tenants import LatencyStats, TenantRegistration, TenantRegistry

__all__ = [
    "CONFIRMED_VERDICTS",
    "LatencyStats",
    "MitigationRecord",
    "MonitorService",
    "ServiceDaemon",
    "ServiceThread",
    "ServiceVerdict",
    "ShardPlane",
    "TenantRegistration",
    "TenantRegistry",
]
