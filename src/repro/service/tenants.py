"""Tenant registrations and the trie-backed routing plane.

A monitoring service is *multi-tenant*: operators register the prefixes
they originate (with the ROA data the paper tells them to publish) and
the service watches the announcement stream on their behalf. The
registration plane answers the one routing question the service asks per
announcement: *which registrations does this NLRI concern?* — which is a
trie problem, not a scan problem. A registration for ``203.0.113.0/24``
must match announcements of the /24 itself, of any covering prefix (a
withdrawal-shadowing supernet) **and** of any more-specific carved out
of it, because the sub-prefix hijack — the paper's worst case — arrives
as a brand-new NLRI the tenant never announced.

:class:`LatencyStats` keeps the per-tenant detection-latency aggregates
the JSON API serves (count / mean / p50 / p95 over virtual seconds),
nearest-rank percentiles over every alarm attributed to the tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prefixes.prefix import Prefix
from repro.prefixes.trie import PrefixTrie

__all__ = ["LatencyStats", "TenantRegistration", "TenantRegistry"]


@dataclass(frozen=True)
class TenantRegistration:
    """One (tenant, prefix) watch: who owns the space and how to react.

    ``origin_asn`` is the origin the tenant declares legitimate (the ROA
    the service publishes on registration); ``auto_mitigate`` arms the
    reactive hook — on a CONFIRMED verdict the service emits a
    ``DefenseActivate`` for ``deployer_asns`` and deaggregates the
    hijacked space back into the stream on the tenant's behalf.
    """

    tenant: str
    prefix: Prefix
    origin_asn: int
    max_length: int | None = None
    auto_mitigate: bool = False
    deployer_asns: tuple[int, ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "tenant": self.tenant,
            "prefix": str(self.prefix),
            "origin": self.origin_asn,
            "max_length": self.max_length,
            "auto_mitigate": self.auto_mitigate,
            "deployers": list(self.deployer_asns),
        }


class TenantRegistry:
    """The trie of registrations, keyed by registered prefix.

    Several tenants may register the same prefix (an anycast consortium,
    or simply a test fixture), so each trie slot holds a per-tenant
    mapping. Lookups:

    * :meth:`match` — every registration an announced prefix concerns:
      registrations at or above it (``covering``) plus registrations
      strictly under it (``iter_covered`` — the supernet-watch case).
    * :meth:`covering_root` — the *shortest* registered prefix at or
      above a query, used as the shard-affinity anchor so a tenant's
      covering prefix and all hijacked more-specifics land on the same
      shard (the replay resolver and the monitor both need them
      co-located).
    """

    def __init__(self) -> None:
        self._trie: PrefixTrie[dict[str, TenantRegistration]] = PrefixTrie()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def register(self, registration: TenantRegistration) -> None:
        slot = self._trie.get(registration.prefix)
        if slot is None:
            slot = {}
            self._trie.insert(registration.prefix, slot)
        if registration.tenant not in slot:
            self._count += 1
        slot[registration.tenant] = registration

    def deregister(self, tenant: str, prefix: Prefix) -> TenantRegistration:
        slot = self._trie.get(prefix)
        if not slot or tenant not in slot:
            raise KeyError(f"{tenant} has no registration for {prefix}")
        registration = slot.pop(tenant)
        self._count -= 1
        if not slot:
            self._trie.remove(prefix)
        return registration

    def match(self, prefix: Prefix) -> list[TenantRegistration]:
        """Every registration the announcement of *prefix* concerns."""
        found: list[TenantRegistration] = []
        for _registered, slot in self._trie.covering(prefix):
            found.extend(slot.values())
        for _registered, slot in self._trie.iter_covered(prefix):
            found.extend(slot.values())
        return found

    def covering_root(self, prefix: Prefix) -> Prefix | None:
        """The shortest registered prefix at or above *prefix*, if any."""
        for registered, _slot in self._trie.covering(prefix):
            return registered
        return None

    def registrations(self) -> list[TenantRegistration]:
        return [
            registration
            for _prefix, slot in self._trie.items()
            for registration in slot.values()
        ]

    def tenants(self) -> list[str]:
        return sorted({reg.tenant for reg in self.registrations()})

    def for_tenant(self, tenant: str) -> list[TenantRegistration]:
        return [reg for reg in self.registrations() if reg.tenant == tenant]


@dataclass
class LatencyStats:
    """Detection-latency aggregates for one tenant (virtual seconds)."""

    samples: list[float] = field(default_factory=list)

    def add(self, latency: float) -> None:
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float | None:
        if not self.samples:
            return None
        return sum(self.samples) / len(self.samples)

    def percentile(self, fraction: float) -> float | None:
        """Nearest-rank percentile — no interpolation, matches the bench."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(1, -(-len(ordered) * fraction // 1))  # ceil without math
        return ordered[min(len(ordered), int(rank)) - 1]

    def as_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }
