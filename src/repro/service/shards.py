"""The sharded replay plane: per-prefix ledgers across worker shards.

One :class:`~repro.stream.replay.StreamReplayer` is a correct monitor
but a single serial pipeline. The service splits the prefix space across
*shards* — each shard owns its own replayer, online monitor and
detector — so independent prefixes converge independently (and, behind
the asyncio front-end, concurrently).

The routing rule is the correctness-bearing part. Announcements and
withdrawals are routed by **covering-root affinity**: the shard anchor
for an NLRI is the shortest *registered* prefix covering it (falling
back to the NLRI itself), hashed once and pinned. That keeps a tenant's
covering prefix and every hijacked more-specific on the same shard,
which two pieces of machinery silently require:

* the replay resolver (type-U / route-leak claims) does a longest-match
  walk over the *local* shard's ledgers to find the route the announcer
  re-announces;
* reactive deaggregation announces more-specifics that must compete —
  by longest-prefix match — against the hijacked NLRI in the same
  ledger family.

``RoaPublish`` / ``RoaRevoke`` / ``DefenseActivate`` events are
broadcast to every shard: registry and deployer state are global, and
keeping each shard's live :class:`~repro.registry.roa.RoaTable` complete
means each shard's detector judges with full knowledge.
"""

from __future__ import annotations

import zlib

from repro.attacks.lab import HijackLab
from repro.detection.detector import HijackDetector
from repro.detection.probes import ProbeSet, top_degree_probes
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.prefixes.prefix import Prefix
from repro.registry.neighbors import NeighborRegistry
from repro.service.tenants import TenantRegistry
from repro.stream.events import (
    Announce,
    StreamEvent,
    StreamFormatError,
    Withdraw,
    parse_event_line,
)
from repro.stream.incremental import PrefixLedger
from repro.stream.monitor import OnlineMonitor, StreamAlarm
from repro.stream.replay import StreamReplayer

__all__ = ["ShardPlane"]


class ShardPlane:
    """*shards* independent replayer+monitor pipelines over one lab.

    Each shard's detector runs the full path-aware rule ladder: the
    shard's live ROA table, first-hop data published for every AS
    (:meth:`NeighborRegistry.from_graph`) and full topology knowledge —
    the strongest detector the taxonomy work built, now always-on.
    """

    def __init__(
        self,
        lab: HijackLab,
        *,
        shards: int = 1,
        registry: TenantRegistry | None = None,
        probes: ProbeSet | None = None,
        batch_window: float = 0.0,
        queue_limit: int = 64,
        metrics: Metrics | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.lab = lab
        self.shards = shards
        self.registry = registry if registry is not None else TenantRegistry()
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.probes = probes if probes is not None else top_degree_probes(lab.graph)
        neighbors = NeighborRegistry.from_graph(lab.graph)
        self._replayers: list[StreamReplayer] = []
        self._monitors: list[OnlineMonitor] = []
        for _ in range(shards):
            replayer = StreamReplayer(
                lab,
                batch_window=batch_window,
                queue_limit=queue_limit,
                metrics=self.metrics,
            )
            monitor = OnlineMonitor(
                lab.view,
                HijackDetector(
                    self.probes,
                    authority=replayer.authority,
                    neighbors=neighbors,
                    relationships=lab.graph,
                ),
                metrics=self.metrics,
            )
            replayer.monitor = monitor
            self._replayers.append(replayer)
            self._monitors.append(monitor)
        self._pinned: dict[Prefix, int] = {}
        self._alarm_cursors = [0] * shards
        self._malformed = 0
        self._ingested = 0
        self.errors: list[str] = []

    # -- routing -----------------------------------------------------------

    def shard_of(self, prefix: Prefix) -> int:
        """The shard that owns *prefix*'s ledger family (stable once seen)."""
        pinned = self._pinned.get(prefix)
        if pinned is not None:
            return pinned
        anchor = self.registry.covering_root(prefix) or prefix
        shard = self._pinned.get(anchor)
        if shard is None:
            shard = zlib.crc32(str(anchor).encode("ascii")) % self.shards
            self._pinned[anchor] = shard
        if prefix != anchor:
            self._pinned[prefix] = shard
        return shard

    def route(self, event: StreamEvent) -> int | None:
        """Target shard for *event*; ``None`` means broadcast to all."""
        if isinstance(event, (Announce, Withdraw)):
            return self.shard_of(event.prefix)
        return None

    # -- ingestion ---------------------------------------------------------

    def apply(self, shard: int, event: StreamEvent) -> None:
        """Submit one routed event to one shard's replayer."""
        self._replayers[shard].submit(event)

    def begin_ingest(self, event: StreamEvent) -> list[int]:
        """Account one accepted event and return the shards it goes to.

        The asyncio front-end uses this to enqueue onto per-shard worker
        queues; the synchronous :meth:`submit` applies immediately.
        """
        self._ingested += 1
        target = self.route(event)
        if target is None:
            return list(range(self.shards))
        return [target]

    def note_malformed(self, error: StreamFormatError) -> None:
        """Count (and bound-record) one malformed ingest line."""
        self._malformed += 1
        self.metrics.count("service.ingest.malformed")
        if len(self.errors) < 32:
            self.errors.append(f"malformed line: {error}")

    def submit(self, event: StreamEvent) -> None:
        """Route and submit one typed event (broadcasts go everywhere)."""
        for shard in self.begin_ingest(event):
            self.apply(shard, event)

    def submit_line(self, line: str) -> bool:
        """Parse and submit one JSONL line; malformed lines are counted.

        Parsing happens once, centrally, *before* routing — a malformed
        line has no prefix to route by. Returns ``True`` if submitted.
        """
        try:
            event = parse_event_line(line)
        except StreamFormatError as error:
            self.note_malformed(error)
            return False
        self.submit(event)
        return True

    def flush(self) -> int:
        """Flush every shard's pending batch; returns events applied."""
        return sum(replayer.flush() for replayer in self._replayers)

    # -- queries -----------------------------------------------------------

    @property
    def clock(self) -> float:
        return max(replayer.clock for replayer in self._replayers)

    @property
    def malformed(self) -> int:
        return self._malformed

    @property
    def ingested(self) -> int:
        return self._ingested

    def replayer(self, shard: int) -> StreamReplayer:
        return self._replayers[shard]

    def monitor(self, shard: int) -> OnlineMonitor:
        return self._monitors[shard]

    def authority_size(self) -> int:
        return len(self._replayers[0].authority)

    def drain_alarms(self) -> list[tuple[int, StreamAlarm]]:
        """New alarms since the last drain, as (shard, alarm) pairs."""
        drained: list[tuple[int, StreamAlarm]] = []
        for shard, monitor in enumerate(self._monitors):
            cursor = self._alarm_cursors[shard]
            for alarm in monitor.alarms[cursor:]:
                drained.append((shard, alarm))
            self._alarm_cursors[shard] = len(monitor.alarms)
        drained.sort(key=lambda item: (item[1].at, item[0]))
        return drained

    def ledgers(self) -> dict[Prefix, PrefixLedger]:
        """Every live ledger across all shards (prefixes never collide)."""
        merged: dict[Prefix, PrefixLedger] = {}
        for replayer in self._replayers:
            merged.update(replayer.ledgers())
        return merged

    def counts(self) -> dict[str, int]:
        """Aggregated replayer counters plus the plane's own accounting.

        ``submitted`` counts per-shard submissions (a broadcast lands on
        every shard); ``ingested`` counts events the plane accepted.
        """
        totals = {
            "submitted": 0,
            "applied": 0,
            "coalesced": 0,
            "malformed": self._malformed,
            "out_of_order": 0,
            "noop": 0,
            "flushes": 0,
            "backpressure_flushes": 0,
        }
        for replayer in self._replayers:
            for key, value in replayer.counts.items():
                totals[key] += value
        totals["ingested"] = self._ingested
        return totals
