"""ROVER: Route Origin VERification via the reverse DNS.

The paper's authors designed ROVER (refs [7]–[10]): route origins are
published as records in ``in-addr.arpa`` and protected with DNSSEC, so any
party can authenticate "who may originate this prefix" with plain DNS
lookups. This module implements the scheme on top of the miniature DNSSEC
tree in :mod:`repro.registry.dns`:

* **Naming** follows draft-gersch-dnsop-revdns-cidr in spirit: whole
  octets of the prefix become reversed labels under ``in-addr.arpa``, and
  for lengths that are not a multiple of 8 the residual bits are appended
  as single-bit labels beneath an ``m`` marker label. Examples::

      10.0.0.0/8      ->  10.in-addr.arpa.
      10.2.0.0/16     ->  2.10.in-addr.arpa.
      10.2.128.0/17   ->  1.m.2.10.in-addr.arpa.
      10.2.192.0/18   ->  1.1.m.2.10.in-addr.arpa.

* **Records**: an ``SRO`` (Secure Route Origin) rrset at the prefix name
  lists the authorized origin ASNs; an ``RLOCK`` rrset at a covering
  allocation declares the reverse DNS authoritative for that block, which
  is what lets a validator call an *unpublished* announcement INVALID
  rather than merely NOT_FOUND.

Validation returns the same RFC 6483 verdicts as the RPKI path, and
``tests/integration`` checks the two repositories agree when fed the same
publications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prefixes.prefix import Prefix
from repro.registry.dns import DnsName, DnsTree, LookupStatus, format_name
from repro.registry.roa import ValidationState

__all__ = ["reverse_name", "prefix_from_name", "RoverRegistry"]

_ARPA_SUFFIX: DnsName = ("arpa", "in-addr")


def reverse_name(prefix: Prefix) -> DnsName:
    """The reverse-DNS name (root-first label tuple) for a CIDR prefix."""
    labels: list[str] = list(_ARPA_SUFFIX)
    whole_octets, residual_bits = divmod(prefix.length, 8)
    for index in range(whole_octets):
        octet = (prefix.network >> (24 - 8 * index)) & 0xFF
        labels.append(str(octet))
    if residual_bits:
        labels.append("m")
        for bit_index in range(residual_bits):
            labels.append(str(prefix.bit(whole_octets * 8 + bit_index)))
    return tuple(labels)


def prefix_from_name(name: DnsName) -> Prefix:
    """Invert :func:`reverse_name` (raises ``ValueError`` on foreign names)."""
    if name[: len(_ARPA_SUFFIX)] != _ARPA_SUFFIX:
        raise ValueError(f"{format_name(name)} is not under in-addr.arpa")
    rest = name[len(_ARPA_SUFFIX) :]
    network = 0
    length = 0
    seen_marker = False
    for label in rest:
        if label == "m":
            if seen_marker:
                raise ValueError("duplicate 'm' marker")
            seen_marker = True
            continue
        if seen_marker:
            if label not in ("0", "1"):
                raise ValueError(f"bit label {label!r} must be 0 or 1")
            network |= int(label) << (31 - length)
            length += 1
        else:
            octet = int(label)
            if not 0 <= octet <= 255 or length >= 32:
                raise ValueError(f"bad octet label {label!r}")
            network |= octet << (24 - length)
            length += 8
    return Prefix.from_host(network, length)


@dataclass
class RoverRegistry:
    """Reverse-DNS route-origin publication with DNSSEC authentication."""

    seed: int = 0
    tree: DnsTree = field(init=False)

    def __post_init__(self) -> None:
        self.tree = DnsTree((), seed=self.seed)
        self.tree.delegate((), ("arpa",))
        self.tree.delegate(("arpa",), _ARPA_SUFFIX)

    # -- publication ------------------------------------------------------------

    def _zone_for(self, prefix: Prefix, *, signed: bool = True):
        """The delegation zone for an allocation (one zone per /8 here,
        mirroring how RIR reverse delegations hang off in-addr.arpa)."""
        top_octet = (prefix.network >> 24) & 0xFF
        origin = (*_ARPA_SUFFIX, str(top_octet))
        try:
            return self.tree.zone(origin)
        except KeyError:
            return self.tree.delegate(_ARPA_SUFFIX, origin, signed=signed)

    def publish_origin(
        self, prefix: Prefix, origin_asn: int, *, signed: bool = True
    ) -> None:
        """Publish (or extend) the SRO rrset authorizing *origin_asn*."""
        zone = self._zone_for(prefix, signed=signed)
        name = reverse_name(prefix)
        existing = zone.get(name, "SRO")
        values = set(existing.values) if existing else set()
        values.add(str(origin_asn))
        zone.add_rrset(name, "SRO", sorted(values))

    def publish_lock(self, prefix: Prefix) -> None:
        """Publish an RLOCK: the reverse DNS is authoritative for *prefix*,
        so covered announcements without an SRO are INVALID."""
        zone = self._zone_for(prefix)
        zone.add_rrset(reverse_name(prefix), "RLOCK", ["locked"])

    def withdraw_origin(self, prefix: Prefix) -> None:
        zone = self._zone_for(prefix)
        zone.remove_rrset(reverse_name(prefix), "SRO")

    # -- validation ---------------------------------------------------------------

    def validate(self, prefix: Prefix, origin_asn: int) -> ValidationState:
        """RFC 6483-style verdict via authenticated reverse-DNS lookups.

        The validator queries the announced prefix and every covering
        aggregate (walking up one bit at a time, as ROVER resolvers do).
        Secure SRO data decides directly; a secure RLOCK above the
        announcement turns "no SRO" into INVALID; anything that fails
        DNSSEC validation is ignored (treated as absent), so a tampered
        zone can never *authorize* a hijack.
        """
        locked = False
        current = prefix
        while True:
            result = self.tree.lookup(reverse_name(current), "SRO")
            if result.status is LookupStatus.SECURE and result.values:
                authorized = str(origin_asn) in result.values
                if current == prefix or current.contains(prefix):
                    if authorized:
                        return ValidationState.VALID
                    if current == prefix:
                        return ValidationState.INVALID
                    # A covering SRO for someone else: keep walking, but an
                    # RLOCK will make the final verdict INVALID.
                    locked = True
            lock = self.tree.lookup(reverse_name(current), "RLOCK")
            if lock.status is LookupStatus.SECURE and lock.values:
                locked = True
            if current.length == 0:
                break
            current = current.supernet()
        return ValidationState.INVALID if locked else ValidationState.NOT_FOUND
