"""A simulated RPKI: resource certificates, signed ROAs, validation.

The paper lists RPKI as the canonical "secure repository" for authorized
route origins. This module reproduces its *trust architecture* — a
hierarchy of resource certificates descending from a trust anchor, each
certificate constrained to a subset of its issuer's address resources, and
ROA objects signed by end-entity certificates — without real X.509/CMS:
signatures are keyed BLAKE2 MACs over canonical encodings, which preserves
every behaviour the experiments exercise (chain walking, resource
containment, tamper detection, revocation) at a fraction of the cost.

A relying party (:meth:`RpkiRepository.validated_table`) walks the
repository exactly like ``rpki-client`` does: verify each chain, discard
objects whose resources escape their issuer, and emit the surviving ROA
payloads as a :class:`~repro.registry.roa.RoaTable`.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from repro.prefixes.prefix import Prefix
from repro.registry.roa import RoaTable, RouteOriginAuthorization, ValidationState
from repro.util.rng import make_rng

__all__ = ["RpkiError", "ResourceCertificate", "SignedRoa", "RpkiRepository"]


class RpkiError(ValueError):
    """Raised for invalid issuance requests (resource escapes, bad issuer)."""


def _sign(key: bytes, payload: bytes) -> bytes:
    return hmac.new(key, payload, hashlib.blake2b).digest()[:16]


@dataclass(frozen=True)
class ResourceCertificate:
    """A CA certificate binding a holder to address resources.

    ``issuer_name`` is ``None`` only for the self-signed trust anchor.
    """

    name: str
    holder_asn: int | None
    resources: tuple[Prefix, ...]
    issuer_name: str | None
    signature: bytes

    def payload(self) -> bytes:
        resources = ",".join(str(prefix) for prefix in self.resources)
        return f"cert|{self.name}|{self.holder_asn}|{resources}|{self.issuer_name}".encode()


@dataclass(frozen=True)
class SignedRoa:
    """A ROA object signed by an end-entity under a resource certificate."""

    roa: RouteOriginAuthorization
    certificate_name: str
    signature: bytes

    def payload(self) -> bytes:
        return (
            f"roa|{self.roa.prefix}|{self.roa.origin_asn}|"
            f"{self.roa.effective_max_length}|{self.certificate_name}"
        ).encode()


@dataclass
class _KeyPair:
    key: bytes


@dataclass
class RpkiRepository:
    """A publication point plus the relying-party validation logic."""

    seed: int = 0
    _certificates: dict[str, ResourceCertificate] = field(default_factory=dict)
    _keys: dict[str, _KeyPair] = field(default_factory=dict)
    _roas: list[SignedRoa] = field(default_factory=list)
    _revoked: set[str] = field(default_factory=set)
    _trust_anchor: str | None = None

    # -- issuance ------------------------------------------------------------

    def _new_key(self, name: str) -> bytes:
        rng = make_rng(self.seed, "rpki-key", name)
        key = bytes(rng.randrange(256) for _ in range(32))
        self._keys[name] = _KeyPair(key)
        return key

    def create_trust_anchor(self, name: str, resources: list[Prefix]) -> ResourceCertificate:
        """Create the self-signed root holding the full resource set."""
        if self._trust_anchor is not None:
            raise RpkiError("trust anchor already exists")
        key = self._new_key(name)
        certificate = ResourceCertificate(
            name=name,
            holder_asn=None,
            resources=tuple(resources),
            issuer_name=None,
            signature=b"",
        )
        certificate = ResourceCertificate(
            name=name,
            holder_asn=None,
            resources=tuple(resources),
            issuer_name=None,
            signature=_sign(key, certificate.payload()),
        )
        self._certificates[name] = certificate
        self._trust_anchor = name
        return certificate

    def issue_certificate(
        self,
        issuer_name: str,
        name: str,
        holder_asn: int | None,
        resources: list[Prefix],
    ) -> ResourceCertificate:
        """Issue a subordinate certificate; resources must nest in the issuer's."""
        issuer = self._certificates.get(issuer_name)
        if issuer is None:
            raise RpkiError(f"unknown issuer {issuer_name!r}")
        if name in self._certificates:
            raise RpkiError(f"certificate {name!r} already exists")
        for prefix in resources:
            if not any(held.contains(prefix) for held in issuer.resources):
                raise RpkiError(f"{prefix} not within issuer {issuer_name!r} resources")
        self._new_key(name)
        issuer_key = self._keys[issuer_name].key
        certificate = ResourceCertificate(
            name=name,
            holder_asn=holder_asn,
            resources=tuple(resources),
            issuer_name=issuer_name,
            signature=b"",
        )
        certificate = ResourceCertificate(
            name=name,
            holder_asn=holder_asn,
            resources=tuple(resources),
            issuer_name=issuer_name,
            signature=_sign(issuer_key, certificate.payload()),
        )
        self._certificates[name] = certificate
        return certificate

    def publish_roa(
        self,
        certificate_name: str,
        prefix: Prefix,
        origin_asn: int,
        *,
        max_length: int | None = None,
    ) -> SignedRoa:
        """Sign and publish a ROA under an existing certificate."""
        certificate = self._certificates.get(certificate_name)
        if certificate is None:
            raise RpkiError(f"unknown certificate {certificate_name!r}")
        if not any(held.contains(prefix) for held in certificate.resources):
            raise RpkiError(f"{prefix} not within {certificate_name!r} resources")
        roa = RouteOriginAuthorization(prefix, origin_asn, max_length)
        signed = SignedRoa(roa=roa, certificate_name=certificate_name, signature=b"")
        signed = SignedRoa(
            roa=roa,
            certificate_name=certificate_name,
            signature=_sign(self._keys[certificate_name].key, signed.payload()),
        )
        self._roas.append(signed)
        return signed

    def revoke(self, certificate_name: str) -> None:
        """Revoke a certificate: its subtree's ROAs stop validating."""
        if certificate_name not in self._certificates:
            raise RpkiError(f"unknown certificate {certificate_name!r}")
        self._revoked.add(certificate_name)

    # -- relying party --------------------------------------------------------

    def _chain_valid(self, certificate: ResourceCertificate) -> bool:
        seen: set[str] = set()
        current = certificate
        while True:
            if current.name in self._revoked or current.name in seen:
                return False
            seen.add(current.name)
            if current.issuer_name is None:
                if current.name != self._trust_anchor:
                    return False
                key = self._keys[current.name].key
                return hmac.compare_digest(
                    current.signature, _sign(key, current.payload())
                )
            issuer = self._certificates.get(current.issuer_name)
            if issuer is None:
                return False
            issuer_key = self._keys[issuer.name].key
            if not hmac.compare_digest(
                current.signature, _sign(issuer_key, current.payload())
            ):
                return False
            # Resource containment at every step of the chain.
            for prefix in current.resources:
                if not any(held.contains(prefix) for held in issuer.resources):
                    return False
            current = issuer

    def validated_table(self) -> RoaTable:
        """Verify every published object and collect surviving payloads."""
        table = RoaTable()
        for signed in self._roas:
            certificate = self._certificates.get(signed.certificate_name)
            if certificate is None or not self._chain_valid(certificate):
                continue
            key = self._keys[certificate.name].key
            if not hmac.compare_digest(signed.signature, _sign(key, signed.payload())):
                continue
            if not any(held.contains(signed.roa.prefix) for held in certificate.resources):
                continue
            table.add(signed.roa)
        return table

    def validate(self, prefix: Prefix, origin_asn: int) -> ValidationState:
        """One-shot origin validation against the verified repository."""
        return self.validated_table().validate(prefix, origin_asn)
