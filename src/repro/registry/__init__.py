"""Route-origin registries: ROA validation, simulated RPKI, ROVER/DNSSEC."""

from repro.registry.dns import (
    DnsName,
    DnsTree,
    DnsZone,
    LookupResult,
    LookupStatus,
    Rrset,
    format_name,
    parse_name,
)
from repro.registry.history import HistoricalAuthority
from repro.registry.neighbors import NeighborRegistry
from repro.registry.publication import PublicationState, plan_truth_table
from repro.registry.roa import (
    OriginAuthority,
    RoaTable,
    RouteOriginAuthorization,
    ValidationState,
)
from repro.registry.rover import RoverRegistry, prefix_from_name, reverse_name
from repro.registry.rpki import (
    ResourceCertificate,
    RpkiError,
    RpkiRepository,
    SignedRoa,
)

__all__ = [
    "DnsName",
    "DnsTree",
    "DnsZone",
    "HistoricalAuthority",
    "LookupResult",
    "LookupStatus",
    "NeighborRegistry",
    "OriginAuthority",
    "PublicationState",
    "ResourceCertificate",
    "RoaTable",
    "RouteOriginAuthorization",
    "RoverRegistry",
    "RpkiError",
    "RpkiRepository",
    "Rrset",
    "SignedRoa",
    "ValidationState",
    "format_name",
    "parse_name",
    "plan_truth_table",
    "prefix_from_name",
    "reverse_name",
]
