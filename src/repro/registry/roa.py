"""Route-origin authorizations and the validation verdicts.

Both prevention and detection in the paper compare BGP announcements
against "a list of authoritative route origins obtained from a secure
repository such as RPKI and ROVER" (Section V). This module defines the
repository-neutral pieces: the :class:`RouteOriginAuthorization` record,
the three validation verdicts of RFC 6483 (VALID / INVALID / NOT_FOUND)
and the shared origin-validation algorithm every backend uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.prefixes.prefix import Prefix
from repro.prefixes.trie import PrefixTrie

__all__ = [
    "RouteOriginAuthorization",
    "ValidationState",
    "OriginAuthority",
    "RoaTable",
]


class ValidationState(enum.Enum):
    """Origin-validation verdict for an announcement.

    ``NOT_FOUND`` (no covering authorization) is the common case during
    incremental rollout and is deliberately *not* treated as INVALID:
    dropping unknown space would blackhole every non-participant, so
    filters only act on INVALID. This is exactly why the paper's Section
    VII insists that publishing route origins is "a critical step" — an
    unpublished target cannot be protected.
    """

    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "not-found"


@dataclass(frozen=True)
class RouteOriginAuthorization:
    """An authorization: *origin_asn* may announce *prefix* (and its
    sub-prefixes down to *max_length*, RFC 6482's maxLength)."""

    prefix: Prefix
    origin_asn: int
    max_length: int | None = None

    def __post_init__(self) -> None:
        if self.max_length is not None:
            if not self.prefix.length <= self.max_length <= 32:
                raise ValueError(
                    f"maxLength {self.max_length} outside "
                    f"[{self.prefix.length}, 32]"
                )

    @property
    def effective_max_length(self) -> int:
        return self.prefix.length if self.max_length is None else self.max_length

    def authorizes(self, prefix: Prefix, origin_asn: int) -> bool:
        """Does this ROA declare the announcement VALID?"""
        return (
            origin_asn == self.origin_asn
            and self.prefix.contains(prefix)
            and prefix.length <= self.effective_max_length
        )

    def covers(self, prefix: Prefix) -> bool:
        """Does this ROA speak about the announced prefix at all?"""
        return self.prefix.contains(prefix)


class OriginAuthority(Protocol):
    """Anything that can validate an announced (prefix, origin) pair."""

    def validate(self, prefix: Prefix, origin_asn: int) -> ValidationState:
        """RFC 6483 verdict for the announcement."""
        ...  # pragma: no cover - protocol


class RoaTable:
    """A validated-ROA payload set with the standard validation algorithm.

    This is the in-memory form every repository backend (RPKI, ROVER)
    reduces to after its own cryptographic checks; it is also usable
    directly as a ground-truth authority in tests and experiments.
    """

    def __init__(self, roas: Iterable[RouteOriginAuthorization] = ()) -> None:
        self._by_prefix: PrefixTrie[list[RouteOriginAuthorization]] = PrefixTrie()
        self._count = 0
        for roa in roas:
            self.add(roa)

    def add(self, roa: RouteOriginAuthorization) -> None:
        bucket = self._by_prefix.get(roa.prefix)
        if bucket is None:
            bucket = []
            self._by_prefix.insert(roa.prefix, bucket)
        if roa not in bucket:
            bucket.append(roa)
            self._count += 1

    def remove(self, roa: RouteOriginAuthorization) -> None:
        bucket = self._by_prefix.get(roa.prefix)
        if not bucket or roa not in bucket:
            raise KeyError(f"{roa} not present")
        bucket.remove(roa)
        self._count -= 1
        if not bucket:
            self._by_prefix.remove(roa.prefix)

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        for _prefix, bucket in self._by_prefix.items():
            yield from bucket

    def covering(self, prefix: Prefix) -> list[RouteOriginAuthorization]:
        """All ROAs whose prefix covers the announced prefix."""
        found: list[RouteOriginAuthorization] = []
        for _covering_prefix, bucket in self._by_prefix.covering(prefix):
            found.extend(bucket)
        return found

    def validate(self, prefix: Prefix, origin_asn: int) -> ValidationState:
        """The RFC 6483 procedure: VALID if any covering ROA authorizes
        the pair, INVALID if covered but never authorized, else NOT_FOUND."""
        covering = self.covering(prefix)
        if not covering:
            return ValidationState.NOT_FOUND
        for roa in covering:
            if roa.authorizes(prefix, origin_asn):
                return ValidationState.VALID
        return ValidationState.INVALID
