"""Published neighbor sets: ARTEMIS-style first-hop verification data.

RPKI origin validation cannot catch a **type-1** hijack — the attacker
claims the legitimate origin at the end of a forged path, so the
(prefix, origin) pair validates. ARTEMIS closes the gap with one extra
published artifact: each origin's set of *actual* BGP neighbors. A
claimed path whose last hop ``(neighbor, origin)`` names an AS the
origin never sessions with is provably forged, no matter how valid the
claimed origin is.

:class:`NeighborRegistry` is that artifact in this model — the path
analogue of :class:`~repro.registry.roa.RoaTable`. Like ROAs, it is an
*opt-in* publication: origins absent from the registry yield no verdict
(``None``-ish semantics — :meth:`first_hop_forged` returns ``False``
when it cannot prove anything), mirroring RFC 6483's NotFound.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.topology.asgraph import ASGraph

__all__ = ["NeighborRegistry"]


class NeighborRegistry:
    """Mapping from origin ASN to its declared neighbor ASNs."""

    def __init__(self, declared: Mapping[int, Iterable[int]] | None = None) -> None:
        self._declared: dict[int, frozenset[int]] = {
            int(origin): frozenset(neighbors)
            for origin, neighbors in (declared or {}).items()
        }

    @classmethod
    def from_graph(
        cls, graph: ASGraph, asns: Iterable[int] | None = None
    ) -> "NeighborRegistry":
        """Publish the true neighbor sets of *asns* (default: every AS).

        Declared neighbors include siblings — a sibling's announcement of
        the shared origin is legitimate, not a forged first hop.
        """
        members = graph.asns() if asns is None else sorted(set(asns))
        return cls({asn: graph.neighbors(asn) for asn in members if asn in graph})

    def __len__(self) -> int:
        return len(self._declared)

    def __contains__(self, origin_asn: int) -> bool:
        return origin_asn in self._declared

    def declares(self, origin_asn: int) -> bool:
        """Has *origin_asn* published its neighbor set?"""
        return origin_asn in self._declared

    def neighbors_of(self, origin_asn: int) -> frozenset[int]:
        return self._declared.get(origin_asn, frozenset())

    def first_hop_forged(self, claimed_path: tuple[int, ...]) -> bool:
        """Is the path's last hop provably impossible?

        *claimed_path* carries the claimed origin **last**. Returns
        ``True`` only when the origin has published its neighbors and
        the AS adjacent to it in the claim is not one of them; a path of
        length 1 (the origin alone) or an undeclared origin proves
        nothing and returns ``False``.
        """
        if len(claimed_path) < 2:
            return False
        origin = claimed_path[-1]
        declared = self._declared.get(origin)
        if declared is None:
            return False
        return claimed_path[-2] not in declared
