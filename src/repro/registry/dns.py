"""A miniature DNS tree with DNSSEC-style authentication.

ROVER publishes route origins in the reverse DNS and protects them with
DNSSEC. The experiments only need the *security semantics* of that stack —
delegation from a trust anchor, per-zone signing keys, DS-style chaining,
and the distinction between authenticated data, bogus data and unsigned
(insecure) data — so this module implements exactly those, with keyed
BLAKE2 MACs standing in for RRSIG cryptography.

Names are tuples of labels ordered root-first (``("arpa", "in-addr",
"10")``), which keeps prefix-of checks trivial; :func:`parse_name` accepts
the usual dotted presentation form.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Iterable

from repro.util.rng import make_rng

__all__ = [
    "DnsName",
    "parse_name",
    "format_name",
    "Rrset",
    "DnsZone",
    "DnsTree",
    "LookupStatus",
    "LookupResult",
]

DnsName = tuple[str, ...]


def parse_name(text: str) -> DnsName:
    """Parse ``"a.b.c"`` into root-first label order ``("c", "b", "a")``."""
    text = text.strip().rstrip(".")
    if not text:
        return ()
    labels = [label.lower() for label in text.split(".")]
    if any(not label for label in labels):
        raise ValueError(f"empty label in {text!r}")
    return tuple(reversed(labels))


def format_name(name: DnsName) -> str:
    """Presentation form (most-specific label first), e.g. ``10.in-addr.arpa.``"""
    if not name:
        return "."
    return ".".join(reversed(name)) + "."


def _sign(key: bytes, payload: bytes) -> bytes:
    return hmac.new(key, payload, hashlib.blake2b).digest()[:16]


@dataclass(frozen=True)
class Rrset:
    """All records of one type at one name, with its RRSIG stand-in."""

    name: DnsName
    rtype: str
    values: tuple[str, ...]
    signature: bytes

    def payload(self) -> bytes:
        return f"{format_name(self.name)}|{self.rtype}|{','.join(sorted(self.values))}".encode()


class LookupStatus(enum.Enum):
    """DNSSEC disposition of a lookup."""

    SECURE = "secure"  # data present and the chain verified
    NODATA = "nodata"  # chain verified; the name/type does not exist
    INSECURE = "insecure"  # zone (or an ancestor) is unsigned
    BOGUS = "bogus"  # signature or chain verification failed


@dataclass(frozen=True)
class LookupResult:
    status: LookupStatus
    values: tuple[str, ...] = ()

    @property
    def secure_values(self) -> tuple[str, ...]:
        return self.values if self.status is LookupStatus.SECURE else ()


@dataclass
class DnsZone:
    """One zone: an origin name, a signing key, and its rrsets."""

    origin: DnsName
    signed: bool = True
    _key: bytes = b""
    _rrsets: dict[tuple[DnsName, str], Rrset] = field(default_factory=dict)

    def add_rrset(self, name: DnsName, rtype: str, values: Iterable[str]) -> Rrset:
        if name[: len(self.origin)] != self.origin:
            raise ValueError(
                f"{format_name(name)} is outside zone {format_name(self.origin)}"
            )
        rrset = Rrset(name=name, rtype=rtype, values=tuple(values), signature=b"")
        if self.signed:
            rrset = Rrset(
                name=name,
                rtype=rtype,
                values=rrset.values,
                signature=_sign(self._key, rrset.payload()),
            )
        self._rrsets[(name, rtype.upper())] = rrset
        return rrset

    def remove_rrset(self, name: DnsName, rtype: str) -> None:
        del self._rrsets[(name, rtype.upper())]

    def get(self, name: DnsName, rtype: str) -> Rrset | None:
        return self._rrsets.get((name, rtype.upper()))

    def key_digest(self) -> str:
        """The DS-style digest a parent publishes for this zone's key."""
        return hashlib.blake2b(self._key, digest_size=8).hexdigest()


class DnsTree:
    """A set of zones under one trust anchor, resolved with verification."""

    def __init__(self, root_origin: str | DnsName = (), *, seed: int = 0) -> None:
        self.seed = seed
        origin = parse_name(root_origin) if isinstance(root_origin, str) else root_origin
        self._zones: dict[DnsName, DnsZone] = {}
        self._root = self._create_zone(origin, signed=True)

    # -- zone management -----------------------------------------------------

    def _create_zone(self, origin: DnsName, *, signed: bool) -> DnsZone:
        rng = make_rng(self.seed, "dns-zone", format_name(origin))
        key = bytes(rng.randrange(256) for _ in range(32)) if signed else b""
        zone = DnsZone(origin=origin, signed=signed, _key=key)
        self._zones[origin] = zone
        return zone

    @property
    def root(self) -> DnsZone:
        return self._root

    def zone(self, origin: str | DnsName) -> DnsZone:
        name = parse_name(origin) if isinstance(origin, str) else origin
        return self._zones[name]

    def delegate(
        self, parent_origin: str | DnsName, child_origin: str | DnsName, *, signed: bool = True
    ) -> DnsZone:
        """Create a child zone and publish its DS-style record in the parent."""
        parent_name = (
            parse_name(parent_origin) if isinstance(parent_origin, str) else parent_origin
        )
        child_name = (
            parse_name(child_origin) if isinstance(child_origin, str) else child_origin
        )
        parent = self._zones.get(parent_name)
        if parent is None:
            raise ValueError(f"unknown parent zone {format_name(parent_name)}")
        if child_name[: len(parent_name)] != parent_name or child_name == parent_name:
            raise ValueError("child zone must be beneath the parent")
        if child_name in self._zones:
            raise ValueError(f"zone {format_name(child_name)} already exists")
        child = self._create_zone(child_name, signed=signed)
        if signed:
            parent.add_rrset(child_name, "DS", [child.key_digest()])
        else:
            parent.add_rrset(child_name, "NS", ["unsigned-delegation"])
        return child

    # -- resolution -------------------------------------------------------------

    def _authoritative_zone(self, name: DnsName) -> DnsZone:
        """The most specific zone whose origin is a prefix of *name*."""
        best = self._root
        for origin, zone in self._zones.items():
            if name[: len(origin)] == origin and len(origin) > len(best.origin):
                best = zone
        return best

    def _chain_secure(self, zone: DnsZone) -> LookupStatus:
        """Verify the delegation chain from the root down to *zone*."""
        if not zone.signed:
            return LookupStatus.INSECURE
        current = zone
        while current.origin != self._root.origin:
            parent = self._authoritative_zone(current.origin[:-1])
            ds = parent.get(current.origin, "DS")
            if ds is None:
                # Parent never vouched for the child key.
                return (
                    LookupStatus.INSECURE
                    if parent.get(current.origin, "NS") is not None
                    else LookupStatus.BOGUS
                )
            if not parent.signed:
                return LookupStatus.INSECURE
            if not self._rrset_valid(parent, ds):
                return LookupStatus.BOGUS
            if current.key_digest() not in ds.values:
                return LookupStatus.BOGUS
            current = parent
        return LookupStatus.SECURE

    @staticmethod
    def _rrset_valid(zone: DnsZone, rrset: Rrset) -> bool:
        return hmac.compare_digest(rrset.signature, _sign(zone._key, rrset.payload()))

    def lookup(self, name: str | DnsName, rtype: str) -> LookupResult:
        """Resolve and authenticate one rrset."""
        query = parse_name(name) if isinstance(name, str) else name
        zone = self._authoritative_zone(query)
        chain = self._chain_secure(zone)
        if chain is LookupStatus.BOGUS:
            return LookupResult(LookupStatus.BOGUS)
        rrset = zone.get(query, rtype)
        if rrset is None:
            status = LookupStatus.NODATA if chain is LookupStatus.SECURE else chain
            return LookupResult(status)
        if chain is LookupStatus.INSECURE:
            return LookupResult(LookupStatus.INSECURE, rrset.values)
        if not self._rrset_valid(zone, rrset):
            return LookupResult(LookupStatus.BOGUS)
        return LookupResult(LookupStatus.SECURE, rrset.values)
