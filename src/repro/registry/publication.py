"""Wiring address plans into the registries.

Section VII's playbook hinges on *participation*: only ASes that publish
their route origins can be protected by origin-validating filters and
detectors. This module models that participation level explicitly — a
:class:`PublicationState` tracks who has published, builds the resulting
registry contents (RPKI and/or ROVER), and exposes the combined
:class:`~repro.registry.roa.OriginAuthority` the defense layer validates
against. Announcements for unpublished space come back NOT_FOUND and are
therefore *not blockable*, exactly the incremental-deployment reality the
paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.prefixes.addressing import AddressPlan
from repro.prefixes.prefix import Prefix
from repro.registry.roa import RoaTable, RouteOriginAuthorization, ValidationState
from repro.registry.rover import RoverRegistry
from repro.registry.rpki import RpkiRepository

__all__ = ["PublicationState", "plan_truth_table"]


def plan_truth_table(plan: AddressPlan) -> RoaTable:
    """Ground-truth ROAs for *every* allocation in the plan.

    This is the omniscient oracle (useful for tests and for upper-bound
    experiments); real experiments should go through
    :class:`PublicationState` to model partial participation.
    """
    table = RoaTable()
    for prefix, asn in plan.items():
        table.add(RouteOriginAuthorization(prefix, asn))
    return table


@dataclass
class PublicationState:
    """Which ASes have published route origins, and the resulting registry."""

    plan: AddressPlan
    seed: int = 0
    _published: set[int] = field(default_factory=set)
    _table: RoaTable = field(default_factory=RoaTable)

    @classmethod
    def with_participants(
        cls, plan: AddressPlan, participants: Iterable[int], *, seed: int = 0
    ) -> "PublicationState":
        state = cls(plan=plan, seed=seed)
        for asn in participants:
            state.publish(asn)
        return state

    @classmethod
    def full(cls, plan: AddressPlan, *, seed: int = 0) -> "PublicationState":
        """Everyone publishes — the paper's end-state assumption when it
        evaluates blocking (the target's origins must be known)."""
        return cls.with_participants(plan, plan.all_asns(), seed=seed)

    # -- participation ---------------------------------------------------------

    def publish(self, asn: int) -> None:
        """AS *asn* publishes authorizations for all its allocations."""
        if asn in self._published:
            return
        self._published.add(asn)
        for prefix in self.plan.prefixes_of(asn):
            self._table.add(RouteOriginAuthorization(prefix, asn))

    def has_published(self, asn: int) -> bool:
        return asn in self._published

    @property
    def participants(self) -> frozenset[int]:
        return frozenset(self._published)

    # -- validation ---------------------------------------------------------------

    def validate(self, prefix: Prefix, origin_asn: int) -> ValidationState:
        return self._table.validate(prefix, origin_asn)

    def table(self) -> RoaTable:
        return self._table

    # -- materialization into concrete repositories --------------------------------

    def to_rpki(self) -> RpkiRepository:
        """Build an RPKI repository holding the published authorizations."""
        repository = RpkiRepository(seed=self.seed)
        repository.create_trust_anchor("ta", [Prefix(0, 0)])
        for asn in sorted(self._published):
            prefixes = list(self.plan.prefixes_of(asn))
            if not prefixes:
                continue
            name = f"as{asn}"
            repository.issue_certificate("ta", name, asn, prefixes)
            for prefix in prefixes:
                repository.publish_roa(name, prefix, asn)
        return repository

    def to_rover(self) -> RoverRegistry:
        """Build a ROVER reverse-DNS registry with the same content."""
        registry = RoverRegistry(seed=self.seed)
        for asn in sorted(self._published):
            for prefix in self.plan.prefixes_of(asn):
                registry.publish_origin(prefix, asn)
                registry.publish_lock(prefix)
        return registry
