"""Historical origin data: the PGBGP / ARGUS-style alternative to registries.

Several systems the paper surveys do not use authenticated publication at
all: PGBGP "cautiously adopts" routes that disagree with history, and
detectors like ARGUS compare announcements against previously observed
origins. The paper warns about the catch: "detectors that use historical
data can issue false alerts due to changing AS connectivity" (Section VI)
— history covers *everything* it has seen (no NOT_FOUND gaps like a
partially-populated RPKI), but it silently goes stale when address blocks
legitimately change hands.

:class:`HistoricalAuthority` implements that trade-off as an
:class:`~repro.registry.roa.OriginAuthority`: it is bootstrapped from
observed announcements (or a full address plan, modeling a long-running
collector), judges announcements against its snapshot, and can be aged
forward with new observations. Combined with
:func:`repro.prefixes.addressing.AddressPlan.transfer` it drives the
stale-history study in :mod:`repro.core.churn`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prefixes.addressing import AddressPlan
from repro.prefixes.prefix import Prefix
from repro.prefixes.trie import PrefixTrie
from repro.registry.roa import ValidationState

__all__ = ["HistoricalAuthority"]


@dataclass
class HistoricalAuthority:
    """Origin verdicts from an observation history instead of a registry."""

    _observed: PrefixTrie[set[int]] = field(default_factory=PrefixTrie)

    @classmethod
    def from_plan(cls, plan: AddressPlan) -> "HistoricalAuthority":
        """Bootstrap from a full routing table snapshot — a collector that
        has watched the converged internet (what PGBGP's history window
        holds in steady state)."""
        authority = cls()
        for prefix, asn in plan.items():
            authority.observe(prefix, asn)
        return authority

    # -- learning ------------------------------------------------------------

    def observe(self, prefix: Prefix, origin_asn: int) -> None:
        """Record a (prefix, origin) pair as seen in the wild.

        History only ever *adds* — a collector cannot tell a withdrawn
        allocation from a quiet one, which is precisely why stale entries
        accumulate.
        """
        origins = self._observed.get(prefix)
        if origins is None:
            origins = set()
            self._observed.insert(prefix, origins)
        origins.add(origin_asn)

    def forget(self, prefix: Prefix, origin_asn: int) -> None:
        """Age an origin out of the history (an operator-curated cleanup)."""
        origins = self._observed.get(prefix)
        if not origins or origin_asn not in origins:
            raise KeyError(f"{prefix} was never observed from AS{origin_asn}")
        origins.discard(origin_asn)
        if not origins:
            self._observed.remove(prefix)

    def known_origins(self, prefix: Prefix) -> frozenset[int]:
        """Every origin history has seen for exactly *prefix*."""
        origins = self._observed.get(prefix)
        return frozenset(origins) if origins else frozenset()

    # -- judging -----------------------------------------------------------------

    def validate(self, prefix: Prefix, origin_asn: int) -> ValidationState:
        """History's verdict: a known (covering) origin is VALID; an origin
        that contradicts history for covered space is INVALID; space never
        observed is NOT_FOUND."""
        covered = False
        for _covering_prefix, origins in self._observed.covering(prefix):
            covered = True
            if origin_asn in origins:
                return ValidationState.VALID
        exact = self._observed.get(prefix)
        if exact is not None and origin_asn in exact:
            return ValidationState.VALID
        return ValidationState.INVALID if covered else ValidationState.NOT_FOUND

    def __len__(self) -> int:
        return sum(1 for _ in self._observed.items())
