"""AS-level topology: graph model, CAIDA I/O, classification, generation."""

from repro.topology.asgraph import ASGraph, TopologyError
from repro.topology.caida import (
    CaidaFormatError,
    dump_caida,
    dumps_caida,
    load_caida,
    loads_caida,
)
from repro.topology.classify import (
    TopologySummary,
    customer_cone,
    depth_to_tier1,
    effective_depth,
    find_tier1,
    find_tier2,
    reach,
    stub_asns,
    summarize,
    transit_asns,
)
from repro.topology.generator import (
    GeneratorConfig,
    default_address_plan,
    generate_topology,
)
from repro.topology.metrics import (
    ProviderRedundancy,
    cone_overlap,
    overlap_matrix,
    provider_redundancy,
    rank_providers_by_added_reach,
)
from repro.topology.relationships import Relationship, RouteClass
from repro.topology.view import RoutingView

__all__ = [
    "ASGraph",
    "CaidaFormatError",
    "GeneratorConfig",
    "ProviderRedundancy",
    "cone_overlap",
    "overlap_matrix",
    "provider_redundancy",
    "rank_providers_by_added_reach",
    "Relationship",
    "RouteClass",
    "RoutingView",
    "TopologyError",
    "TopologySummary",
    "customer_cone",
    "default_address_plan",
    "depth_to_tier1",
    "dump_caida",
    "dumps_caida",
    "effective_depth",
    "find_tier1",
    "find_tier2",
    "generate_topology",
    "load_caida",
    "loads_caida",
    "reach",
    "stub_asns",
    "summarize",
    "transit_asns",
]
