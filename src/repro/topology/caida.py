"""Reading and writing CAIDA AS-relationship files.

The paper's simulator "constructs a topology of 42,697 interconnected router
objects as it reads a list of 139,156 provider/customer/peer relationships
obtained from CAIDA". This environment has no network access, so experiments
default to the calibrated synthetic topology — but this module implements the
real file formats, so a downloaded CAIDA snapshot reproduces the paper at
full scale with no code changes:

* **serial-1** (``as-rel.txt``): ``<as1>|<as2>|<rel>`` with ``rel`` −1 for
  *as1 is provider of as2*, 0 for peers. Some historical datasets also use
  1 or 2 for sibling links; both are accepted here and mapped to SIBLING.
* **serial-2** (``as-rel2.txt``): same plus a trailing ``|<source>`` column.

Comment lines start with ``#`` and are preserved on a best-effort basis when
writing.
"""

from __future__ import annotations

import gzip
import io
import mmap
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.topology.asgraph import ASGraph, TopologyError
from repro.topology.relationships import Relationship

__all__ = [
    "load_caida",
    "load_caida_mmap",
    "loads_caida",
    "dump_caida",
    "dumps_caida",
    "CaidaFormatError",
]

_P2C = -1
_P2P = 0
_SIBLING_CODES = (1, 2)


class CaidaFormatError(ValueError):
    """Raised for lines that do not parse as AS-relationship records."""


def _parse_line(line: str, line_number: int) -> tuple[int, int, Relationship] | None:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    fields = stripped.split("|")
    if len(fields) not in (3, 4):  # serial-1 or serial-2
        raise CaidaFormatError(
            f"line {line_number}: expected 3 or 4 '|'-separated fields, got {len(fields)}"
        )
    try:
        as1, as2, code = int(fields[0]), int(fields[1]), int(fields[2])
    except ValueError as exc:
        raise CaidaFormatError(f"line {line_number}: non-numeric field") from exc
    if code == _P2C:
        return as1, as2, Relationship.CUSTOMER  # as1 provider of as2
    if code == _P2P:
        return as1, as2, Relationship.PEER
    if code in _SIBLING_CODES:
        return as1, as2, Relationship.SIBLING
    raise CaidaFormatError(f"line {line_number}: unknown relationship code {code}")


def loads_caida(text: str, *, strict: bool = True) -> ASGraph:
    """Parse AS-relationship *text* into an :class:`ASGraph`.

    With ``strict=False``, duplicate/conflicting records are skipped instead
    of raising — real snapshots occasionally contain both a p2p and a p2c
    record for a pair.
    """
    return _read(io.StringIO(text), strict=strict)


def load_caida(path: str | Path, *, strict: bool = True) -> ASGraph:
    """Load an AS-relationship file; ``.gz`` paths are decompressed."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="ascii") as handle:
            return _read(handle, strict=strict)
    with path.open("r", encoding="ascii") as handle:
        return _read(handle, strict=strict)


def _read(handle: TextIO, *, strict: bool) -> ASGraph:
    graph = ASGraph()
    for line_number, line in enumerate(handle, start=1):
        record = _parse_line(line, line_number)
        if record is None:
            continue
        as1, as2, relationship = record
        graph.add_as(as1)
        graph.add_as(as2)
        try:
            graph.add_relationship(as1, as2, relationship)
        except TopologyError:
            if strict:
                raise
    return graph


def load_caida_mmap(path: str | Path, *, strict: bool = True) -> ASGraph:
    """Load an AS-relationship file without materializing it in memory.

    Plain files are memory-mapped and parsed line by line straight out
    of the page cache — the kernel streams pages in and evicts them
    behind the cursor, so a full 42,697-AS snapshot costs one graph, not
    one graph plus one file copy. ``.gz`` files cannot be mapped
    usefully; they fall back to a chunk-streamed decompressing reader
    with the same bounded-memory property. Empty files parse to an
    empty graph (``mmap`` rejects zero-length maps, hence the guard).
    """
    path = Path(path)
    if path.suffix == ".gz":
        return _read(_gzip_lines(path), strict=strict)
    if path.stat().st_size == 0:
        return ASGraph()
    with path.open("rb") as handle:
        with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as mapped:
            return _read(_mmap_lines(mapped), strict=strict)


def _mmap_lines(mapped: mmap.mmap) -> Iterator[str]:
    while True:
        raw = mapped.readline()
        if not raw:
            return
        yield raw.decode("ascii", "replace")


def _gzip_lines(path: Path, chunk_size: int = 1 << 20) -> Iterator[str]:
    buffer = b""
    with gzip.open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            buffer += chunk
            *lines, buffer = buffer.split(b"\n")
            for raw in lines:
                yield raw.decode("ascii", "replace")
    if buffer:
        yield buffer.decode("ascii", "replace")


def dumps_caida(graph: ASGraph, *, serial: int = 1, source: str = "repro") -> str:
    """Serialize *graph* in CAIDA serial-1 (default) or serial-2 format."""
    if serial not in (1, 2):
        raise ValueError(f"unsupported serial format {serial}")
    lines = [f"# {len(graph)} ASes, {graph.edge_count()} links (repro export)"]
    suffix = f"|{source}" if serial == 2 else ""
    for asn, neighbor, relationship in graph.edges():
        if relationship is Relationship.CUSTOMER:
            code = _P2C
        elif relationship is Relationship.PEER:
            code = _P2P
        else:
            code = _SIBLING_CODES[0]
        lines.append(f"{asn}|{neighbor}|{code}{suffix}")
    return "\n".join(lines) + "\n"


def dump_caida(graph: ASGraph, path: str | Path, *, serial: int = 1) -> None:
    """Write *graph* to *path* (gzip if the suffix is ``.gz``)."""
    path = Path(path)
    text = dumps_caida(graph, serial=serial)
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="ascii") as handle:
            handle.write(text)
    else:
        path.write_text(text, encoding="ascii")


def load_any(source: str | Path | Iterable[str], *, strict: bool = True) -> ASGraph:
    """Convenience loader accepting a path, raw text, or an iterable of lines."""
    if isinstance(source, Path):
        return load_caida(source, strict=strict)
    if isinstance(source, str):
        if "\n" in source or "|" in source:
            return loads_caida(source, strict=strict)
        return load_caida(source, strict=strict)
    return _read(io.StringIO("\n".join(source)), strict=strict)
