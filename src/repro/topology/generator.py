"""Calibrated synthetic internet topology generator.

The paper's experiments run on a CAIDA AS-relationship snapshot (42,697
ASes, 139,156 links, 17 tier-1s, 6,318 transit ASes = 14.7%). Without
network access we generate a topology with the same *structure* at a
configurable scale (default 1/10):

* a full-mesh **tier-1 clique** (17 ASes),
* a layer of high-degree **tier-2** regional carriers, multihomed to several
  tier-1s and densely peered with each other,
* **mid-level transit** ASes attaching to tier-2s/tier-1s and occasionally
  to each other (which produces depth-2/3 transit),
* deliberate **deep access chains** per region so that depth-4/5/6 ASes
  exist (the paper's very-vulnerable AS55857 sits at depth 5),
* a heavy tail of **stub** ASes with realistic multihoming, attached by
  degree-preferential selection (yielding a power-law-ish degree
  distribution),
* a sprinkle of **sibling groups**, and
* **regions** with uneven (Zipf-like) sizes — Section VII's New-Zealand
  experiment needs a small, partly self-contained region.

Generation is fully deterministic for a given :class:`GeneratorConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.prefixes.addressing import AddressPlan
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship
from repro.util.rng import make_rng

__all__ = ["GeneratorConfig", "generate_topology", "default_address_plan"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for the synthetic topology.

    The defaults reproduce the paper's structural statistics at 1/10 scale.
    ``as_count`` is a target; the realized count matches it exactly.
    """

    as_count: int = 4270
    tier1_count: int = 17
    region_count: int = 12
    transit_fraction: float = 0.15
    seed: int = 2014

    # Tier-2 layer.
    tier2_count: int = 70
    tier2_provider_range: tuple[int, int] = (2, 4)
    tier2_same_region_peer_probability: float = 0.9
    tier2_cross_region_peer_probability: float = 0.3

    # Mid-level transit.
    mid_provider_range: tuple[int, int] = (1, 3)
    mid_transit_parent_probability: float = 0.25
    mid_tier1_parent_probability: float = 0.2
    mid_peer_mean: float = 2.0

    # Deep access chains (guarantee high-depth ASes for the experiments).
    chains_per_region: int = 2
    chain_length: int = 4

    # Stubs.
    stub_multihome_probabilities: tuple[float, ...] = (0.45, 0.40, 0.15)
    stub_same_region_probability: float = 0.85
    stub_direct_tier1_probability: float = 0.10

    # Sibling groups.
    sibling_fraction: float = 0.01

    # Island region: make the smallest region insular, like the paper's
    # New-Zealand slice — its non-tier-2 members buy transit only inside
    # the region, so all external connectivity funnels through the
    # regional gateway carriers (which is what makes Section VII's
    # single-hub filter meaningful). Set False for fully mixed regions.
    island_region: bool = True

    @classmethod
    def scaled(cls, as_count: int, *, seed: int = 2014, **overrides) -> "GeneratorConfig":
        """A configuration with layer sizes derived proportionally.

        The class defaults are tuned for ~4,270 ASes; this constructor
        scales the region count, tier-2 layer and deep-chain budget to any
        requested size (floors keep the experiment roles — deep stubs, a
        small region, a tier-2 layer — present even at a few hundred ASes).
        """
        region_count = overrides.pop(
            "region_count", max(3, min(12, as_count // 300))
        )
        tier2_count = overrides.pop(
            "tier2_count", max(2 * region_count, round(as_count / 61))
        )
        chains_per_region = overrides.pop(
            "chains_per_region", 2 if as_count >= 2000 else 1
        )
        tier1_count = overrides.pop("tier1_count", 17 if as_count >= 1200 else max(3, as_count // 70))
        return cls(
            as_count=as_count,
            seed=seed,
            region_count=region_count,
            tier2_count=tier2_count,
            chains_per_region=chains_per_region,
            tier1_count=tier1_count,
            **overrides,
        )

    def __post_init__(self) -> None:
        if self.tier1_count < 2:
            raise ValueError("need at least two tier-1 ASes")
        minimum = (
            self.tier1_count
            + self.tier2_count
            + self.region_count * self.chains_per_region * self.chain_length
            + self.region_count
        )
        if self.as_count < minimum + 10:
            raise ValueError(
                f"as_count={self.as_count} too small for this configuration "
                f"(needs at least {minimum + 10})"
            )
        if abs(sum(self.stub_multihome_probabilities) - 1.0) > 1e-9:
            raise ValueError("stub_multihome_probabilities must sum to 1")


@dataclass
class _Builder:
    config: GeneratorConfig
    graph: ASGraph = field(default_factory=ASGraph)
    next_asn: int = 1
    regions: list[str] = field(default_factory=list)
    island: str | None = None
    tier1: list[int] = field(default_factory=list)
    tier2_by_region: dict[str, list[int]] = field(default_factory=dict)
    transit_by_region: dict[str, list[int]] = field(default_factory=dict)
    degree_weight: dict[int, int] = field(default_factory=dict)

    def new_asn(self) -> int:
        asn = self.next_asn
        self.next_asn += 1
        return asn

    def link(self, provider: int, customer: int) -> None:
        self.graph.add_relationship(provider, customer, Relationship.CUSTOMER)
        self.degree_weight[provider] = self.degree_weight.get(provider, 0) + 1
        self.degree_weight[customer] = self.degree_weight.get(customer, 0) + 1

    def peer(self, a: int, b: int) -> None:
        if self.graph.relationship(a, b) is None:
            self.graph.add_relationship(a, b, Relationship.PEER)
            self.degree_weight[a] = self.degree_weight.get(a, 0) + 1
            self.degree_weight[b] = self.degree_weight.get(b, 0) + 1


def _region_sizes(total: int, count: int) -> list[int]:
    """Zipf-flavoured region sizes summing exactly to *total*."""
    weights = [1.0 / (index + 1) ** 0.6 for index in range(count)]
    scale = total / sum(weights)
    sizes = [max(1, int(weight * scale)) for weight in weights]
    sizes[0] += total - sum(sizes)  # absorb rounding in the largest region
    return sizes


def generate_topology(config: GeneratorConfig | None = None) -> ASGraph:
    """Generate the calibrated synthetic AS topology."""
    config = config or GeneratorConfig()
    rng = make_rng(config.seed, "topology")
    builder = _Builder(config)
    graph = builder.graph

    builder.regions = [f"R{index:02d}" for index in range(config.region_count)]
    if config.island_region and config.region_count >= 2:
        # _region_sizes is decreasing, so the last region is the smallest.
        builder.island = builder.regions[-1]

    # --- Tier-1 clique (global, regionless). -------------------------------
    for _ in range(config.tier1_count):
        asn = builder.new_asn()
        graph.add_as(asn, tier1=True)
        builder.tier1.append(asn)
    for i, a in enumerate(builder.tier1):
        for b in builder.tier1[i + 1 :]:
            builder.peer(a, b)

    # --- Budget the remaining ASes. ----------------------------------------
    remaining = config.as_count - config.tier1_count
    transit_budget = max(
        config.tier2_count + config.region_count,
        int(config.as_count * config.transit_fraction) - config.tier1_count,
    )
    chain_transit = config.region_count * config.chains_per_region * config.chain_length
    mid_count = transit_budget - config.tier2_count - chain_transit
    if mid_count < config.region_count:
        raise ValueError("transit budget too small for the chain configuration")
    stub_count = remaining - transit_budget

    region_of_tier2 = _region_sizes(config.tier2_count, config.region_count)

    # --- Tier-2 carriers. ---------------------------------------------------
    all_tier2: list[int] = []
    for region, quota in zip(builder.regions, region_of_tier2):
        members: list[int] = []
        for _ in range(quota):
            asn = builder.new_asn()
            graph.add_as(asn, region=region)
            count = rng.randint(*config.tier2_provider_range)
            for provider in rng.sample(builder.tier1, count):
                builder.link(provider, asn)
            members.append(asn)
            all_tier2.append(asn)
        builder.tier2_by_region[region] = members
        builder.transit_by_region[region] = list(members)
    for i, a in enumerate(all_tier2):
        for b in all_tier2[i + 1 :]:
            same = graph.region_of(a) == graph.region_of(b)
            probability = (
                config.tier2_same_region_peer_probability
                if same
                else config.tier2_cross_region_peer_probability
            )
            if rng.random() < probability:
                builder.peer(a, b)

    # --- Mid-level transit. -------------------------------------------------
    mid_sizes = _region_sizes(mid_count, config.region_count)
    for region, quota in zip(builder.regions, mid_sizes):
        for _ in range(quota):
            asn = builder.new_asn()
            graph.add_as(asn, region=region)
            providers = _pick_mid_providers(builder, rng, region)
            for provider in providers:
                builder.link(provider, asn)
            builder.transit_by_region[region].append(asn)
    # Regional IXP-style peering among mid transits.
    for region in builder.regions:
        locals_ = [
            asn
            for asn in builder.transit_by_region[region]
            if asn not in builder.tier2_by_region[region]
        ]
        for asn in locals_:
            links = min(len(locals_) - 1, rng.randint(0, int(2 * config.mid_peer_mean)))
            for other in rng.sample(locals_, links + 1):
                if other != asn:
                    builder.peer(asn, other)

    # --- Deep access chains. -------------------------------------------------
    chain_tails: list[int] = []
    for region in builder.regions:
        tier2s = builder.tier2_by_region[region]
        for _ in range(config.chains_per_region):
            head = rng.choice(tier2s)
            previous = head
            for _ in range(config.chain_length):
                asn = builder.new_asn()
                graph.add_as(asn, region=region)
                builder.link(previous, asn)
                builder.transit_by_region[region].append(asn)
                previous = asn
            chain_tails.append(previous)

    # --- Stubs. ---------------------------------------------------------------
    stub_sizes = _region_sizes(stub_count, config.region_count)
    tail_cursor = 0
    stubs: list[int] = []
    for region, quota in zip(builder.regions, stub_sizes):
        for index in range(quota):
            asn = builder.new_asn()
            graph.add_as(asn, region=region)
            stubs.append(asn)
            # Guarantee the experiment roles: every chain tail gets one
            # single-homed stub (a depth-(chain_length+1) target), and a few
            # stubs sit directly beneath tier-1s (depth-1 targets).
            if index == 0 and tail_cursor < len(chain_tails):
                region_tails = [
                    tail
                    for tail in chain_tails
                    if graph.region_of(tail) == region
                ]
                if region_tails:
                    builder.link(region_tails[0], asn)
                    tail_cursor += 1
                    continue
            if (
                region != builder.island
                and rng.random() < config.stub_direct_tier1_probability
            ):
                provider_count = _sample_provider_count(rng, config)
                for provider in rng.sample(builder.tier1, provider_count):
                    builder.link(provider, asn)
                continue
            provider_count = _sample_provider_count(rng, config)
            providers = _pick_stub_providers(builder, rng, region, provider_count)
            for provider in providers:
                builder.link(provider, asn)

    # --- Sibling groups. -------------------------------------------------------
    sibling_pool = [asn for asn in stubs if graph.degree(asn) >= 1]
    group_count = int(len(sibling_pool) * config.sibling_fraction / 2)
    chosen = rng.sample(sibling_pool, min(len(sibling_pool), group_count * 2))
    for a, b in zip(chosen[0::2], chosen[1::2]):
        if graph.relationship(a, b) is None:
            graph.add_relationship(a, b, Relationship.SIBLING)

    graph.validate()
    return graph


def _sample_provider_count(rng, config: GeneratorConfig) -> int:
    roll = rng.random()
    cumulative = 0.0
    for index, probability in enumerate(config.stub_multihome_probabilities):
        cumulative += probability
        if roll < cumulative:
            return index + 1
    return len(config.stub_multihome_probabilities)


def _weighted_sample(
    rng, candidates: Sequence[int], weights: dict[int, int], count: int
) -> list[int]:
    """Sample *count* distinct candidates with degree-preferential weights."""
    chosen: list[int] = []
    pool = list(candidates)
    for _ in range(min(count, len(pool))):
        total = sum(weights.get(asn, 0) + 1 for asn in pool)
        roll = rng.random() * total
        acc = 0.0
        pick = pool[-1]
        for asn in pool:
            acc += weights.get(asn, 0) + 1
            if roll < acc:
                pick = asn
                break
        chosen.append(pick)
        pool.remove(pick)
    return chosen


def _pick_mid_providers(builder: _Builder, rng, region: str) -> list[int]:
    config = builder.config
    count = rng.randint(*config.mid_provider_range)
    providers: list[int] = []
    island = region == builder.island
    for _ in range(count):
        roll = rng.random()
        if island:
            # Insular region: transit is bought strictly inside the region,
            # so the regional tier-2 gateways carry all external traffic.
            pool = [
                asn
                for asn in builder.transit_by_region[region]
                if asn not in providers
            ]
            if pool:
                providers.extend(_weighted_sample(rng, pool, builder.degree_weight, 1))
            continue
        if roll < config.mid_transit_parent_probability:
            # Attach under an existing regional transit (creates depth).
            pool = [
                asn
                for asn in builder.transit_by_region[region]
                if asn not in providers
            ]
        elif roll < config.mid_transit_parent_probability + config.mid_tier1_parent_probability:
            pool = [asn for asn in builder.tier1 if asn not in providers]
        else:
            pool = [
                asn
                for asn in builder.tier2_by_region[region]
                if asn not in providers
            ]
        if not pool:
            continue
        providers.extend(_weighted_sample(rng, pool, builder.degree_weight, 1))
    if not providers:
        providers = [rng.choice(builder.tier2_by_region[region])]
    return providers


def _pick_stub_providers(
    builder: _Builder, rng, region: str, count: int
) -> list[int]:
    config = builder.config
    providers: list[int] = []
    for _ in range(count):
        if region == builder.island or rng.random() < config.stub_same_region_probability:
            pool = builder.transit_by_region[region]
        else:
            other = rng.choice(builder.regions)
            pool = builder.transit_by_region[other]
        pool = [asn for asn in pool if asn not in providers]
        if not pool:
            continue
        providers.extend(_weighted_sample(rng, pool, builder.degree_weight, 1))
    if not providers:
        providers = [rng.choice(builder.transit_by_region[region])]
    return providers


def default_address_plan(graph: ASGraph, *, seed: int | None = None) -> AddressPlan:
    """Allocate address space sized by (degree+1)² — heavy-tailed like RIR data."""
    weights = {asn: float(graph.degree(asn) + 1) ** 2 for asn in graph.asns()}
    return AddressPlan.build(weights, seed=seed if seed is not None else 2014)
