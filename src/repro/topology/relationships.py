"""Business relationships between autonomous systems.

The simulator follows the classic Gao–Rexford model the paper uses: each
inter-AS link is a *provider→customer*, *peer↔peer* or *sibling↔sibling*
relationship, and both route preference (LOCAL_PREF) and export policy
(valley-free propagation) are functions of these relationship types.
"""

from __future__ import annotations

import enum

__all__ = ["Relationship", "RouteClass"]


class Relationship(enum.Enum):
    """The relationship an AS has *with a specific neighbor*.

    ``CUSTOMER`` means "this neighbor is my customer" — i.e. the neighbor
    pays me for transit. The four values are what the routing policy keys
    on; a link is stored from both endpoints' point of view (one side's
    CUSTOMER is the other's PROVIDER; PEER and SIBLING are symmetric).
    """

    CUSTOMER = "customer"
    PROVIDER = "provider"
    PEER = "peer"
    SIBLING = "sibling"

    def inverse(self) -> "Relationship":
        """The same link as seen from the other endpoint."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return self


class RouteClass(enum.IntEnum):
    """LOCAL_PREF class of a route, from the perspective of the AS holding it.

    Ordered by preference (paper, Section III: "customers are preferred over
    peers, and peers are preferred over transit providers"). Smaller is
    better so tuples sort naturally. ``ORIGIN`` marks a self-originated
    route, which beats everything.
    """

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3

    @classmethod
    def from_relationship(cls, relationship: Relationship) -> "RouteClass":
        """Class of a route learned from a neighbor of the given kind.

        A route learned from my *customer* is a customer route, etc.
        Sibling-learned routes keep the class they had inside the sibling
        group, so they never map through this function — sibling groups are
        collapsed into a single routing node before simulation (see
        :mod:`repro.topology.view`).
        """
        if relationship is Relationship.CUSTOMER:
            return cls.CUSTOMER
        if relationship is Relationship.PEER:
            return cls.PEER
        if relationship is Relationship.PROVIDER:
            return cls.PROVIDER
        raise ValueError(f"no route class for {relationship}")
