"""Deterministic full-CAIDA-scale topology fixtures.

The paper's headline figures were computed on the real CAIDA snapshot —
42,697 ASes and 139,156 provider/customer/peer links — which this
environment cannot download. The calibrated generator in
:mod:`repro.topology.generator` reproduces the snapshot's *structure*,
but its degree-preferential sampling is quadratic-ish in the per-region
transit pool and becomes the bottleneck well before 42k ASes. This
module generates CAIDA-*scale* fixtures in O(links): the layering the
scale experiments need (a tier-1 clique, a transit hierarchy with
guaranteed deep chains, a heavy-tailed stub edge) built with an
endpoint-list preferential-attachment pool instead of per-pick weighted
scans.

Fixtures are meant to flow through the real CAIDA serial-1 file format:
:func:`write_scale_fixture` emits via :func:`repro.topology.caida
.dump_caida` and the scale benchmark/tests read it back through
:func:`~repro.topology.caida.load_caida`, so the full-scale path
exercises the same parser a downloaded snapshot would.

Generation is fully deterministic for a given :class:`ScaleFixtureConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.topology.asgraph import ASGraph
from repro.topology.caida import dump_caida
from repro.topology.relationships import Relationship
from repro.util.rng import make_rng

__all__ = ["ScaleFixtureConfig", "generate_scale_fixture", "write_scale_fixture"]


@dataclass(frozen=True)
class ScaleFixtureConfig:
    """Knobs for a CAIDA-scale fixture.

    The defaults match the paper's snapshot headline numbers: 42,697
    ASes, a link count aimed at 139,156 (realized within the peer-fill
    granularity), 17 tier-1s and ~14.8% transit ASes. ``as_count`` is
    exact by construction; ``chain_count`` deep provider chains of
    ``chain_depth`` hops guarantee depth-2…6 targets so the Fig. 2
    depth-ordering phenomenon is measurable at full scale.
    """

    as_count: int = 42_697
    link_target: int = 139_156
    tier1_count: int = 17
    transit_fraction: float = 0.148
    chain_count: int = 48
    chain_depth: int = 5
    sibling_pairs: int = 24
    seed: int = 2014

    def __post_init__(self) -> None:
        if self.tier1_count < 2:
            raise ValueError("need at least two tier-1 ASes")
        transit = int(self.as_count * self.transit_fraction)
        if transit <= self.tier1_count + self.chain_count * self.chain_depth:
            raise ValueError("transit budget too small for the chain configuration")
        if self.as_count <= transit:
            raise ValueError("as_count leaves no room for stubs")

    @classmethod
    def scaled(cls, as_count: int, *, seed: int = 2014, **overrides) -> "ScaleFixtureConfig":
        """A configuration proportionally shrunk from the full snapshot."""
        fraction = as_count / 42_697
        chain_count = overrides.pop("chain_count", max(6, round(48 * fraction)))
        link_target = overrides.pop("link_target", round(139_156 * fraction))
        tier1_count = overrides.pop("tier1_count", 17 if as_count >= 1200 else max(3, as_count // 70))
        return cls(
            as_count=as_count,
            link_target=link_target,
            tier1_count=tier1_count,
            chain_count=chain_count,
            seed=seed,
            **overrides,
        )


def generate_scale_fixture(config: ScaleFixtureConfig | None = None) -> ASGraph:
    """Generate the CAIDA-scale fixture graph (O(links))."""
    config = config or ScaleFixtureConfig()
    rng = make_rng(config.seed, "scale-fixture")
    graph = ASGraph()

    transit_total = int(config.as_count * config.transit_fraction)
    stub_total = config.as_count - transit_total

    # Preferential-attachment endpoint pool: each provider candidate
    # appears once per link it has, so rng.choice over the list is a
    # degree-weighted draw in O(1) — the trick that keeps the whole
    # build linear in the link count.
    endpoint_pool: list[int] = []
    # ASGraph.edge_count() walks every node, so the fill loops below keep
    # their own running link tally instead of polling it per iteration.
    links = 0

    def link(provider: int, customer: int) -> None:
        nonlocal links
        graph.add_relationship(provider, customer, Relationship.CUSTOMER)
        endpoint_pool.append(provider)
        links += 1

    # --- Tier-1 clique. ----------------------------------------------------
    tier1 = list(range(1, config.tier1_count + 1))
    for asn in tier1:
        graph.add_as(asn, tier1=True)
        endpoint_pool.append(asn)  # seed the pool so early picks spread
    for index, a in enumerate(tier1):
        for b in tier1[index + 1 :]:
            graph.add_relationship(a, b, Relationship.PEER)
            links += 1

    next_asn = config.tier1_count + 1

    # --- Deep provider chains (guaranteed depth-2…chain_depth+1 roles). ----
    chain_members: list[int] = []
    for _ in range(config.chain_count):
        previous = rng.choice(tier1)
        for _ in range(config.chain_depth):
            asn = next_asn
            next_asn += 1
            graph.add_as(asn)
            link(previous, asn)
            chain_members.append(asn)
            previous = asn

    # --- Remaining transit: 1–3 providers drawn degree-preferentially. -----
    transit_remaining = transit_total - config.tier1_count - len(chain_members)
    transit = list(chain_members)
    for _ in range(transit_remaining):
        asn = next_asn
        next_asn += 1
        graph.add_as(asn)
        for _ in range(rng.choice((1, 1, 2, 2, 3))):
            provider = rng.choice(endpoint_pool)
            # The pool only ever contains already-placed ASes, so the
            # provider hierarchy is a DAG by construction.
            if provider != asn and graph.relationship(provider, asn) is None:
                link(provider, asn)
        transit.append(asn)

    # --- Stubs: the heavy tail, multihomed 1–3 ways onto the transit edge. -
    first_stub = next_asn
    for _ in range(stub_total):
        asn = next_asn
        next_asn += 1
        graph.add_as(asn)
        homes = rng.choice((1, 1, 1, 2, 2, 3))
        for _ in range(homes):
            provider = rng.choice(endpoint_pool)
            if provider != asn and graph.relationship(provider, asn) is None:
                graph.add_relationship(provider, asn, Relationship.CUSTOMER)
                # Stubs never enter the pool: they must stay customer-free
                # leaves, so only the *provider* endpoint is re-weighted.
                endpoint_pool.append(provider)
                links += 1

    # --- Lateral transit peering up to the link target. --------------------
    attempts = 0
    max_attempts = 4 * config.link_target
    while links < config.link_target and attempts < max_attempts:
        attempts += 1
        a = rng.choice(transit)
        b = rng.choice(transit)
        if a != b and graph.relationship(a, b) is None:
            graph.add_relationship(a, b, Relationship.PEER)
            links += 1

    # --- A sprinkle of sibling stubs (exercises the view collapse). --------
    for _ in range(config.sibling_pairs):
        a = rng.randrange(first_stub, next_asn)
        b = rng.randrange(first_stub, next_asn)
        if a != b and graph.relationship(a, b) is None:
            graph.add_relationship(a, b, Relationship.SIBLING)

    return graph


def write_scale_fixture(
    path: str | Path, config: ScaleFixtureConfig | None = None
) -> Path:
    """Generate the fixture and write it in CAIDA serial-1 format.

    ``.gz`` suffixes compress, exactly as :func:`dump_caida` does; the
    intended read path is the real :func:`repro.topology.caida
    .load_caida` parser.
    """
    path = Path(path)
    dump_caida(generate_scale_fixture(config), path)
    return path
