"""Reach and overlap metrics.

Beyond depth, the paper identifies two secondary factors: "the reach and
overlap of the tier-1 ASes involved in the attacks, where reach is defined
to be the number of ASes that can be independently reached from an AS
without the aid of peer ASes" (Section IV), and Section VII recommends
re-homing "to reduce depth, and to increase non-overlapping reach".

This module quantifies both: pairwise customer-cone overlap, the tier-1
overlap matrix, and the *non-overlapping reach* an AS obtains from its
provider set (the part of each provider's cone no other provider covers —
the redundancy multi-homing actually buys).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.topology.asgraph import ASGraph
from repro.topology.classify import customer_cone, find_tier1

__all__ = [
    "cone_overlap",
    "overlap_matrix",
    "ProviderRedundancy",
    "provider_redundancy",
    "rank_providers_by_added_reach",
]


def cone_overlap(graph: ASGraph, a: int, b: int) -> int:
    """Number of ASes in both customer cones (excluding a and b)."""
    shared = customer_cone(graph, a) & customer_cone(graph, b)
    return len(shared - {a, b})


def overlap_matrix(
    graph: ASGraph, asns: Iterable[int] | None = None
) -> Mapping[tuple[int, int], int]:
    """Pairwise cone overlaps, keyed by ordered ``(low, high)`` ASN pairs.

    Defaults to the tier-1 set — the paper's "reach and overlap of the
    tier-1 ASes" factor in attacker aggressiveness.
    """
    members = sorted(asns if asns is not None else find_tier1(graph))
    cones = {asn: customer_cone(graph, asn) for asn in members}
    result: dict[tuple[int, int], int] = {}
    for index, a in enumerate(members):
        for b in members[index + 1:]:
            shared = cones[a] & cones[b]
            result[(a, b)] = len(shared - {a, b})
    return result


@dataclass(frozen=True)
class ProviderRedundancy:
    """How much independent reach an AS's provider set provides."""

    asn: int
    total_reach: int
    exclusive_reach: Mapping[int, int]

    @property
    def redundancy(self) -> float:
        """Fraction of the union cone covered by more than one provider.

        0.0 means the providers' cones are disjoint (maximum independence);
        close to 1.0 means the providers are interchangeable and
        multi-homing adds little resistance — the paper's observation that
        multi-homing is only "a very slight improvement" when the second
        provider's reach overlaps the first's.
        """
        if self.total_reach == 0:
            return 0.0
        exclusive = sum(self.exclusive_reach.values())
        return 1.0 - exclusive / self.total_reach


def provider_redundancy(graph: ASGraph, asn: int) -> ProviderRedundancy:
    """Measure the overlap structure of *asn*'s provider cones."""
    providers = sorted(graph.providers(asn))
    cones = {
        provider: customer_cone(graph, provider) - {asn} for provider in providers
    }
    union: set[int] = set()
    for cone in cones.values():
        union |= cone
    exclusive: dict[int, int] = {}
    for provider, cone in cones.items():
        others: set[int] = set()
        for other, other_cone in cones.items():
            if other != provider:
                others |= other_cone
        exclusive[provider] = len(cone - others)
    return ProviderRedundancy(
        asn=asn, total_reach=len(union), exclusive_reach=exclusive
    )


def rank_providers_by_added_reach(
    graph: ASGraph, asn: int, candidates: Iterable[int]
) -> list[tuple[int, int]]:
    """Rank candidate new providers by the reach they would *add*.

    Section VII: multi-home "to increase non-overlapping reach". Returns
    ``(candidate, added_reach)`` pairs, best first — the added reach is the
    candidate's cone minus everything the current providers already cover.
    """
    current: set[int] = set()
    for provider in graph.providers(asn):
        current |= customer_cone(graph, provider)
    ranked = []
    for candidate in candidates:
        if candidate == asn or candidate in graph.providers(asn):
            continue
        added = customer_cone(graph, candidate) - current - {asn}
        ranked.append((candidate, len(added)))
    ranked.sort(key=lambda item: (-item[1], item[0]))
    return ranked
