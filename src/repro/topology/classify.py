"""Topology classification: tier-1 inference, depth, reach, customer cones.

These are the metrics the paper's vulnerability analysis keys on:

* **tier-1** — a provider-free AS in the top peering clique;
* **depth** — "the number of hops to the nearest tier-1 AS", which Section
  IV *redefines* after the Fig. 3 experiments to "the number of hops from an
  AS to its nearest tier-1 **or tier-2** provider" (tier-2s behave like
  tier-1s for vulnerability purposes);
* **reach** — "the number of ASes that can be independently reached from an
  AS without the aid of peer ASes", i.e. the size of its customer cone;
* **transit vs stub** — attacks in the optimistic scenario originate only
  from the transit ASes (paper: 6,318 of 42,697 = 14.7%).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.topology.asgraph import ASGraph

__all__ = [
    "find_tier1",
    "find_tier2",
    "depth_to_tier1",
    "effective_depth",
    "customer_cone",
    "reach",
    "transit_asns",
    "stub_asns",
    "TopologySummary",
    "summarize",
]


def find_tier1(graph: ASGraph) -> frozenset[int]:
    """The tier-1 set: explicit markings if present, else inferred.

    Inference: among provider-free ASes, greedily grow a peering clique
    starting from the highest-degree candidate, admitting candidates in
    degree order that peer with every member so far. This is the standard
    "top clique" heuristic; on the synthetic topology it recovers exactly
    the generator's marked tier-1 mesh.
    """
    marked = graph.marked_tier1()
    if marked:
        return marked
    candidates = [asn for asn in graph.asns() if not graph.providers(asn)]
    if not candidates:
        return frozenset()
    candidates.sort(key=lambda asn: (-graph.degree(asn), asn))
    clique: list[int] = [candidates[0]]
    for asn in candidates[1:]:
        peers = graph.peers(asn)
        if all(member in peers for member in clique):
            clique.append(asn)
    return frozenset(clique)


def find_tier2(
    graph: ASGraph,
    tier1: frozenset[int] | None = None,
    *,
    min_degree: int | None = None,
) -> frozenset[int]:
    """Large direct customers of tier-1 ASes.

    The paper's redefinition of depth treats "large tier-2 providers" as
    depth anchors. A tier-2 here is a transit AS that (a) is a direct
    customer of at least one tier-1 and (b) has degree at least
    ``min_degree``. The default threshold is adaptive: one quarter of the
    maximum non-tier-1 degree, floored at 5, which on both the synthetic
    and real topologies selects the big regional carriers and nothing else.
    """
    tier1 = tier1 if tier1 is not None else find_tier1(graph)
    non_tier1_degrees = [graph.degree(a) for a in graph.asns() if a not in tier1]
    if not non_tier1_degrees:
        return frozenset()
    if min_degree is None:
        min_degree = max(5, max(non_tier1_degrees) // 4)
    result = set()
    for asn in graph.asns():
        if asn in tier1:
            continue
        if not graph.customers(asn):
            continue
        if graph.degree(asn) < min_degree:
            continue
        if graph.providers(asn) & tier1:
            result.add(asn)
    return frozenset(result)


def _bfs_depth(graph: ASGraph, anchors: Iterable[int]) -> dict[int, int]:
    """Hop distance from the anchor set, descending provider→customer links.

    Depth counts *provider hops*: an AS's depth is one more than the
    shallowest of its providers (anchors are depth 0). ASes unreachable via
    customer links from any anchor get no entry.
    """
    depth: dict[int, int] = {}
    queue: deque[int] = deque()
    for anchor in anchors:
        if anchor in graph:
            depth[anchor] = 0
            queue.append(anchor)
    while queue:
        asn = queue.popleft()
        for customer in graph.customers(asn):
            if customer not in depth:
                depth[customer] = depth[asn] + 1
                queue.append(customer)
    return depth


def depth_to_tier1(graph: ASGraph, tier1: frozenset[int] | None = None) -> dict[int, int]:
    """Original depth metric: provider hops to the nearest tier-1."""
    tier1 = tier1 if tier1 is not None else find_tier1(graph)
    return _bfs_depth(graph, tier1)


def effective_depth(
    graph: ASGraph,
    tier1: frozenset[int] | None = None,
    tier2: frozenset[int] | None = None,
) -> dict[int, int]:
    """The paper's redefined depth: hops to the nearest tier-1 *or tier-2*."""
    tier1 = tier1 if tier1 is not None else find_tier1(graph)
    tier2 = tier2 if tier2 is not None else find_tier2(graph, tier1)
    return _bfs_depth(graph, set(tier1) | set(tier2))


def customer_cone(graph: ASGraph, asn: int) -> frozenset[int]:
    """All ASes reachable from *asn* by descending customer links.

    Includes *asn* itself; this is CAIDA's customer-cone definition and the
    basis of the paper's *reach* metric and of defensive stub filtering.
    """
    seen = {asn}
    queue: deque[int] = deque([asn])
    while queue:
        current = queue.popleft()
        for customer in graph.customers(current):
            if customer not in seen:
                seen.add(customer)
                queue.append(customer)
    return frozenset(seen)


def reach(graph: ASGraph, asn: int) -> int:
    """The paper's reach metric: ASes reachable without the aid of peers.

    Valley-free paths that avoid peer links from *asn* can only descend
    customer links, so reach equals the customer-cone size excluding the AS
    itself.
    """
    return len(customer_cone(graph, asn)) - 1


def transit_asns(graph: ASGraph) -> frozenset[int]:
    """ASes with at least one customer (the paper's attacker pool)."""
    return frozenset(asn for asn in graph.asns() if graph.customers(asn))


def stub_asns(graph: ASGraph) -> frozenset[int]:
    """Customer-free ASes (edge networks)."""
    return frozenset(asn for asn in graph.asns() if not graph.customers(asn))


@dataclass(frozen=True)
class TopologySummary:
    """Headline statistics, mirroring the paper's Section III description."""

    as_count: int
    link_count: int
    tier1: frozenset[int]
    tier2: frozenset[int]
    transit_count: int
    stub_count: int
    max_depth: int
    depth_histogram: Mapping[int, int]

    @property
    def transit_fraction(self) -> float:
        return self.transit_count / self.as_count if self.as_count else 0.0


def summarize(graph: ASGraph) -> TopologySummary:
    """Compute the summary used by README examples and calibration tests."""
    tier1 = find_tier1(graph)
    tier2 = find_tier2(graph, tier1)
    depth = effective_depth(graph, tier1, tier2)
    histogram: dict[int, int] = {}
    for value in depth.values():
        histogram[value] = histogram.get(value, 0) + 1
    transit = transit_asns(graph)
    return TopologySummary(
        as_count=len(graph),
        link_count=graph.edge_count(),
        tier1=tier1,
        tier2=tier2,
        transit_count=len(transit),
        stub_count=len(graph) - len(transit),
        max_depth=max(depth.values(), default=0),
        depth_histogram=histogram,
    )
