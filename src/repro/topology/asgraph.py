"""The AS-level topology graph.

:class:`ASGraph` stores autonomous systems and their typed business
relationships (provider/customer, peer, sibling) plus per-AS metadata the
experiments need: region tags (Section VII's New-Zealand-style regional
analysis) and an optional explicit tier-1 marking from the generator.

The structure is mutable because Section VII's self-interest playbook edits
it: *re-homing* a vulnerable AS to a lower-depth provider and *multi-homing*
it to additional providers are first-class operations here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.topology.relationships import Relationship

__all__ = ["ASGraph", "TopologyError"]


class TopologyError(ValueError):
    """Raised on inconsistent topology edits (unknown AS, conflicting link)."""


@dataclass
class _ASRecord:
    providers: set[int] = field(default_factory=set)
    customers: set[int] = field(default_factory=set)
    peers: set[int] = field(default_factory=set)
    siblings: set[int] = field(default_factory=set)
    region: str | None = None
    tier1: bool = False

    def neighbor_sets(self) -> tuple[set[int], ...]:
        return (self.providers, self.customers, self.peers, self.siblings)


class ASGraph:
    """Mutable AS topology with relationship-typed adjacency."""

    def __init__(self) -> None:
        self._nodes: dict[int, _ASRecord] = {}

    # -- nodes ---------------------------------------------------------------

    def add_as(self, asn: int, *, region: str | None = None, tier1: bool = False) -> None:
        """Add an AS (idempotent; metadata is updated if already present)."""
        record = self._nodes.get(asn)
        if record is None:
            self._nodes[asn] = _ASRecord(region=region, tier1=tier1)
        else:
            if region is not None:
                record.region = region
            record.tier1 = record.tier1 or tier1

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def asns(self) -> list[int]:
        """All ASNs in ascending order."""
        return sorted(self._nodes)

    def region_of(self, asn: int) -> str | None:
        return self._record(asn).region

    def set_region(self, asn: int, region: str | None) -> None:
        self._record(asn).region = region

    def is_marked_tier1(self, asn: int) -> bool:
        """True if the generator explicitly marked this AS tier-1."""
        return self._record(asn).tier1

    def marked_tier1(self) -> frozenset[int]:
        return frozenset(asn for asn, rec in self._nodes.items() if rec.tier1)

    def regions(self) -> dict[str, list[int]]:
        """Region name → sorted member ASNs (unregioned ASes omitted)."""
        result: dict[str, list[int]] = {}
        for asn, record in self._nodes.items():
            if record.region is not None:
                result.setdefault(record.region, []).append(asn)
        for members in result.values():
            members.sort()
        return result

    def _record(self, asn: int) -> _ASRecord:
        try:
            return self._nodes[asn]
        except KeyError:
            raise TopologyError(f"unknown AS{asn}") from None

    # -- edges ---------------------------------------------------------------

    def add_relationship(self, asn: int, neighbor: int, relationship: Relationship) -> None:
        """Record that *neighbor* is a ``relationship`` of *asn*.

        ``add_relationship(a, b, CUSTOMER)`` means *b buys transit from a*.
        Both directions are stored. Adding a second, conflicting
        relationship between the same pair raises :class:`TopologyError`.
        """
        if asn == neighbor:
            raise TopologyError(f"self-link on AS{asn}")
        record = self._record(asn)
        other = self._record(neighbor)
        existing = self.relationship(asn, neighbor)
        if existing is relationship:
            return
        if existing is not None:
            raise TopologyError(
                f"AS{asn}–AS{neighbor} already {existing.value}, "
                f"refusing to also mark {relationship.value}"
            )
        if relationship is Relationship.CUSTOMER:
            record.customers.add(neighbor)
            other.providers.add(asn)
        elif relationship is Relationship.PROVIDER:
            record.providers.add(neighbor)
            other.customers.add(asn)
        elif relationship is Relationship.PEER:
            record.peers.add(neighbor)
            other.peers.add(asn)
        else:
            record.siblings.add(neighbor)
            other.siblings.add(asn)

    def remove_relationship(self, asn: int, neighbor: int) -> None:
        """Remove whatever link exists between the pair (error if none)."""
        existing = self.relationship(asn, neighbor)
        if existing is None:
            raise TopologyError(f"no link AS{asn}–AS{neighbor}")
        record = self._record(asn)
        other = self._record(neighbor)
        for bucket in record.neighbor_sets():
            bucket.discard(neighbor)
        for bucket in other.neighbor_sets():
            bucket.discard(asn)

    def relationship(self, asn: int, neighbor: int) -> Relationship | None:
        """The relationship *neighbor* has to *asn*, or None."""
        record = self._record(asn)
        if neighbor in record.customers:
            return Relationship.CUSTOMER
        if neighbor in record.providers:
            return Relationship.PROVIDER
        if neighbor in record.peers:
            return Relationship.PEER
        if neighbor in record.siblings:
            return Relationship.SIBLING
        return None

    # -- neighbor queries ------------------------------------------------------

    def providers(self, asn: int) -> frozenset[int]:
        return frozenset(self._record(asn).providers)

    def customers(self, asn: int) -> frozenset[int]:
        return frozenset(self._record(asn).customers)

    def peers(self, asn: int) -> frozenset[int]:
        return frozenset(self._record(asn).peers)

    def siblings(self, asn: int) -> frozenset[int]:
        return frozenset(self._record(asn).siblings)

    def neighbors(self, asn: int) -> frozenset[int]:
        record = self._record(asn)
        return frozenset().union(*record.neighbor_sets())

    def degree(self, asn: int) -> int:
        record = self._record(asn)
        return sum(len(bucket) for bucket in record.neighbor_sets())

    def edge_count(self) -> int:
        """Number of undirected relationship links."""
        return sum(self.degree(asn) for asn in self._nodes) // 2

    def edges(self) -> Iterator[tuple[int, int, Relationship]]:
        """Each link once, as ``(asn, neighbor, relationship-of-neighbor)``.

        Provider/customer links are reported from the provider side
        (``relationship`` = CUSTOMER); symmetric links from the lower ASN.
        """
        for asn in sorted(self._nodes):
            record = self._nodes[asn]
            for customer in sorted(record.customers):
                yield asn, customer, Relationship.CUSTOMER
            for peer in sorted(record.peers):
                if asn < peer:
                    yield asn, peer, Relationship.PEER
            for sibling in sorted(record.siblings):
                if asn < sibling:
                    yield asn, sibling, Relationship.SIBLING

    # -- mutation used by the self-interest playbook ---------------------------

    def rehome(self, asn: int, old_provider: int, new_provider: int) -> None:
        """Replace one provider link: the Section VII re-homing action."""
        if self.relationship(asn, old_provider) is not Relationship.PROVIDER:
            raise TopologyError(f"AS{old_provider} is not a provider of AS{asn}")
        self.remove_relationship(asn, old_provider)
        self.add_relationship(new_provider, asn, Relationship.CUSTOMER)

    def multihome(self, asn: int, new_provider: int) -> None:
        """Add a provider link: the Section VII multi-homing action."""
        self.add_relationship(new_provider, asn, Relationship.CUSTOMER)

    # -- derived views -----------------------------------------------------------

    def copy(self) -> "ASGraph":
        clone = ASGraph()
        for asn, record in self._nodes.items():
            clone._nodes[asn] = _ASRecord(
                providers=set(record.providers),
                customers=set(record.customers),
                peers=set(record.peers),
                siblings=set(record.siblings),
                region=record.region,
                tier1=record.tier1,
            )
        return clone

    def subgraph(self, asns: Iterable[int]) -> "ASGraph":
        """The induced subgraph on *asns* (links with both ends kept)."""
        keep = set(asns)
        clone = ASGraph()
        for asn in keep:
            record = self._record(asn)
            clone.add_as(asn, region=record.region, tier1=record.tier1)
        for asn, neighbor, relationship in self.edges():
            if asn in keep and neighbor in keep:
                clone.add_relationship(asn, neighbor, relationship)
        return clone

    def to_networkx(self):
        """Export as a ``networkx.Graph`` with ``relationship`` edge attrs."""
        import networkx as nx

        graph = nx.Graph()
        for asn in self.asns():
            record = self._nodes[asn]
            graph.add_node(asn, region=record.region, tier1=record.tier1)
        for asn, neighbor, relationship in self.edges():
            graph.add_edge(asn, neighbor, relationship=relationship.value)
        return graph

    # -- consistency -----------------------------------------------------------

    def validate(self) -> None:
        """Check adjacency symmetry; raises :class:`TopologyError` on damage."""
        for asn, record in self._nodes.items():
            for provider in record.providers:
                if asn not in self._record(provider).customers:
                    raise TopologyError(f"asymmetric p2c AS{provider}→AS{asn}")
            for customer in record.customers:
                if asn not in self._record(customer).providers:
                    raise TopologyError(f"asymmetric p2c AS{asn}→AS{customer}")
            for peer in record.peers:
                if asn not in self._record(peer).peers:
                    raise TopologyError(f"asymmetric peering AS{asn}–AS{peer}")
            for sibling in record.siblings:
                if asn not in self._record(sibling).siblings:
                    raise TopologyError(f"asymmetric sibling AS{asn}–AS{sibling}")
            buckets = record.neighbor_sets()
            for i in range(len(buckets)):
                for j in range(i + 1, len(buckets)):
                    overlap = buckets[i] & buckets[j]
                    if overlap:
                        raise TopologyError(
                            f"AS{asn} has conflicting relationships with {sorted(overlap)}"
                        )
