"""The compiled routing view: sibling collapse + index-based adjacency.

The paper's simulator handles sibling ASes with "a community string to
create the equivalent of one AS out of multiple sibling ASes". We implement
that equivalence structurally: before any routing computation, sibling
groups are collapsed into single routing nodes (union–find over sibling
links), so both engines see a graph with only customer/peer/provider edges.

The view also re-indexes ASNs to dense integers and stores adjacency as
flat lists — the representation both the message simulator and the fast
three-phase engine iterate over millions of times during attacker sweeps.
A view is immutable; rebuild it after editing the :class:`ASGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.topology.asgraph import ASGraph
from repro.topology.classify import find_tier1
from repro.topology.relationships import Relationship

__all__ = ["RoutingView"]


class _UnionFind:
    def __init__(self, items: Iterable[int]) -> None:
        self._parent = {item: item for item in items}

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic: smaller ASN becomes the root.
            if ra > rb:
                ra, rb = rb, ra
            self._parent[rb] = ra


@dataclass(frozen=True)
class RoutingView:
    """Immutable, index-compiled topology used by the routing engines.

    Node *i* represents one routing entity (an AS or a collapsed sibling
    group). ``customers[i]`` / ``peers[i]`` / ``providers[i]`` hold neighbor
    node indices; ``members[i]`` the original ASNs; ``is_tier1[i]`` whether
    any member is tier-1 (tier-1 nodes use shortest-path-first preference).
    """

    customers: tuple[tuple[int, ...], ...]
    peers: tuple[tuple[int, ...], ...]
    providers: tuple[tuple[int, ...], ...]
    members: tuple[tuple[int, ...], ...]
    is_tier1: tuple[bool, ...]
    _node_of: dict[int, int]

    # -- construction ------------------------------------------------------

    @classmethod
    def from_graph(
        cls, graph: ASGraph, *, tier1: frozenset[int] | None = None
    ) -> "RoutingView":
        tier1 = tier1 if tier1 is not None else find_tier1(graph)
        asns = graph.asns()
        uf = _UnionFind(asns)
        for asn in asns:
            for sibling in graph.siblings(asn):
                uf.union(asn, sibling)

        roots = sorted({uf.find(asn) for asn in asns})
        index_of_root = {root: index for index, root in enumerate(roots)}
        node_of = {asn: index_of_root[uf.find(asn)] for asn in asns}

        n = len(roots)
        members: list[list[int]] = [[] for _ in range(n)]
        for asn in asns:
            members[node_of[asn]].append(asn)

        # Merge relationship edges between groups. When members disagree
        # (one member buys from group B while another sells to it), the
        # merged pair is treated as peers — the only symmetric resolution.
        kinds: list[dict[int, set[Relationship]]] = [dict() for _ in range(n)]
        for asn in asns:
            node = node_of[asn]
            for provider in graph.providers(asn):
                other = node_of[provider]
                if other != node:
                    kinds[node].setdefault(other, set()).add(Relationship.PROVIDER)
            for customer in graph.customers(asn):
                other = node_of[customer]
                if other != node:
                    kinds[node].setdefault(other, set()).add(Relationship.CUSTOMER)
            for peer in graph.peers(asn):
                other = node_of[peer]
                if other != node:
                    kinds[node].setdefault(other, set()).add(Relationship.PEER)

        customers: list[tuple[int, ...]] = []
        peers: list[tuple[int, ...]] = []
        providers: list[tuple[int, ...]] = []
        for node in range(n):
            node_customers: list[int] = []
            node_peers: list[int] = []
            node_providers: list[int] = []
            for other, seen in sorted(kinds[node].items()):
                if len(seen) > 1:
                    node_peers.append(other)
                elif Relationship.CUSTOMER in seen:
                    node_customers.append(other)
                elif Relationship.PROVIDER in seen:
                    node_providers.append(other)
                else:
                    node_peers.append(other)
            customers.append(tuple(node_customers))
            peers.append(tuple(node_peers))
            providers.append(tuple(node_providers))

        is_tier1 = tuple(
            any(asn in tier1 for asn in members[node]) for node in range(n)
        )
        return cls(
            customers=tuple(customers),
            peers=tuple(peers),
            providers=tuple(providers),
            members=tuple(tuple(group) for group in members),
            is_tier1=is_tier1,
            _node_of=node_of,
        )

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.members)

    def node_of(self, asn: int) -> int:
        """The routing node representing *asn* (KeyError if unknown)."""
        return self._node_of[asn]

    def has_asn(self, asn: int) -> bool:
        return asn in self._node_of

    def asn_of(self, node: int) -> int:
        """The representative (lowest) ASN of a routing node."""
        return self.members[node][0]

    def member_count(self, node: int) -> int:
        return len(self.members[node])

    def expand(self, nodes: Iterable[int]) -> frozenset[int]:
        """Original ASNs represented by the given routing nodes."""
        result: set[int] = set()
        for node in nodes:
            result.update(self.members[node])
        return frozenset(result)

    def nodes_of(self, asns: Iterable[int]) -> frozenset[int]:
        return frozenset(self._node_of[asn] for asn in asns)

    def neighbor_nodes(self, node: int) -> Sequence[int]:
        return (*self.customers[node], *self.peers[node], *self.providers[node])
