"""The differential oracle harness: production engine vs reference.

Compares the fast :class:`~repro.bgp.engine.RoutingEngine` (and anything
layered on top of it — the convergence cache, the parallel sweep
executor, :class:`~repro.attacks.lab.HijackLab`) against the
deliberately slow :class:`~repro.oracle.reference.ReferenceSimulator`
on the observables the analyses consume: per-node (origin, class,
length) and the polluted set.

Two entry points:

* :func:`compare_states` / :func:`assert_states_agree` — low-level diff
  between one engine :class:`RouteState` and one reference table, used
  by the property tests;
* :func:`random_hijack_cases` + :func:`run_differential` — a
  dependency-free generator of random internet-shaped hijack cases
  (plain :mod:`repro.util.rng`, no Hypothesis) driving the same
  comparison, so the check is available at runtime through
  ``repro-bgp validate`` and in environments without the test extras.

The Hypothesis strategies in :mod:`repro.oracle.strategies` build the
same topology shape through :func:`build_random_topology`, sharing the
generator logic while drawing choices from Hypothesis instead of an RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Collection, Iterator, Mapping

from repro.bgp.engine import RouteState, RoutingEngine
from repro.bgp.policy import PolicyConfig
from repro.oracle.reference import ReferenceRoute, ReferenceSimulator
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship
from repro.topology.view import RoutingView
from repro.util.rng import make_rng

__all__ = [
    "Disagreement",
    "DifferentialError",
    "HijackCase",
    "assert_states_agree",
    "build_random_topology",
    "compare_states",
    "random_hijack_cases",
    "run_differential",
]


class DifferentialError(AssertionError):
    """The engine and the reference oracle disagreed on a route."""


@dataclass(frozen=True)
class Disagreement:
    """One node on which engine and oracle differ."""

    node: int
    field: str
    engine_value: object
    oracle_value: object

    def __str__(self) -> str:
        return (
            f"node {self.node}: {self.field} engine={self.engine_value!r} "
            f"oracle={self.oracle_value!r}"
        )


def compare_states(
    view: RoutingView,
    engine_state: RouteState,
    oracle_table: Mapping[int, ReferenceRoute],
) -> list[Disagreement]:
    """Diff one engine state against one reference table.

    Compares exactly the observables the model defines: whether a node
    has a route, and if so its installed (origin, class, length). Parent
    pointers are *not* compared — within one (class, length) bucket the
    winning sender is an implementation detail both engines are free to
    pick differently.
    """
    disagreements: list[Disagreement] = []
    for node in range(len(view)):
        oracle_route = oracle_table.get(node)
        if oracle_route is None:
            if engine_state.has_route(node):
                disagreements.append(
                    Disagreement(node, "reachable", True, False)
                )
            continue
        if not engine_state.has_route(node):
            disagreements.append(Disagreement(node, "reachable", False, True))
            continue
        if engine_state.origin_of[node] != oracle_route.origin:
            disagreements.append(
                Disagreement(
                    node, "origin", engine_state.origin_of[node], oracle_route.origin
                )
            )
        if engine_state.cls[node] != oracle_route.route_class:
            disagreements.append(
                Disagreement(
                    node, "class", engine_state.cls[node], oracle_route.route_class
                )
            )
        if engine_state.length[node] != oracle_route.length:
            disagreements.append(
                Disagreement(
                    node, "length", engine_state.length[node], oracle_route.length
                )
            )
    return disagreements


def assert_states_agree(
    view: RoutingView,
    engine_state: RouteState,
    oracle_table: Mapping[int, ReferenceRoute],
    *,
    context: str = "",
) -> None:
    """Raise :class:`DifferentialError` listing every disagreement."""
    disagreements = compare_states(view, engine_state, oracle_table)
    if disagreements:
        listing = "\n  ".join(str(item) for item in disagreements)
        prefix = f"{context}: " if context else ""
        raise DifferentialError(
            f"{prefix}engine and oracle disagree on "
            f"{len(disagreements)} node(s):\n  {listing}"
        )


# -- random case generation (no Hypothesis required) -----------------------

# A "pick" closes over its randomness source and returns an int in
# [lo, hi] inclusive; Hypothesis strategies and plain RNGs both fit.
Pick = Callable[[int, int], int]


def build_random_topology(
    pick: Pick,
    *,
    min_size: int = 4,
    max_size: int = 28,
    max_tier1: int = 3,
) -> ASGraph:
    """A random internet-shaped AS graph (connected provider hierarchy).

    Tier-1 clique on top, every later AS homed to 1–3 earlier ASes,
    random lateral peering, an occasional sibling pair. The shape matches
    what the routing model is defined over (a provider DAG with peers),
    which is the precondition for engine/simulator/oracle agreement.
    """
    size = pick(min_size, max_size)
    tier1_count = pick(1, min(max_tier1, size - 1))
    graph = ASGraph()
    for asn in range(tier1_count):
        graph.add_as(asn, tier1=True)
    for a in range(tier1_count):
        for b in range(a + 1, tier1_count):
            graph.add_relationship(a, b, Relationship.PEER)
    for asn in range(tier1_count, size):
        graph.add_as(asn)
        for _ in range(pick(1, min(3, asn))):
            provider = pick(0, asn - 1)
            if graph.relationship(provider, asn) is None:
                graph.add_relationship(provider, asn, Relationship.CUSTOMER)
    for _ in range(pick(0, size)):
        a = pick(tier1_count, size - 1)
        b = pick(tier1_count, size - 1)
        if a != b and graph.relationship(a, b) is None:
            graph.add_relationship(a, b, Relationship.PEER)
    if size > 6 and pick(0, 1):
        a = pick(tier1_count, size - 1)
        b = pick(tier1_count, size - 1)
        if a != b and graph.relationship(a, b) is None:
            graph.add_relationship(a, b, Relationship.SIBLING)
    return graph


@dataclass(frozen=True)
class HijackCase:
    """One differential test case: a topology plus a full attack setup."""

    graph: ASGraph
    view: RoutingView
    target: int
    attacker: int
    blocked: frozenset[int]
    policy: PolicyConfig
    first_hop_filtered: bool


def random_hijack_cases(
    count: int, *, seed: int = 0, max_size: int = 28
) -> Iterator[HijackCase]:
    """Deterministic stream of random hijack cases for ``repro validate``."""
    rng = make_rng(seed, "oracle-differential")
    pick: Pick = rng.randint
    produced = 0
    while produced < count:
        graph = build_random_topology(pick, max_size=max_size)
        view = RoutingView.from_graph(graph)
        if len(view) < 2:
            continue
        target = pick(0, len(view) - 1)
        attacker = pick(0, len(view) - 1)
        if target == attacker:
            continue
        blocked = frozenset(
            pick(0, len(view) - 1) for _ in range(pick(0, len(view) // 2))
        ) - {target, attacker}
        policy = PolicyConfig(tier1_shortest_path=bool(pick(0, 4)))  # mostly on
        first_hop = not pick(0, 3)  # occasionally on
        yield HijackCase(
            graph=graph,
            view=view,
            target=target,
            attacker=attacker,
            blocked=blocked,
            policy=policy,
            first_hop_filtered=first_hop,
        )
        produced += 1


def run_differential(
    cases: Collection[HijackCase] | Iterator[HijackCase],
) -> int:
    """Run engine-vs-oracle on every case; returns the case count.

    Raises :class:`DifferentialError` on the first disagreement. Each
    case exercises the full two-phase hijack with the case's blocked set
    and policy, comparing both the legitimate and the final states.
    """
    checked = 0
    for case in cases:
        engine = RoutingEngine(case.view, case.policy)
        oracle = ReferenceSimulator(
            case.view, tier1_shortest_path=case.policy.tier1_shortest_path
        )
        result = engine.hijack(
            case.target,
            case.attacker,
            blocked=case.blocked,
            filter_first_hop_providers=case.first_hop_filtered,
        )
        oracle_legit = oracle.converge(case.target)
        assert_states_agree(
            case.view,
            result.legitimate,
            oracle_legit,
            context=f"case {checked} (legitimate, target={case.target})",
        )
        oracle_final = oracle.hijack(
            case.target,
            case.attacker,
            blocked=case.blocked,
            filter_first_hop_providers=case.first_hop_filtered,
        )
        assert_states_agree(
            case.view,
            result.final,
            oracle_final,
            context=(
                f"case {checked} (final, target={case.target}, "
                f"attacker={case.attacker})"
            ),
        )
        if result.polluted_nodes != ReferenceSimulator.holders_of(
            oracle_final, case.attacker
        ):
            raise DifferentialError(
                f"case {checked}: polluted sets differ: "
                f"engine={sorted(result.polluted_nodes)} "
                f"oracle={sorted(ReferenceSimulator.holders_of(oracle_final, case.attacker))}"
            )
        checked += 1
    return checked
