"""The reference simulator: slow, transparent, and obviously correct.

This is a direct transcription of the routing model in Section III of the
paper, written for auditability rather than speed. Deliberate design
constraints, all of them the *opposite* of the production engines:

* every route carries its **full AS path** as an explicit tuple and its
  length is always ``len(path)`` — nothing is incrementally maintained;
* propagation is a plain synchronous flood: each generation every node
  that changed last generation offers its current route to the neighbors
  the export policy allows, and each receiver picks the best offer by a
  four-line preference rule;
* there are no caches, no bucket queues, no frozen baselines, no
  incremental base-state reuse beyond what the paper's announce-only RIB
  model itself prescribes (a hijack converges the legitimate origin
  first, then the attacker on top of the same table);
* the module imports **nothing** from ``repro.bgp`` — the preference and
  export rules are re-derived here from the paper text, so a bug in
  :mod:`repro.bgp.policy` cannot silently agree with itself.

The production engine is checked against this oracle by
``tests/property/test_oracle_differential.py`` and by the
``repro-bgp validate`` CLI command (see :mod:`repro.oracle.differential`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Mapping

from repro.topology.view import RoutingView

__all__ = ["ReferenceRoute", "ReferenceSimulator", "ORIGIN", "CUSTOMER", "PEER", "PROVIDER"]

# LOCAL_PREF classes, re-declared independently of RouteClass. Smaller is
# better: "customers are preferred over peers, and peers are preferred
# over transit providers" (Section III); a self-originated route beats all.
ORIGIN = 0
CUSTOMER = 1
PEER = 2
PROVIDER = 3


@dataclass(frozen=True)
class ReferenceRoute:
    """One installed route: *origin* reached via *path* (receiver first).

    ``path`` lists the nodes the announcement traversed, nearest hop
    first, ending at the origin; the origin's own route has an empty
    path. The AS-path length is always ``len(path)`` — there is no
    separately maintained length to drift out of sync.
    """

    origin: int
    path: tuple[int, ...]
    route_class: int

    @property
    def length(self) -> int:
        return len(self.path)


def _better(
    is_tier1: bool,
    new_class: int,
    new_length: int,
    old_class: int,
    old_length: int,
    *,
    tier1_shortest_path: bool,
) -> bool:
    """The paper's MESSAGE PRIORITY rule, transcribed.

    LOCAL_PREF class first, then path length; on an exact tie the RIB
    keeps the incumbent ("the new announcement is accepted only if it has
    a shorter path length"). "Tier-1 routers always accept shortest
    path": tier-1 nodes compare length only, still keeping ties.
    """
    if is_tier1 and tier1_shortest_path:
        return new_length < old_length
    if new_class != old_class:
        return new_class < old_class
    return new_length < old_length


class ReferenceSimulator:
    """Synchronous flood of one announcement at a time over a view.

    Operates on the same sibling-collapsed :class:`RoutingView` node
    space as the production engines (sibling collapse is a topology
    transformation, not a routing rule, so sharing it does not weaken the
    differential). All state lives in plain per-call dictionaries mapping
    node index to :class:`ReferenceRoute`.
    """

    def __init__(self, view: RoutingView, *, tier1_shortest_path: bool = True) -> None:
        self.view = view
        self.tier1_shortest_path = tier1_shortest_path

    # -- the paper's rules, one method each --------------------------------

    def _class_at(self, receiver: int, sender: int) -> int:
        """LOCAL_PREF class a route takes at *receiver* when learned from
        *sender*, read straight off the business relationship."""
        if sender in self.view.customers[receiver]:
            return CUSTOMER
        if sender in self.view.peers[receiver]:
            return PEER
        if sender in self.view.providers[receiver]:
            return PROVIDER
        raise ValueError(f"{sender} is not a neighbor of {receiver}")

    def _export_targets(self, sender: int, route: ReferenceRoute) -> list[int]:
        """PROPAGATION POLICY: own and customer routes go to every
        neighbor; peer and provider routes go to customers only. Never
        export back to the neighbor the route was learned from."""
        targets = list(self.view.customers[sender])
        if route.route_class in (ORIGIN, CUSTOMER):
            targets.extend(self.view.peers[sender])
            targets.extend(self.view.providers[sender])
        learned_from = route.path[0] if route.path else None
        return [target for target in targets if target != learned_from]

    # -- convergence -------------------------------------------------------

    def converge(
        self,
        origin: int,
        *,
        table: dict[int, ReferenceRoute] | None = None,
        blocked: Collection[int] = (),
        filter_first_hop_providers: bool = False,
    ) -> dict[int, ReferenceRoute]:
        """Flood *origin*'s announcement to a stable state.

        ``table`` is the pre-existing RIB the announcement competes
        against (the legitimate state when *origin* is a hijacker); it is
        mutated in place and returned. ``blocked`` nodes drop the
        announcement entirely. ``filter_first_hop_providers`` applies the
        Section IV defensive stub filter: a *stub* origin's direct
        providers drop its announcement (peers and customers still
        receive it).
        """
        view = self.view
        if table is None:
            table = {}
        blocked_set = frozenset(blocked)
        table[origin] = ReferenceRoute(origin=origin, path=(), route_class=ORIGIN)

        origin_is_stub = not view.customers[origin]
        drop_provider_first_hop = filter_first_hop_providers and origin_is_stub

        changed = {origin}
        generation = 0
        limit = len(view) + 2  # loop-free paths cannot be longer than this
        while changed:
            generation += 1
            if generation > limit:
                raise RuntimeError(
                    f"reference simulator did not converge in {limit} generations"
                )
            # Collect every offer of this generation. An offer is the
            # candidate (class at the receiver, full AS path) a sender's
            # export produces: the sender prepended to the sender's path.
            offers: dict[int, list[tuple[int, tuple[int, ...], int]]] = {}
            for sender in sorted(changed):
                route = table[sender]
                targets = self._export_targets(sender, route)
                if sender == origin and drop_provider_first_hop:
                    targets = [
                        target
                        for target in targets
                        if target not in view.providers[origin]
                    ]
                candidate_path = (sender, *route.path)
                for receiver in targets:
                    offers.setdefault(receiver, []).append(
                        (
                            self._class_at(receiver, sender),
                            candidate_path,
                            route.origin,
                        )
                    )
            # Each receiver picks its best admissible offer and installs
            # it only when strictly preferred over the incumbent. All
            # offers of one generation have equal path length (the flood
            # expands one hop per generation), so "best" is just the best
            # class; within a class the lowest sender wins, which only
            # affects the recorded path, never (origin, class, length).
            changed = set()
            for receiver, received in sorted(offers.items()):
                if receiver in blocked_set:
                    continue
                admissible = [
                    (route_class, path, route_origin)
                    for route_class, path, route_origin in received
                    # AS-path loop check: a route that already traversed
                    # the receiver is discarded on arrival.
                    if receiver not in path and receiver != route_origin
                ]
                if not admissible:
                    continue
                best_class, best_path, best_origin = min(admissible)
                incumbent = table.get(receiver)
                if incumbent is not None and not _better(
                    view.is_tier1[receiver],
                    best_class,
                    len(best_path),
                    incumbent.route_class,
                    incumbent.length,
                    tier1_shortest_path=self.tier1_shortest_path,
                ):
                    continue
                table[receiver] = ReferenceRoute(
                    origin=best_origin, path=best_path, route_class=best_class
                )
                changed.add(receiver)
        return table

    # -- hijacks -----------------------------------------------------------

    def hijack(
        self,
        target: int,
        attacker: int,
        *,
        blocked: Collection[int] = (),
        filter_first_hop_providers: bool = False,
    ) -> dict[int, ReferenceRoute]:
        """The paper's two-phase announce-only hijack.

        The legitimate origin converges over a clean network; the
        attacker's announcement then floods over that table, displacing
        entries only where strictly preferred. Returns the final table.
        """
        if target == attacker:
            raise ValueError("attacker and target must differ")
        table = self.converge(target)
        return self.converge(
            attacker,
            table=table,
            blocked=blocked,
            filter_first_hop_providers=filter_first_hop_providers,
        )

    @staticmethod
    def holders_of(table: Mapping[int, ReferenceRoute], origin: int) -> frozenset[int]:
        """Nodes (excluding *origin* itself) routing to *origin*."""
        return frozenset(
            node
            for node, route in table.items()
            if route.origin == origin and node != origin
        )
