"""The independent correctness layer for the routing core.

Everything the paper reports — depth-ordered vulnerability, the ROV
deployment threshold, probe blind spots — rests on
:class:`~repro.bgp.engine.RoutingEngine` computing correct routes, and
since the parallel/caching work landed the fast paths are only checked
against each other. This package is the outside referee:

* :mod:`repro.oracle.reference` — a deliberately slow, obviously-correct
  reference simulator: a line-by-line transcription of the paper's
  Gao–Rexford preference and valley-free export rules with explicit
  AS-path routes, no caching, no bucket queues, no incremental state.
  It shares **no routing code** with the production engines.
* :mod:`repro.oracle.differential` — the differential harness comparing
  engine output against the reference, plus a dependency-free random
  case generator so the check also runs outside pytest
  (``repro-bgp validate``).
* :mod:`repro.oracle.invariants` — structural invariant checks on
  converged states (loop-free parent chains, valley-free final classes,
  preference stability, blocked-node coherence, cache coherence,
  convergence determinism), callable from tests and at runtime through
  the ``validate=`` flag on :class:`~repro.bgp.engine.RoutingEngine`,
  :class:`~repro.attacks.lab.HijackLab` and
  :class:`~repro.experiments.config.ExperimentConfig`.
* :mod:`repro.oracle.strategies` — the shared Hypothesis strategy
  library (random topologies, hijack cases, ROA tables, deployment
  vectors) used by the whole property-test tree. Importing it requires
  ``hypothesis``; nothing else in this package does.

See ``docs/testing.md`` for how the layers fit together.
"""

from repro.oracle.differential import (
    DifferentialError,
    Disagreement,
    assert_states_agree,
    compare_states,
    random_hijack_cases,
)
from repro.oracle.invariants import (
    InvariantViolation,
    check_cache_coherence,
    check_convergence_deterministic,
    check_hijack_result,
    check_route_state,
)
from repro.oracle.reference import ReferenceRoute, ReferenceSimulator

__all__ = [
    "DifferentialError",
    "Disagreement",
    "InvariantViolation",
    "ReferenceRoute",
    "ReferenceSimulator",
    "assert_states_agree",
    "check_cache_coherence",
    "check_convergence_deterministic",
    "check_hijack_result",
    "check_route_state",
    "compare_states",
    "random_hijack_cases",
]
