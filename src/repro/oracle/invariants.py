"""Structural invariants of converged routing states.

Each check raises :class:`InvariantViolation` with enough context to
reproduce (node indices, classes, lengths). The checks are pure reads
over a :class:`~repro.bgp.engine.RouteState` and its
:class:`~repro.topology.view.RoutingView`; they hold for *any* final
state the announce-only model can produce, including the mixed
legitimate/bogus states left behind by a hijack:

* **shape** — arrays sized to the view; a node either has no entry at
  all (no class, no parent, unreachable length) or a complete one.
* **parent consistency** — a route's class matches the business
  relationship of the edge it was learned over.
* **loop-freedom** — parent chains are acyclic and terminate at a
  self-originated entry. (Parent pointers are install-time snapshots, so
  chains may cross announcement origins; acyclicity still holds because
  per-node entries only ever improve in preference order.)
* **valley-freedom (final form)** — a customer- or peer-class entry was
  necessarily exported by a node whose class was origin/customer at
  export time; for non-tier-1 exporters class never worsens, so their
  *final* class must still be origin/customer. (Tier-1 exporters rank by
  length only and are exempt.)
* **preference stability** — every final route was exported to every
  neighbor the valley-free policy allows, and each such neighbor
  evaluated it; since entries only improve, no node may end up holding
  an entry strictly worse than a neighbor's exportable final route.
* **blocked coherence** — nodes that drop an announcement never hold a
  route originated by it.

Runtime use: :class:`~repro.bgp.engine.RoutingEngine` calls
:func:`check_route_state` after every convergence when constructed with
``validate=True``; the flag is threaded through ``HijackLab``,
``ExperimentConfig`` and the CLI. The default (off) path only tests one
boolean per convergence — nothing in the hot loops changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Collection, Mapping, Sequence

from repro.bgp.engine import UNREACHABLE, RouteState
from repro.bgp.policy import PolicyConfig, prefers
from repro.topology.relationships import RouteClass
from repro.topology.view import RoutingView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bgp.engine import HijackResult, RoutingEngine
    from repro.parallel.cache import ConvergenceCache

__all__ = [
    "InvariantViolation",
    "check_route_state",
    "check_hijack_result",
    "check_convergence_deterministic",
    "check_cache_coherence",
]

_NO_CLASS = 9  # mirrors repro.bgp.engine._NO_CLASS
_ORIGIN = int(RouteClass.ORIGIN)
_CUSTOMER = int(RouteClass.CUSTOMER)
_PEER = int(RouteClass.PEER)
_PROVIDER = int(RouteClass.PROVIDER)


class InvariantViolation(AssertionError):
    """A converged routing state broke a structural invariant."""


def _fail(invariant: str, detail: str) -> None:
    raise InvariantViolation(f"[{invariant}] {detail}")


def _edge_class(view: RoutingView, node: int, neighbor: int) -> int | None:
    """Class a route takes at *node* when learned from *neighbor*."""
    if neighbor in view.customers[node]:
        return _CUSTOMER
    if neighbor in view.peers[node]:
        return _PEER
    if neighbor in view.providers[node]:
        return _PROVIDER
    return None


def _check_shape(
    view: RoutingView,
    state: RouteState,
    origin_lengths: "Mapping[int, int] | None" = None,
) -> None:
    n = len(view)
    pad_of = origin_lengths or {}
    for name, array in (
        ("cls", state.cls),
        ("length", state.length),
        ("parent", state.parent),
        ("origin_of", state.origin_of),
    ):
        if len(array) != n:
            _fail("shape", f"{name} has {len(array)} entries for a {n}-node view")
    for node in range(n):
        has_class = state.cls[node] != _NO_CLASS
        has_length = state.length[node] != UNREACHABLE
        has_origin = state.origin_of[node] != -1
        if not (has_class == has_length == has_origin):
            _fail(
                "shape",
                f"node {node} is half-routed: cls={state.cls[node]} "
                f"length={state.length[node]} origin_of={state.origin_of[node]}",
            )
        if not has_class:
            if state.parent[node] != -1:
                _fail("shape", f"routeless node {node} has parent {state.parent[node]}")
            continue
        if state.cls[node] == _ORIGIN:
            # A path-forging announcer installs at its claimed-path padding
            # (see RoutingEngine.converge's origin_length); honest origins
            # install at 0.
            expected_length = pad_of.get(node, 0)
            if state.length[node] != expected_length or state.parent[node] != -1:
                _fail(
                    "shape",
                    f"origin-class node {node} has length {state.length[node]} "
                    f"(expected {expected_length}) parent {state.parent[node]}",
                )
            if state.origin_of[node] != node:
                _fail(
                    "shape",
                    f"origin-class node {node} claims origin {state.origin_of[node]}",
                )
        else:
            if state.length[node] < 1:
                _fail("shape", f"node {node} has non-positive length {state.length[node]}")
            if state.parent[node] < 0:
                _fail("shape", f"routed node {node} has no parent")


def _check_parent_edges(view: RoutingView, state: RouteState) -> None:
    for node in range(len(view)):
        parent = state.parent[node]
        if parent < 0:
            continue
        edge = _edge_class(view, node, parent)
        if edge is None:
            _fail("parent-edge", f"node {node} claims non-neighbor parent {parent}")
        if edge != state.cls[node]:
            _fail(
                "parent-edge",
                f"node {node} holds class {state.cls[node]} but its parent "
                f"{parent} is reached over a class-{edge} edge",
            )
        if not state.has_route(parent):
            _fail("parent-edge", f"node {node}'s parent {parent} has no route")


def _check_loop_free(view: RoutingView, state: RouteState) -> None:
    for node in range(len(view)):
        if not state.has_route(node):
            continue
        seen = {node}
        current = node
        while True:
            parent = state.parent[current]
            if parent < 0:
                if state.cls[current] != _ORIGIN:
                    _fail(
                        "loop-free",
                        f"parent chain from {node} ends at non-origin {current}",
                    )
                break
            if parent in seen:
                _fail("loop-free", f"parent cycle through {parent} (from node {node})")
            seen.add(parent)
            current = parent


def _check_valley_free(
    view: RoutingView, state: RouteState, policy: PolicyConfig
) -> None:
    for node in range(len(view)):
        parent = state.parent[node]
        if parent < 0 or state.cls[node] not in (_CUSTOMER, _PEER):
            continue
        if view.is_tier1[parent] and policy.tier1_shortest_path:
            continue  # length-only ranking: class at a tier-1 is not monotone
        if state.cls[parent] not in (_ORIGIN, _CUSTOMER):
            _fail(
                "valley-free",
                f"node {node} holds a class-{state.cls[node]} route from "
                f"{parent}, whose final class {state.cls[parent]} could "
                "never have been exported upward/sideways",
            )


_EMPTY: frozenset[int] = frozenset()


def _check_stability(
    view: RoutingView,
    state: RouteState,
    policy: PolicyConfig,
    blocked_by_origin: dict[int, frozenset[int]],
    first_hop_stubs: frozenset[int],
) -> None:
    tier1_shortest = policy.tier1_shortest_path
    for exporter in range(len(view)):
        if not state.has_route(exporter):
            continue
        exporter_class = state.cls[exporter]
        exporter_length = state.length[exporter]
        exporter_origin = state.origin_of[exporter]
        dropped_by = blocked_by_origin.get(exporter_origin, _EMPTY)
        receivers = list(view.customers[exporter])
        if exporter_class in (_ORIGIN, _CUSTOMER):
            receivers.extend(view.peers[exporter])
            if not (exporter == exporter_origin and exporter in first_hop_stubs):
                receivers.extend(view.providers[exporter])
        for receiver in receivers:
            if receiver in dropped_by:
                continue  # the receiver drops this origin's announcements
            if state.cls[receiver] == _ORIGIN:
                # An announcer never replaces its own announcement with a
                # learned route. Only claimed-path padding can make this
                # matter: a tier-1 forging a type-N path holds its padded
                # origin route even when length-only ranking says a
                # neighbor's shorter offer "beats" it. Honest origins sit
                # at length 0, which nothing can beat.
                continue
            offered_class = _edge_class(view, receiver, exporter)
            assert offered_class is not None
            if not state.has_route(receiver):
                _fail(
                    "stability",
                    f"node {receiver} has no route although neighbor "
                    f"{exporter} exports one to it",
                )
            if prefers(
                view.is_tier1[receiver],
                offered_class,  # type: ignore[arg-type]
                exporter_length + 1,
                state.cls[receiver],  # type: ignore[arg-type]
                state.length[receiver],
                tier1_shortest_path=tier1_shortest,
            ):
                _fail(
                    "stability",
                    f"node {receiver} holds (class={state.cls[receiver]}, "
                    f"length={state.length[receiver]}) but neighbor {exporter} "
                    f"offers a strictly better (class={offered_class}, "
                    f"length={exporter_length + 1}) route",
                )


def _check_blocked(
    state: RouteState, blocked_by_origin: dict[int, frozenset[int]]
) -> None:
    for origin, blocked in blocked_by_origin.items():
        for node in blocked:
            if node == origin:
                continue  # an attacker always installs its own bogus route
            if state.origin_of[node] == origin:
                _fail(
                    "blocked",
                    f"blocked node {node} holds a route originated by {origin}",
                )


def check_route_state(
    view: RoutingView,
    state: RouteState,
    *,
    policy: PolicyConfig | None = None,
    blocked: Collection[int] = (),
    first_hop_filtered: bool = False,
    history: "Sequence[tuple[int, Collection[int], bool]] | None" = None,
    origin_lengths: "Mapping[int, int] | None" = None,
) -> None:
    """Run the full invariant suite on one converged state.

    ``blocked`` and ``first_hop_filtered`` describe the convergence pass
    that *produced* the state (they scope the stability and blocked
    checks to the announcements that were actually evaluated). Raises
    :class:`InvariantViolation` on the first violation found.

    A state stacked from *several* announcements with different blocked
    sets — a stream ledger, or any chain deeper than the batch
    legitimate→attack pair — cannot be described by one pass's
    parameters: a node blocked during an **earlier** pass legitimately
    lacks that origin's route, which the single-pass stability check
    would flag. For those, pass ``history`` instead: one
    ``(origin, blocked, first_hop_filtered)`` triple per *active*
    announcement (one per distinct origin, in announcement order). The
    stability and blocked checks then scope each exemption to the origin
    whose pass it was captured for; ``blocked``/``first_hop_filtered``
    are ignored when ``history`` is given.

    ``origin_lengths`` maps origin *nodes* to the claimed-path padding
    their announcement carried (:meth:`RoutingEngine.converge
    <repro.bgp.engine.RoutingEngine.converge>`'s ``origin_length``);
    origins absent from the mapping are expected at the honest length 0.
    """
    policy = policy or PolicyConfig()
    if history is None:
        history = ((state.origin, blocked, first_hop_filtered),)
    blocked_by_origin = {
        origin: frozenset(origin_blocked) for origin, origin_blocked, _ in history
    }
    first_hop_stubs = frozenset(
        origin
        for origin, _, first_hop in history
        if first_hop and not view.customers[origin]
    )
    _check_shape(view, state, origin_lengths)
    _check_parent_edges(view, state)
    _check_loop_free(view, state)
    _check_valley_free(view, state, policy)
    _check_stability(view, state, policy, blocked_by_origin, first_hop_stubs)
    _check_blocked(state, blocked_by_origin)


def check_hijack_result(
    view: RoutingView,
    result: "HijackResult",
    *,
    policy: PolicyConfig | None = None,
    blocked: Collection[int] = (),
    first_hop_filtered: bool = False,
) -> None:
    """Invariant suite over both phases of a hijack computation."""
    check_route_state(view, result.legitimate, policy=policy)
    check_route_state(
        view,
        result.final,
        policy=policy,
        blocked=blocked,
        first_hop_filtered=first_hop_filtered,
    )
    polluted = result.polluted_nodes
    if polluted & frozenset(blocked):
        _fail(
            "blocked",
            f"polluted set intersects the blocked set: "
            f"{sorted(polluted & frozenset(blocked))}",
        )
    if result.attacker in polluted or result.target in polluted:
        _fail("pollution", "polluted set contains the attacker or the target")


def check_convergence_deterministic(engine: "RoutingEngine", origin: int) -> None:
    """Two independent convergences of the same origin are bit-identical."""
    first = engine.converge(origin)
    second = engine.converge(origin)
    if first.checksum() != second.checksum():
        _fail(
            "determinism",
            f"repeated convergence of origin {origin} produced different states",
        )


def check_cache_coherence(cache: "ConvergenceCache") -> None:
    """Every cached baseline is frozen and byte-identical to its insert.

    Catches in-place mutation of shared baselines — the failure mode the
    parallel executor's copy-on-write sharing would silently amplify.
    """
    for (context, origin), (state, checksum) in cache.entries():
        if not state.is_frozen:
            _fail(
                "cache",
                f"cached baseline for origin {origin} (context {context}) "
                "is not frozen",
            )
        if checksum is not None and state.checksum() != checksum:
            _fail(
                "cache",
                f"cached baseline for origin {origin} (context {context}) "
                "was mutated after insertion",
            )
