"""The shared Hypothesis strategy library for the whole test tree.

Every property test draws its random inputs from here instead of keeping
a private ``@st.composite`` copy: topologies (hierarchical
internet-shaped and arbitrary flat graphs), full hijack cases, ROA
tables, and deployment vectors. Centralizing them means a change to the
topology shape (say, allowing multi-homing depth) immediately reaches
the engine-equivalence, oracle-differential and serialization suites
alike.

This module is the only part of :mod:`repro.oracle` that requires
``hypothesis`` (a test extra, not a runtime dependency); the runtime
validation paths use :func:`repro.oracle.differential.random_hijack_cases`
instead. The topology shape itself is shared with that generator through
:func:`~repro.oracle.differential.build_random_topology`.
"""

from __future__ import annotations

import os
from typing import Sequence

try:
    from hypothesis import strategies as st
except ImportError as error:  # pragma: no cover - test-extra guard
    raise ImportError(
        "repro.oracle.strategies requires the 'hypothesis' test extra "
        "(pip install repro[test]); runtime validation uses "
        "repro.oracle.differential.random_hijack_cases instead"
    ) from error

from repro.bgp.policy import PolicyConfig
from repro.defense.strategies import DeploymentStrategy
from repro.oracle.differential import HijackCase, build_random_topology
from repro.prefixes.prefix import Prefix
from repro.registry.roa import RouteOriginAuthorization
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship
from repro.topology.view import RoutingView

__all__ = [
    "announce_withdraw_sequences",
    "deployment_vectors",
    "example_budget",
    "flat_graphs",
    "hierarchical_topologies",
    "hijack_cases",
    "roa_tables",
    "routing_views",
    "taxonomy_scenarios",
]


def example_budget(default: int) -> int:
    """Per-test Hypothesis example budget, scaled by the fuzz multiplier.

    The nightly fuzz job (``.github/workflows/fuzz.yml``) sets
    ``REPRO_FUZZ_MULTIPLIER`` to run the same properties at 10–50× the
    interactive budget; see ``docs/testing.md``.
    """
    return default * int(os.environ.get("REPRO_FUZZ_MULTIPLIER", "") or 1)


@st.composite
def flat_graphs(draw, *, max_size: int = 30) -> ASGraph:
    """An arbitrary sparse AS graph, sibling links included.

    No hierarchy is guaranteed (it may be disconnected or cyclic in the
    provider relation) — suitable for serialization / structural
    properties, **not** for routing-model properties, which assume the
    provider hierarchy :func:`hierarchical_topologies` generates.
    """
    size = draw(st.integers(min_value=2, max_value=max_size))
    graph = ASGraph()
    for asn in range(1, size + 1):
        graph.add_as(asn)
    edge_count = draw(st.integers(min_value=0, max_value=size * 2))
    relationship = st.sampled_from(
        [Relationship.CUSTOMER, Relationship.PEER, Relationship.SIBLING]
    )
    for _ in range(edge_count):
        a = draw(st.integers(min_value=1, max_value=size))
        b = draw(st.integers(min_value=1, max_value=size))
        if a == b or graph.relationship(a, b) is not None:
            continue
        graph.add_relationship(a, b, draw(relationship))
    return graph


@st.composite
def hierarchical_topologies(
    draw, *, min_size: int = 4, max_size: int = 28, max_tier1: int = 3
) -> ASGraph:
    """A random internet-shaped AS graph (guaranteed connected hierarchy).

    Tier-1 peering clique, every later AS customer of 1–3 earlier ASes,
    random lateral peering between non-tier-1 nodes, an occasional
    sibling pair to exercise the collapse logic end to end.
    """

    def pick(lo: int, hi: int) -> int:
        return draw(st.integers(min_value=lo, max_value=hi))

    return build_random_topology(
        pick, min_size=min_size, max_size=max_size, max_tier1=max_tier1
    )


@st.composite
def routing_views(draw, *, min_size: int = 4, max_size: int = 28) -> RoutingView:
    """A compiled :class:`RoutingView` over a hierarchical topology."""
    graph = draw(hierarchical_topologies(min_size=min_size, max_size=max_size))
    return RoutingView.from_graph(graph)


@st.composite
def hijack_cases(
    draw,
    *,
    min_size: int = 4,
    max_size: int = 28,
    with_blocking: bool = True,
    with_policy_variants: bool = True,
) -> HijackCase:
    """A complete hijack setup: topology, players, blocked set, policy.

    The one-stop strategy for differential and invariant properties;
    targets and attackers are distinct routing nodes (post sibling
    collapse), the blocked set never contains either, and policy
    variants cover the tier-1 exception and the Section IV stub filter.
    """
    graph = draw(hierarchical_topologies(min_size=min_size, max_size=max_size))
    view = RoutingView.from_graph(graph)
    nodes = st.integers(min_value=0, max_value=len(view) - 1)
    target = draw(nodes)
    attacker = draw(
        nodes.filter(lambda node: node != target)
        if len(view) > 1
        else st.nothing()
    )
    blocked: frozenset[int] = frozenset()
    if with_blocking:
        blocked = frozenset(
            draw(st.sets(nodes, max_size=max(0, len(view) // 2)))
        ) - {target, attacker}
    tier1_shortest = draw(st.booleans()) if with_policy_variants else True
    first_hop = draw(st.booleans()) if with_policy_variants else False
    return HijackCase(
        graph=graph,
        view=view,
        target=target,
        attacker=attacker,
        blocked=blocked,
        policy=PolicyConfig(tier1_shortest_path=tier1_shortest),
        first_hop_filtered=first_hop,
    )


@st.composite
def announce_withdraw_sequences(
    draw,
    *,
    min_size: int = 4,
    max_size: int = 24,
    max_events: int = 10,
    with_blocking: bool = True,
):
    """A routing view plus a random announce/withdraw operation sequence.

    The raw material of the streaming-equivalence properties: each op is
    a ``("announce", origin, blocked, first_hop)`` or
    ``("withdraw", origin, frozenset(), False)`` tuple over the view's
    node indices. Announcements pick currently-inactive origins and
    withdrawals currently-active ones, so every op changes routing state
    — the no-op paths have their own unit tests. Blocked sets (captured
    per announcement, as the stream ledger does) never contain the
    announcing origin; they may contain *other* chain origins, which is
    exactly the multi-announcement case single-pass invariant parameters
    cannot describe.
    """
    view = draw(routing_views(min_size=min_size, max_size=max_size))
    nodes = st.integers(min_value=0, max_value=len(view) - 1)
    ops: list[tuple[str, int, frozenset[int], bool]] = []
    active: list[int] = []
    count = draw(st.integers(min_value=1, max_value=max_events))
    for _ in range(count):
        inactive = [node for node in range(len(view)) if node not in active]
        if active and (not inactive or draw(st.booleans())):
            origin = draw(st.sampled_from(active))
            active.remove(origin)
            ops.append(("withdraw", origin, frozenset(), False))
            continue
        origin = draw(st.sampled_from(inactive))
        blocked: frozenset[int] = frozenset()
        if with_blocking:
            blocked = frozenset(
                draw(st.sets(nodes, max_size=max(0, len(view) // 2)))
            ) - {origin}
        active.append(origin)
        ops.append(("announce", origin, blocked, draw(st.booleans())))
    return view, ops


@st.composite
def taxonomy_scenarios(
    draw, *, min_size: int = 4, max_size: int = 24
) -> tuple[ASGraph, "object"]:
    """A hierarchical topology plus one attack-grid scenario over it.

    Draws any cell of the ARTEMIS grid (prefix axis × path axis, plus the
    route-leak row — :func:`repro.detection.taxonomy.grid_cells`) with
    type-N forged depths 1–3, against distinct target/attacker routing
    nodes. The scenario's prefix comes from the default address plan at
    ``seed=0`` — consumers must build their labs with ``seed=0`` (and the
    same graph) for the scenario to resolve.
    """
    # Imported here: the strategy library must stay importable without
    # dragging the whole attack stack in for the structural suites.
    from repro.attacks.lab import HijackLab
    from repro.detection.taxonomy import grid_cells

    graph = draw(hierarchical_topologies(min_size=min_size, max_size=max_size))
    lab = HijackLab(graph, seed=0)
    view = lab.view
    asns = sorted(graph.asns())
    target_asn = draw(st.sampled_from(asns))
    attacker_asn = draw(
        st.sampled_from(asns).filter(
            lambda asn: view.node_of(asn) != view.node_of(target_asn)
        )
    )
    kind, path_kind = draw(st.sampled_from(grid_cells()))
    depth = draw(st.integers(min_value=1, max_value=3))
    scenario = lab.build_scenario(
        target_asn,
        attacker_asn,
        kind=kind,
        path_kind=path_kind,
        forged_depth=depth,
    )
    return graph, scenario


@st.composite
def roa_tables(
    draw, owners: Sequence[int], *, max_roas: int = 12
) -> list[RouteOriginAuthorization]:
    """Random ROA sets over a handful of disjoint /8 blocks.

    Generates overlapping authorizations (covering prefixes, competing
    origins, maxLength slack) — the fixtures registry/validation
    properties need to exercise VALID / INVALID / NOT_FOUND all at once.
    """
    if not owners:
        raise ValueError("roa_tables needs a non-empty owner pool")
    count = draw(st.integers(min_value=0, max_value=max_roas))
    roas: list[RouteOriginAuthorization] = []
    for _ in range(count):
        block = draw(st.integers(min_value=10, max_value=15))
        length = draw(st.integers(min_value=8, max_value=24))
        host = draw(st.integers(min_value=0, max_value=(1 << (length - 8)) - 1))
        prefix = Prefix.from_host((block << 24) | (host << (32 - length)), length)
        origin = draw(st.sampled_from(list(owners)))
        max_length = draw(
            st.one_of(st.none(), st.integers(min_value=length, max_value=min(32, length + 8)))
        )
        roas.append(
            RouteOriginAuthorization(
                prefix=prefix, origin_asn=origin, max_length=max_length
            )
        )
    return roas


@st.composite
def deployment_vectors(
    draw, asns: Sequence[int], *, name: str = "random-property"
) -> DeploymentStrategy:
    """A random deployment: any subset of *asns* runs origin validation."""
    deployers = draw(st.sets(st.sampled_from(list(asns))) if asns else st.just(set()))
    return DeploymentStrategy(name=name, deployers=frozenset(deployers))
