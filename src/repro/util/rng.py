"""Deterministic random-number plumbing.

Every stochastic component in the library (topology generation, random
deployment strategies, random attack sampling for Fig. 7, address
allocation) derives its randomness through :func:`make_rng` so that a single
experiment seed reproduces the entire pipeline bit-for-bit, while distinct
components that share a seed still draw independent streams.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["make_rng", "derive_seed"]


def derive_seed(seed: int, *labels: object) -> int:
    """Mix *seed* with component labels into an independent 64-bit seed.

    Uses BLAKE2b so that streams for different labels are uncorrelated and
    stable across Python versions and platforms (``hash()`` is neither).
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(seed)).encode())
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest(), "big")


def make_rng(seed: int, *labels: object) -> random.Random:
    """A ``random.Random`` seeded for the component named by *labels*."""
    return random.Random(derive_seed(seed, *labels))
