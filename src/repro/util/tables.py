"""Plain-text table rendering for experiment reports.

The paper's evaluation quotes several small tables (top-5 still-potent
attacks, top-5 undetected attacks). The benchmark harness prints the
reproduced tables in the same shape; this module renders them as aligned
monospace text so the benches and the CLI share one formatter.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table with a header rule."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
