"""Complementary-cumulative statistics for vulnerability charts.

Figures 2–6 of the paper plot, for each target AS, the *complementary
cumulative* count of attackers versus pollution size: a point ``(x, y)``
means "``y`` attackers produce at least ``x`` polluted ASes". The faster a
curve falls to zero, the more attack-resistant the target. This module
computes those curves plus the summary statistics quoted in the text
(average pollution for a successful attack, number of attackers exceeding a
pollution level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["CcdfCurve", "ccdf", "describe"]


@dataclass(frozen=True)
class CcdfCurve:
    """A step curve: ``counts[i]`` samples are ``>= values[i]``.

    ``values`` is strictly increasing; ``counts`` strictly decreasing.
    """

    values: tuple[int, ...]
    counts: tuple[int, ...]

    def count_at_least(self, threshold: int) -> int:
        """How many samples are >= *threshold* (paper: "N attackers can
        pollute more than X ASes")."""
        result = 0
        for value, count in zip(self.values, self.counts):
            if value >= threshold:
                return count
            result = count
        if not self.values or threshold > self.values[-1]:
            return 0
        return result

    def points(self) -> Sequence[tuple[int, int]]:
        return tuple(zip(self.values, self.counts))

    @property
    def total(self) -> int:
        return self.counts[0] if self.counts else 0

    def area(self) -> int:
        """Sum of all samples — equals the integral of the CCDF over value
        steps; a single-number severity summary used to rank curves."""
        total = 0
        previous = 0
        for value, count in zip(self.values, self.counts):
            total += count * (value - previous)
            previous = value
        return total


def ccdf(samples: Iterable[int]) -> CcdfCurve:
    """Build the complementary cumulative curve of integer samples."""
    ordered = sorted(samples)
    n = len(ordered)
    values: list[int] = []
    counts: list[int] = []
    index = 0
    while index < n:
        value = ordered[index]
        values.append(value)
        counts.append(n - index)
        while index < n and ordered[index] == value:
            index += 1
    return CcdfCurve(tuple(values), tuple(counts))


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of a pollution-count distribution."""

    count: int
    successful: int  # samples > 0
    mean: float
    mean_successful: float
    maximum: int

    def as_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "successful": self.successful,
            "mean": self.mean,
            "mean_successful": self.mean_successful,
            "maximum": self.maximum,
        }


def describe(samples: Iterable[int]) -> SampleSummary:
    """Summary of pollution samples in the paper's vocabulary.

    A "successful" attack is one that pollutes at least one AS; the paper's
    per-strategy numbers ("the average number of polluted ASes for a
    successful attack on AS98 is 1076") are means over successful attacks.
    """
    data = list(samples)
    if not data:
        return SampleSummary(0, 0, 0.0, 0.0, 0)
    successful = [value for value in data if value > 0]
    return SampleSummary(
        count=len(data),
        successful=len(successful),
        mean=sum(data) / len(data),
        mean_successful=(sum(successful) / len(successful)) if successful else 0.0,
        maximum=max(data),
    )
