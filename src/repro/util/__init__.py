"""Shared utilities: deterministic RNG streams, CCDF statistics, tables."""

from repro.util.ccdf import CcdfCurve, ccdf, describe
from repro.util.rng import derive_seed, make_rng
from repro.util.tables import render_table

__all__ = [
    "CcdfCurve",
    "ccdf",
    "describe",
    "derive_seed",
    "make_rng",
    "render_table",
]
