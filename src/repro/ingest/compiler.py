"""Compiling trace records into stream events and legal-origin state.

The cloudtrie exemplar pipeline is *build a trie from the RIB, then
classify a firehose of updates against it*; this module is that shape
for the repro's event model:

* :func:`compile_rib` folds a RIB dump into a :class:`RibBaseline` —
  the per-prefix **legal-origin sets** in a
  :class:`~repro.prefixes.trie.PrefixTrie` plus the initial
  :class:`~repro.stream.events.Announce` wave (one honest announce per
  distinct ``(prefix, origin)``, stamped with the RIB timestamp). A RIB
  dump has at most one entry per ``(peer, prefix)``; duplicates raise
  in strict mode (with line coordinates) and are counted
  (``ingest.duplicate_rib``) and dropped in lenient mode. The same
  ``(prefix, origin)`` seen via *different* peers is normal MOAS-free
  BGP and folds into one announce.

* :func:`compile_updates` lowers the update feed into
  ``Announce``/``Withdraw`` events whose real timestamps drive the
  replay engine's virtual clock. Timestamps must be non-decreasing:
  strict mode raises on regressions, lenient mode counts them
  (``ingest.out_of_order``) and passes the event through — the replay
  engine applies-and-counts late updates rather than dropping them.

Path conventions (see :mod:`repro.ingest.records`): a ``rib`` record's
path is the peer-received propagation path (origin **last**); an
``announce`` record's path is the claim as it left the announcer
(announcer **first**, claimed origin last), so a forged type-1/N claim
is exactly ``HijackScenario.forged_path`` and the honest claim is the
single-element ``(origin,)``. This is what makes
``events → records → events`` lossless for everything except replay
markers, which by construction only resolve against live routing state
and therefore cannot ride a trace file (:func:`events_to_records`
refuses them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.ingest.records import TraceFormatError, TraceReader, TraceRecord
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.prefixes.prefix import Prefix
from repro.prefixes.trie import PrefixTrie
from repro.service.tenants import TenantRegistration, TenantRegistry
from repro.stream.events import Announce, RoaPublish, StreamEvent, Withdraw

__all__ = [
    "RibBaseline",
    "UpdateCompiler",
    "compile_rib",
    "compile_updates",
    "events_to_records",
    "seed_registry",
]


@dataclass
class RibBaseline:
    """What a RIB dump pins down: who legitimately originates what.

    ``origins`` maps each announced prefix to its legal-origin set (the
    detection trie); ``announces`` is the initial event wave that
    reconstructs the dump's steady state through the replay engine,
    sorted by ``(at, prefix, origin)`` for determinism.
    """

    origins: PrefixTrie[set[int]] = field(default_factory=PrefixTrie)
    announces: list[Announce] = field(default_factory=list)
    entries: int = 0
    duplicates: int = 0
    misplaced: int = 0
    peers: set[int] = field(default_factory=set)

    @property
    def start_at(self) -> float:
        """The dump's epoch: the earliest announce timestamp (0.0 if empty)."""
        return self.announces[0].at if self.announces else 0.0

    def classify(self, prefix: Prefix, origin_asn: int) -> str:
        """Classify one update against the baseline (the cloudtrie rule).

        ``legit`` — the longest covering legal-origin set contains the
        origin; ``hijack`` — a covering set exists but excludes it (a
        MOAS conflict or sub-prefix grab); ``unknown_prefix`` — no
        covering entry, nothing to judge against.
        """
        match = self.origins.longest_match_prefix(prefix)
        if match is None:
            return "unknown_prefix"
        _covering, legal = match
        return "legit" if origin_asn in legal else "hijack"

    def roa_wave(self) -> list[RoaPublish]:
        """One ROA per legal ``(prefix, origin)`` at the dump's epoch.

        The paper's "publish your route origins" lever applied to the
        whole baseline — feeding these before the announce wave lets
        the online monitor confirm conflicts as hijacks.
        """
        return [
            RoaPublish(at=self.start_at, prefix=prefix, origin_asn=origin)
            for prefix, legal in self.origins.items()
            for origin in sorted(legal)
        ]

    def as_dict(self) -> dict[str, object]:
        return {
            "entries": self.entries,
            "duplicates": self.duplicates,
            "misplaced": self.misplaced,
            "peers": len(self.peers),
            "prefixes": len(self.origins),
            "origins": {
                str(prefix): sorted(legal)
                for prefix, legal in self.origins.items()
            },
        }


def _located(source: str, record: TraceRecord, message: str) -> TraceFormatError:
    return TraceFormatError(f"{source}:{record.line}: {message}")


def compile_rib(
    records: Iterable[TraceRecord],
    *,
    strict: bool = False,
    metrics: Metrics | None = None,
    source: str | None = None,
) -> RibBaseline:
    """Fold RIB records into a :class:`RibBaseline` (see module docs)."""
    metrics = metrics if metrics is not None else NULL_METRICS
    if source is None:
        source = str(records.path) if isinstance(records, TraceReader) else "<rib>"
    baseline = RibBaseline()
    seen_entries: set[tuple[int, Prefix]] = set()
    wave: dict[tuple[Prefix, int], Announce] = {}
    for record in records:
        if record.kind != "rib":
            error = _located(
                source, record, f"{record.kind} record in a RIB dump"
            )
            if strict:
                raise error
            baseline.misplaced += 1
            metrics.count("ingest.misplaced")
            continue
        entry_key = (record.peer_asn, record.prefix)
        if entry_key in seen_entries:
            error = _located(
                source, record,
                f"duplicate RIB entry for peer AS{record.peer_asn} "
                f"prefix {record.prefix}",
            )
            if strict:
                raise error
            baseline.duplicates += 1
            metrics.count("ingest.duplicate_rib")
            continue
        seen_entries.add(entry_key)
        baseline.entries += 1
        baseline.peers.add(record.peer_asn)
        origin = record.origin_asn
        legal = baseline.origins.setdefault(record.prefix, set())
        legal.add(origin)
        key = (record.prefix, origin)
        if key not in wave or record.at < wave[key].at:
            wave[key] = Announce(
                at=record.at, prefix=record.prefix, origin_asn=origin
            )
    baseline.announces = sorted(
        wave.values(), key=lambda event: (event.at, str(event.prefix),
                                          event.origin_asn)
    )
    metrics.count("ingest.rib_entries", baseline.entries)
    return baseline


class UpdateCompiler:
    """Lower update-feed records into stream events, counting anomalies.

    Iterable once; after the sweep :attr:`out_of_order` /
    :attr:`misplaced` carry what lenient mode skipped past, and
    :attr:`events` the number of events produced.
    """

    def __init__(
        self,
        records: Iterable[TraceRecord],
        *,
        strict: bool = False,
        metrics: Metrics | None = None,
        source: str | None = None,
    ) -> None:
        if source is None:
            source = (
                str(records.path) if isinstance(records, TraceReader)
                else "<updates>"
            )
        self.records = records
        self.strict = strict
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.source = source
        self.events = 0
        self.out_of_order = 0
        self.misplaced = 0

    def __iter__(self) -> Iterator[StreamEvent]:
        clock: float | None = None
        for record in self.records:
            if record.kind == "rib":
                error = _located(
                    self.source, record, "rib record in an update feed"
                )
                if self.strict:
                    raise error
                self.misplaced += 1
                self.metrics.count("ingest.misplaced")
                continue
            if clock is not None and record.at < clock:
                error = _located(
                    self.source, record,
                    f"timestamp {record.at} precedes {clock} "
                    f"(feed must be non-decreasing)",
                )
                if self.strict:
                    raise error
                self.out_of_order += 1
                self.metrics.count("ingest.out_of_order")
            else:
                clock = record.at
            self.events += 1
            if record.kind == "withdraw":
                yield Withdraw(
                    at=record.at, prefix=record.prefix,
                    origin_asn=record.origin_asn,
                )
            else:
                # Announcer first, claimed origin last: a bare origin is
                # the honest claim; anything longer is the claim itself.
                path = record.path if len(record.path) > 1 else ()
                yield Announce(
                    at=record.at, prefix=record.prefix,
                    origin_asn=record.path[0], path=tuple(path),
                )


def compile_updates(
    records: Iterable[TraceRecord],
    *,
    strict: bool = False,
    metrics: Metrics | None = None,
    source: str | None = None,
) -> UpdateCompiler:
    """The update-feed compiler (an iterable of events; see class docs)."""
    return UpdateCompiler(records, strict=strict, metrics=metrics, source=source)


def events_to_records(
    events: Iterable[StreamEvent], *, peer_asn: int | None = None
) -> list[TraceRecord]:
    """Serialize announce/withdraw events back into update-feed records.

    The inverse of :func:`compile_updates` — used by the round-trip
    batteries and by tooling that re-emits a compiled campaign as a
    trace. Replay-marker announces (type-U / leak) resolve only against
    live routing state, and ROA / defense events have no MRT analogue;
    both raise ``ValueError``, so callers filter deliberately rather
    than lose events silently. *peer_asn* defaults to the announcer.
    """
    records: list[TraceRecord] = []
    for event in events:
        if isinstance(event, Announce):
            if event.replay:
                raise ValueError(
                    f"replay-marker announce ({event.replay!r}) cannot ride "
                    f"a trace file"
                )
            path = event.path if event.path else (event.origin_asn,)
            records.append(
                TraceRecord(
                    kind="announce", at=event.at,
                    peer_asn=event.origin_asn if peer_asn is None else peer_asn,
                    prefix=event.prefix, path=tuple(path),
                )
            )
        elif isinstance(event, Withdraw):
            records.append(
                TraceRecord(
                    kind="withdraw", at=event.at,
                    peer_asn=event.origin_asn if peer_asn is None else peer_asn,
                    prefix=event.prefix, path=(event.origin_asn,),
                )
            )
        else:
            raise ValueError(
                f"{type(event).__name__} events have no trace-record form"
            )
    return records


def seed_registry(
    registry: TenantRegistry,
    baseline: RibBaseline,
    *,
    tenant: str | None = None,
    auto_mitigate: bool = False,
) -> list[TenantRegistration]:
    """Register every legal ``(prefix, origin)`` from *baseline*.

    Each origin becomes (by default) its own tenant ``as<origin>`` — the
    bulk-onboarding path that turns a RIB dump into a fully-registered
    monitoring service. Returns the registrations in deterministic
    ``(prefix, origin)`` order.
    """
    registrations: list[TenantRegistration] = []
    for prefix, legal in baseline.origins.items():
        for origin in sorted(legal):
            registration = TenantRegistration(
                tenant=tenant if tenant is not None else f"as{origin}",
                prefix=prefix,
                origin_asn=origin,
                auto_mitigate=auto_mitigate,
            )
            registry.register(registration)
            registrations.append(registration)
    return registrations
