"""The end-to-end ingest pipeline: trace files → replay → monitor report.

:class:`TracePipeline` binds a RIB dump and/or an update feed into one
ordered, *streaming* event sequence — ROA wave (optional), baseline
announce wave, then the update deltas — without ever materializing the
update feed (records flow chunk → parse → compile → event one at a
time). :func:`run_ingest` drives that sequence through a
:class:`~repro.stream.replay.StreamReplayer` (and, with probes, an
:class:`~repro.stream.monitor.OnlineMonitor`), producing the JSON
payload the ``repro-bgp ingest`` command and the golden-trace snapshot
tests pin byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.attacks.lab import HijackLab
from repro.detection.detector import HijackDetector
from repro.detection.probes import ProbeSet
from repro.ingest.compiler import (
    RibBaseline,
    UpdateCompiler,
    compile_rib,
    compile_updates,
)
from repro.ingest.records import TraceReader
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.stream.events import StreamEvent
from repro.stream.monitor import OnlineMonitor
from repro.stream.replay import ReplayReport, StreamReplayer

__all__ = ["IngestResult", "TracePipeline", "run_ingest"]


class TracePipeline:
    """One trace workload: where the records come from, what they become.

    ``events()`` may be consumed once; afterwards ``stats()`` reports
    what the readers and compilers counted along the way. ``strict``
    propagates to every stage (reader parse errors, RIB duplicates,
    update-feed timestamp regressions).
    """

    def __init__(
        self,
        *,
        rib_path: str | Path | None = None,
        updates_path: str | Path | None = None,
        strict: bool = False,
        seed_roas: bool = False,
        metrics: Metrics | None = None,
    ) -> None:
        if rib_path is None and updates_path is None:
            raise ValueError("a trace pipeline needs a RIB dump, an update feed, or both")
        self.strict = strict
        self.seed_roas = seed_roas
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._rib_reader = (
            TraceReader(rib_path, strict=strict, metrics=self.metrics)
            if rib_path is not None else None
        )
        self._update_reader = (
            TraceReader(updates_path, strict=strict, metrics=self.metrics)
            if updates_path is not None else None
        )
        self._baseline: RibBaseline | None = None
        self._compiler: UpdateCompiler | None = None

    def baseline(self) -> RibBaseline | None:
        """The compiled RIB baseline (compiled on first call), if any."""
        if self._baseline is None and self._rib_reader is not None:
            self._baseline = compile_rib(
                self._rib_reader, strict=self.strict, metrics=self.metrics
            )
        return self._baseline

    def events(self) -> Iterator[StreamEvent]:
        """ROA wave → baseline announce wave → update deltas, in order."""
        baseline = self.baseline()
        if baseline is not None:
            if self.seed_roas:
                yield from baseline.roa_wave()
            yield from baseline.announces
        if self._update_reader is not None:
            self._compiler = compile_updates(
                self._update_reader, strict=self.strict, metrics=self.metrics
            )
            yield from self._compiler


    def stats(self) -> dict[str, object]:
        """Per-stage accounting, stable keys — part of the pinned report."""
        payload: dict[str, object] = {"seed_roas": self.seed_roas}
        if self._rib_reader is not None:
            baseline = self.baseline()
            assert baseline is not None
            payload["rib"] = {
                "lines": self._rib_reader.lines,
                "records": self._rib_reader.records,
                "malformed": self._rib_reader.malformed,
                "entries": baseline.entries,
                "duplicates": baseline.duplicates,
                "misplaced": baseline.misplaced,
                "peers": len(baseline.peers),
                "prefixes": len(baseline.origins),
                "announce_wave": len(baseline.announces),
            }
        if self._update_reader is not None:
            updates: dict[str, object] = {
                "lines": self._update_reader.lines,
                "records": self._update_reader.records,
                "malformed": self._update_reader.malformed,
            }
            if self._compiler is not None:
                updates["events"] = self._compiler.events
                updates["out_of_order"] = self._compiler.out_of_order
                updates["misplaced"] = self._compiler.misplaced
            payload["updates"] = updates
        return payload


@dataclass(frozen=True)
class IngestResult:
    """What one ingest run produced, with the pinnable JSON payload."""

    report: ReplayReport
    baseline: RibBaseline | None
    stats: dict[str, object]

    def as_dict(self) -> dict[str, object]:
        return {"ingest": self.stats, "replay": self.report.as_dict()}


def run_ingest(
    lab: HijackLab,
    pipeline: TracePipeline,
    *,
    probes: ProbeSet | None = None,
    batch_window: float = 0.0,
    queue_limit: int = 64,
    metrics: Metrics | None = None,
) -> IngestResult:
    """Stream *pipeline* through a replayer over *lab*'s network.

    With *probes* an online monitor rides along (its detector shares
    the replayer's live ROA table, so a seeded ROA wave changes
    verdicts); without, the run is a pure ledger-convergence sweep —
    the shape the ingest bench measures.
    """
    metrics = metrics if metrics is not None else NULL_METRICS
    replayer = StreamReplayer(
        lab, batch_window=batch_window, queue_limit=queue_limit, metrics=metrics
    )
    if probes is not None:
        detector = HijackDetector(probes, authority=replayer.authority)
        replayer.monitor = OnlineMonitor(lab.view, detector, metrics=metrics)
    for event in pipeline.events():
        replayer.submit(event)
    report = replayer.finish()
    return IngestResult(
        report=report, baseline=pipeline.baseline(), stats=pipeline.stats()
    )
