"""The MRT-like trace record format: parsing, serialization, streaming.

Real RouteViews/RIPE RIS archives ship MRT binary (RFC 6396): RIB
snapshots (``TABLE_DUMP_V2``) plus update feeds (``BGP4MP``), each entry
carrying a collector peer, a prefix, an AS path (peer first, origin
**last**) and a timestamp. This module implements the same information
model over two zero-dependency text encodings, so traces are diffable,
greppable and trivially synthesized while keeping MRT's semantics:

* **JSONL** — one object per line::

      {"path":[3356,7018,64512],"peer":3356,"prefix":"10.0.0.0/16","ts":17.0,"type":"announce"}

* **TSV** — five tab-separated columns::

      ts<TAB>type<TAB>peer<TAB>prefix<TAB>path

  with the path space-separated (``3356 7018 64512``). Comment lines
  start with ``#``; blank lines are ignored. The two encodings are
  interchangeable line by line (a reader auto-detects per line on the
  leading ``{``).

Record types are ``rib`` (one RIB-dump entry: what *peer* currently
holds), ``announce`` and ``withdraw`` (update-feed deltas). One
deliberate divergence from raw MRT: withdraw records carry the withdrawn
origin as their (single-element) path, because the repro's event model
is origin-addressed — a real-BGP withdraw names only (peer, prefix) and
a converter from true MRT must resolve the origin against the peer's
RIB, which is exactly what :mod:`repro.ingest.compiler` does not need to
guess with this format.

Reading is **chunk-streamed**: :class:`TraceReader` pulls fixed-size
binary chunks (gzip members included) and splits lines itself, so a
multi-million-record trace never materializes in memory. Strict mode
raises :class:`TraceFormatError` with ``path:line`` coordinates; lenient
mode counts malformed records (``ingest.malformed`` via
:mod:`repro.obs`) and keeps going — one mangled collector line must not
take down a monitor.
"""

from __future__ import annotations

import gzip
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.obs.metrics import NULL_METRICS, Metrics
from repro.prefixes.prefix import Prefix, PrefixError

__all__ = [
    "RECORD_TYPES",
    "TraceFormatError",
    "TraceReader",
    "TraceRecord",
    "format_record",
    "parse_record",
    "read_trace",
    "write_trace",
]

#: Valid values for :attr:`TraceRecord.kind`.
RECORD_TYPES = ("rib", "announce", "withdraw")

_MAX_ASN = 2**32 - 1
_CHUNK_SIZE = 1 << 20  # 1 MiB of raw bytes per read


class TraceFormatError(ValueError):
    """A line does not encode a valid trace record (carries ``path:line``)."""


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One trace line: *peer* reports *prefix* via *path* at time *ts*.

    ``path`` is the AS path exactly as MRT carries it — from the
    collector peer toward the origin, origin **last** — and is never
    empty (a withdraw's path is the single withdrawn origin). ``line``
    is the 1-based source line for error coordinates; it is excluded
    from equality so parse → serialize → parse round-trips compare
    clean.
    """

    kind: str
    at: float
    peer_asn: int
    prefix: Prefix
    path: tuple[int, ...]
    line: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in RECORD_TYPES:
            raise ValueError(f"unknown record type {self.kind!r}")
        if not self.path:
            raise ValueError("a trace record's path must name at least the origin")

    @property
    def origin_asn(self) -> int:
        """The origin AS the record attributes the prefix to (path's last hop)."""
        return self.path[-1]


# -- per-line parsing ------------------------------------------------------


def _check_asn(value: object, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise TraceFormatError(f"non-integer {what} {value!r}")
    if not 0 < value <= _MAX_ASN:
        raise TraceFormatError(f"{what} {value} outside 1..2^32-1")
    return value


def _build_record(
    kind: object, ts: object, peer: object, prefix_text: object, path: Iterable[object],
    *, line: int,
) -> TraceRecord:
    if kind not in RECORD_TYPES:
        raise TraceFormatError(f"unknown record type {kind!r}")
    if isinstance(ts, bool) or not isinstance(ts, (int, float)) or not math.isfinite(ts):
        raise TraceFormatError(f"missing/invalid timestamp {ts!r}")
    peer_asn = _check_asn(peer, "peer ASN")
    if not isinstance(prefix_text, str):
        raise TraceFormatError(f"missing/invalid prefix {prefix_text!r}")
    try:
        prefix = Prefix.parse(prefix_text)
    except PrefixError as error:
        raise TraceFormatError(f"bad prefix {prefix_text!r}: {error}") from error
    hops = tuple(_check_asn(hop, "path hop") for hop in path)
    if not hops:
        raise TraceFormatError("empty AS path")
    return TraceRecord(
        kind=kind, at=float(ts), peer_asn=peer_asn, prefix=prefix, path=hops,
        line=line,
    )


def _parse_json_record(line: str, number: int) -> TraceRecord:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise TraceFormatError(f"invalid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise TraceFormatError(
            f"record must be an object, got {type(payload).__name__}"
        )
    path = payload.get("path")
    if not isinstance(path, list):
        raise TraceFormatError(f"missing/invalid path {path!r}")
    return _build_record(
        payload.get("type"), payload.get("ts"), payload.get("peer"),
        payload.get("prefix"), path, line=number,
    )


def _parse_tsv_record(line: str, number: int) -> TraceRecord:
    fields = line.split("\t")
    if len(fields) != 5:
        raise TraceFormatError(
            f"expected 5 tab-separated fields, got {len(fields)}"
        )
    ts_text, kind, peer_text, prefix_text, path_text = fields
    try:
        ts: float = float(ts_text)
    except ValueError as error:
        raise TraceFormatError(f"missing/invalid timestamp {ts_text!r}") from error
    try:
        peer: object = int(peer_text)
    except ValueError:
        peer = peer_text  # let the shared validator phrase the error
    path: list[object] = []
    for hop_text in path_text.split():
        try:
            path.append(int(hop_text))
        except ValueError:
            path.append(hop_text)
    return _build_record(kind, ts, peer, prefix_text, path, line=number)


def parse_record(line: str, *, number: int = 0) -> TraceRecord:
    """Parse one trace line (either encoding, auto-detected per line)."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        raise TraceFormatError("blank/comment line is not a record")
    if stripped.startswith("{"):
        return _parse_json_record(stripped, number)
    return _parse_tsv_record(stripped, number)


# -- serialization ---------------------------------------------------------


def format_record(record: TraceRecord, *, encoding: str = "jsonl") -> str:
    """One serialized line (no newline); inverse of :func:`parse_record`."""
    if encoding == "jsonl":
        payload = {
            "path": list(record.path),
            "peer": record.peer_asn,
            "prefix": str(record.prefix),
            "ts": record.at,
            "type": record.kind,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    if encoding == "tsv":
        path = " ".join(str(hop) for hop in record.path)
        return (
            f"{record.at}\t{record.kind}\t{record.peer_asn}"
            f"\t{record.prefix}\t{path}"
        )
    raise ValueError(f"unknown trace encoding {encoding!r}")


def write_trace(
    path: str | Path, records: Iterable[TraceRecord], *, encoding: str = "jsonl"
) -> Path:
    """Write records as a deterministic trace file (order preserved)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt", encoding="utf-8") as handle:
        for record in records:
            handle.write(format_record(record, encoding=encoding))
            handle.write("\n")
    return path


# -- chunk-streamed reading ------------------------------------------------


def _open_binary(path: Path) -> IO[bytes]:
    if path.suffix == ".gz":
        return gzip.open(path, "rb")
    return path.open("rb")


def _iter_chunk_lines(handle: IO[bytes], chunk_size: int) -> Iterator[bytes]:
    """Split a binary stream into lines, *chunk_size* raw bytes at a time."""
    buffer = b""
    while True:
        chunk = handle.read(chunk_size)
        if not chunk:
            break
        buffer += chunk
        *lines, buffer = buffer.split(b"\n")
        yield from lines
    if buffer:
        yield buffer


class TraceReader:
    """Stream records out of a trace file, counting what it skips.

    Iterating yields :class:`TraceRecord` objects in file order. In
    strict mode any malformed line raises :class:`TraceFormatError`
    with ``path:line`` coordinates; in lenient mode it increments
    :attr:`malformed` (and the ``ingest.malformed`` metric) and moves
    on. ``lines`` / ``records`` expose the running totals, so callers
    can report coverage after the stream is drained.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        strict: bool = False,
        metrics: Metrics | None = None,
        chunk_size: int = _CHUNK_SIZE,
    ) -> None:
        self.path = Path(path)
        self.strict = strict
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.chunk_size = chunk_size
        self.lines = 0
        self.records = 0
        self.malformed = 0
        self.errors: list[str] = []

    def __iter__(self) -> Iterator[TraceRecord]:
        with _open_binary(self.path) as handle:
            for number, raw in enumerate(
                _iter_chunk_lines(handle, self.chunk_size), start=1
            ):
                self.lines = number
                line = raw.decode("utf-8", "replace").strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    record = parse_record(line, number=number)
                except TraceFormatError as error:
                    self.note_malformed(error, number)
                    continue
                self.records += 1
                self.metrics.count("ingest.records")
                yield record

    def note_malformed(self, error: Exception, number: int) -> None:
        """Count (lenient) or raise (strict) one bad line."""
        located = TraceFormatError(f"{self.path}:{number}: {error}")
        if self.strict:
            raise located from error
        self.malformed += 1
        self.metrics.count("ingest.malformed")
        if len(self.errors) < 32:
            self.errors.append(str(located))


def read_trace(
    path: str | Path,
    *,
    strict: bool = False,
    metrics: Metrics | None = None,
) -> list[TraceRecord]:
    """Read a whole (small) trace into memory — tests and tooling only.

    The streaming paths go through :class:`TraceReader` directly; this
    convenience exists for fixtures and round-trip checks where the
    list is the point.
    """
    return list(TraceReader(path, strict=strict, metrics=metrics))
