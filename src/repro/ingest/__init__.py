"""Streaming RouteViews/MRT-style trace ingestion (see docs/ingestion.md).

The layer that turns real-world-shaped inputs — RIB dumps plus update
feeds in a documented MRT-like JSONL/TSV trace format — into
:mod:`repro.stream` events: chunk-streamed record reading with
strict/lenient error handling (:mod:`repro.ingest.records`), RIB →
legal-origin baseline and update → event compilation
(:mod:`repro.ingest.compiler`), and the end-to-end trace → replay →
monitor-report pipeline (:mod:`repro.ingest.pipeline`).
"""

from repro.ingest.compiler import (
    RibBaseline,
    UpdateCompiler,
    compile_rib,
    compile_updates,
    events_to_records,
    seed_registry,
)
from repro.ingest.pipeline import IngestResult, TracePipeline, run_ingest
from repro.ingest.records import (
    RECORD_TYPES,
    TraceFormatError,
    TraceReader,
    TraceRecord,
    format_record,
    parse_record,
    read_trace,
    write_trace,
)

__all__ = [
    "RECORD_TYPES",
    "IngestResult",
    "RibBaseline",
    "TraceFormatError",
    "TracePipeline",
    "TraceReader",
    "TraceRecord",
    "UpdateCompiler",
    "compile_rib",
    "compile_updates",
    "events_to_records",
    "format_record",
    "parse_record",
    "read_trace",
    "run_ingest",
    "seed_registry",
    "write_trace",
]
