"""The typed control-plane event model and its JSONL wire format.

A stream is an ordered sequence of timestamped events — the live feed
shape the paper's detection section reasons about (PHAS-style monitors
consume announce/withdraw updates, not converged snapshots):

* :class:`Announce` / :class:`Withdraw` — an origin AS starts / stops
  announcing a prefix;
* :class:`RoaPublish` / :class:`RoaRevoke` — route-origin data appears
  in / disappears from the registry (the paper's "publish your route
  origins" lever, applied mid-stream);
* :class:`DefenseActivate` — a set of ASes turns on origin validation
  (an incremental-deployment step landing while traffic flows).

Timestamps (``at``) are *virtual* seconds: the replay engine's simulated
clock advances to each event's timestamp, so detection latency can be
reported in virtual time as well as event counts.

The wire format is JSONL — one compact, key-sorted JSON object per line
— chosen so streams diff cleanly, concatenate trivially, and round-trip
bit-for-bit (:func:`write_events` → :func:`read_events` is asserted
identical in the test suite). :func:`compile_scenario` and
:func:`compile_campaign` lower the batch-shaped
:class:`~repro.attacks.scenario.HijackScenario` objects (including
randomized multi-attack campaigns) into event sequences, which is how
every existing experiment workload becomes a stream workload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Union

from repro.attacks.scenario import HijackKind, HijackScenario, PathKind
from repro.prefixes.prefix import Prefix, PrefixError

__all__ = [
    "Announce",
    "DefenseActivate",
    "RoaPublish",
    "RoaRevoke",
    "StreamEvent",
    "StreamFormatError",
    "Withdraw",
    "compile_campaign",
    "compile_scenario",
    "event_from_dict",
    "event_to_dict",
    "parse_event_line",
    "read_events",
    "write_events",
]


class StreamFormatError(ValueError):
    """A line/object does not encode a valid stream event."""


#: Valid ``Announce.replay`` markers (besides the empty string).
_REPLAY_MODES = ("unmodified", "leak")


@dataclass(frozen=True, order=True)
class Announce:
    """*origin_asn* starts announcing *prefix* at virtual time *at*.

    ``path`` is the claimed AS path attribute the announcement carries
    (claimed origin **last**; empty = the honest single-origin claim) —
    how forged type-1/type-N claims ride the wire. ``replay`` marks a
    claim that can only be resolved against live routing state at apply
    time: ``"unmodified"`` re-announces the announcer's currently
    selected route verbatim (type-U), ``"leak"`` re-exports it with the
    announcer prepended (a route leak). ``path`` and ``replay`` are
    mutually exclusive.
    """

    at: float
    prefix: Prefix
    origin_asn: int
    path: tuple[int, ...] = ()
    replay: str = ""

    def __post_init__(self) -> None:
        if self.path and self.replay:
            raise ValueError("an announce carries either a path or a replay marker")
        if self.replay and self.replay not in _REPLAY_MODES:
            raise ValueError(f"unknown replay mode {self.replay!r}")


@dataclass(frozen=True, order=True)
class Withdraw:
    """*origin_asn* stops announcing *prefix* at virtual time *at*."""

    at: float
    prefix: Prefix
    origin_asn: int


@dataclass(frozen=True, order=True)
class RoaPublish:
    """A ROA for (*prefix*, *origin_asn*) lands in the registry."""

    at: float
    prefix: Prefix
    origin_asn: int
    max_length: int | None = None


@dataclass(frozen=True, order=True)
class RoaRevoke:
    """The matching ROA disappears from the registry."""

    at: float
    prefix: Prefix
    origin_asn: int
    max_length: int | None = None


@dataclass(frozen=True, order=True)
class DefenseActivate:
    """*deployer_asns* switch on origin validation (additive)."""

    at: float
    deployer_asns: tuple[int, ...]


StreamEvent = Union[Announce, Withdraw, RoaPublish, RoaRevoke, DefenseActivate]

_KINDS: dict[str, type] = {
    "announce": Announce,
    "withdraw": Withdraw,
    "roa-publish": RoaPublish,
    "roa-revoke": RoaRevoke,
    "defense-activate": DefenseActivate,
}
_KIND_OF = {cls: kind for kind, cls in _KINDS.items()}


# -- serialization ---------------------------------------------------------


def event_to_dict(event: StreamEvent) -> dict[str, object]:
    """The JSON-ready form of one event (stable keys, prefix as text)."""
    kind = _KIND_OF.get(type(event))
    if kind is None:
        raise StreamFormatError(f"not a stream event: {event!r}")
    payload: dict[str, object] = {"at": float(event.at), "kind": kind}
    if isinstance(event, DefenseActivate):
        payload["deployers"] = list(event.deployer_asns)
    else:
        payload["prefix"] = str(event.prefix)
        payload["origin"] = event.origin_asn
        if isinstance(event, (RoaPublish, RoaRevoke)) and event.max_length is not None:
            payload["max_length"] = event.max_length
        if isinstance(event, Announce):
            if event.path:
                payload["path"] = list(event.path)
            if event.replay:
                payload["replay"] = event.replay
    return payload


def event_from_dict(payload: object) -> StreamEvent:
    """Parse one decoded JSON object back into a typed event."""
    if not isinstance(payload, dict):
        raise StreamFormatError(f"event must be an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    cls = _KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise StreamFormatError(f"unknown event kind {kind!r}")
    at = payload.get("at")
    if not isinstance(at, (int, float)) or isinstance(at, bool):
        raise StreamFormatError(f"missing/invalid timestamp {at!r}")
    try:
        if cls is DefenseActivate:
            deployers = payload.get("deployers")
            if not isinstance(deployers, list) or not all(
                isinstance(asn, int) and not isinstance(asn, bool) for asn in deployers
            ):
                raise StreamFormatError(f"invalid deployer list {deployers!r}")
            return DefenseActivate(at=float(at), deployer_asns=tuple(deployers))
        prefix_text = payload.get("prefix")
        origin = payload.get("origin")
        if not isinstance(prefix_text, str):
            raise StreamFormatError(f"missing prefix in {payload!r}")
        if not isinstance(origin, int) or isinstance(origin, bool):
            raise StreamFormatError(f"missing/invalid origin in {payload!r}")
        prefix = Prefix.parse(prefix_text)
        if cls in (RoaPublish, RoaRevoke):
            max_length = payload.get("max_length")
            if max_length is not None and (
                not isinstance(max_length, int) or isinstance(max_length, bool)
            ):
                raise StreamFormatError(f"invalid max_length in {payload!r}")
            return cls(at=float(at), prefix=prefix, origin_asn=origin,
                       max_length=max_length)
        if cls is Announce:
            path = payload.get("path", [])
            if not isinstance(path, list) or not all(
                isinstance(asn, int) and not isinstance(asn, bool) for asn in path
            ):
                raise StreamFormatError(f"invalid path in {payload!r}")
            replay = payload.get("replay", "")
            if not isinstance(replay, str):
                raise StreamFormatError(f"invalid replay marker in {payload!r}")
            return Announce(
                at=float(at), prefix=prefix, origin_asn=origin,
                path=tuple(path), replay=replay,
            )
        return cls(at=float(at), prefix=prefix, origin_asn=origin)
    except (PrefixError, ValueError) as error:
        if isinstance(error, StreamFormatError):
            raise
        raise StreamFormatError(f"malformed event {payload!r}: {error}") from error


def parse_event_line(line: str) -> StreamEvent:
    """Parse one JSONL line (the replay engine isolates failures per line)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise StreamFormatError(f"invalid JSON: {error}") from error
    return event_from_dict(payload)


def write_events(path: str | Path, events: Iterable[StreamEvent]) -> Path:
    """Write events as deterministic JSONL (sorted keys, compact separators).

    Events are written in the order given — the stream order is part of
    the format; writers that want time order must sort first (the
    compilers below already do).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(
                json.dumps(event_to_dict(event), sort_keys=True,
                           separators=(",", ":"))
            )
            handle.write("\n")
    return path


def read_events(path: str | Path) -> list[StreamEvent]:
    """Read a JSONL stream strictly — any malformed line raises.

    The replay engine does **not** use this (it parses line by line and
    counts malformed lines instead of dying); this strict form is for
    tooling that wants the whole stream or an error.
    """
    events: list[StreamEvent] = []
    for number, line in enumerate(_read_lines(path), start=1):
        try:
            events.append(parse_event_line(line))
        except StreamFormatError as error:
            raise StreamFormatError(f"{path}:{number}: {error}") from error
    return events


def _read_lines(path: str | Path) -> Iterator[str]:
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield line


# -- scenario → stream compiler -------------------------------------------


def compile_scenario(
    scenario: HijackScenario,
    *,
    start: float = 0.0,
    spacing: float = 1.0,
    dwell: float | None = None,
    announce_legitimate: bool = True,
) -> list[StreamEvent]:
    """Lower one batch scenario into its ordered event sequence.

    The legitimate origin announces at *start* and the attacker *spacing*
    later — the paper's announce-only ordering (legitimate first, hijack
    second) expressed as a timeline. For a sub-prefix hijack the
    legitimate announce carries the *covering* prefix the target actually
    originates, and the attacker announces the more-specific
    ``scenario.prefix`` — two distinct NLRIs, which is exactly why
    origin-conflict monitors need published ROAs to catch it. With
    *dwell* the attacker withdraws after that long (a hijack flap).

    Taxonomy cells lower naturally: a squat's covering prefix stays
    *dark* (the target never originates the squatted slice, so no
    legitimate announce is emitted for it — only the covering primary
    prefix, which the replay layer needs for nothing and the monitor
    sees as a separate NLRI); forged claims ride the attacker announce's
    ``path``; type-U replays and leaks carry the matching ``replay``
    marker resolved against live state at apply time.
    """
    events: list[StreamEvent] = []
    if announce_legitimate:
        legit_prefix = scenario.prefix
        if (
            scenario.kind in (HijackKind.SUBPREFIX, HijackKind.SQUAT)
            and scenario.prefix.length > 0
        ):
            legit_prefix = scenario.prefix.supernet()
        events.append(
            Announce(at=start, prefix=legit_prefix, origin_asn=scenario.target_asn)
        )
    attack_at = start + spacing
    attacker_path: tuple[int, ...] = ()
    attacker_replay = ""
    if scenario.kind is HijackKind.ROUTE_LEAK:
        attacker_replay = "leak"
    elif scenario.path_kind in (PathKind.TYPE_1, PathKind.TYPE_N):
        attacker_path = scenario.forged_path
    elif (
        scenario.path_kind is PathKind.TYPE_U
        and scenario.kind is not HijackKind.SQUAT
    ):
        attacker_replay = "unmodified"
    events.append(
        Announce(at=attack_at, prefix=scenario.prefix,
                 origin_asn=scenario.attacker_asn,
                 path=attacker_path, replay=attacker_replay)
    )
    if dwell is not None:
        events.append(
            Withdraw(at=attack_at + dwell, prefix=scenario.prefix,
                     origin_asn=scenario.attacker_asn)
        )
    return events


def compile_campaign(
    scenarios: Sequence[HijackScenario],
    *,
    start: float = 0.0,
    spacing: float = 1.0,
    stagger: float | None = None,
    dwell: float | None = None,
    publish_roas: bool = False,
) -> list[StreamEvent]:
    """Lower many scenarios into one time-ordered multi-attack stream.

    Scenario *i* starts at ``start + i * stagger`` (default: ``spacing``),
    so attacks overlap when ``stagger < spacing + dwell`` — the
    sequence-of-attacks workload that stresses deployment conclusions.
    Each prefix's legitimate origin announces only once even when several
    scenarios hit the same target. With ``publish_roas`` every target's
    route-origin data is published at *start* (the paper's prescription),
    which lets the online monitor classify the conflicts as hijacks.

    The result is sorted by ``(at, insertion order)`` — a deterministic
    total order suitable for :func:`write_events`.
    """
    events: list[tuple[float, int, StreamEvent]] = []
    sequence = 0

    def push(event: StreamEvent) -> None:
        nonlocal sequence
        events.append((event.at, sequence, event))
        sequence += 1

    announced: set[tuple[Prefix, int]] = set()
    step = spacing if stagger is None else stagger
    for index, scenario in enumerate(scenarios):
        scenario_start = start + index * step
        for event in compile_scenario(
            scenario, start=scenario_start, spacing=spacing, dwell=dwell,
            announce_legitimate=True,
        ):
            if isinstance(event, Announce) and event.origin_asn == scenario.target_asn:
                key = (event.prefix, event.origin_asn)
                if key in announced:
                    continue
                announced.add(key)
                if publish_roas:
                    push(RoaPublish(at=start, prefix=event.prefix,
                                    origin_asn=event.origin_asn))
            push(event)
    events.sort(key=lambda item: (item[0], item[1]))
    return [event for _at, _seq, event in events]
