"""Incremental convergence: per-prefix routing state as a delta ledger.

The batch experiments recompute routing from scratch for every attack.
A stream cannot afford that: each announce/withdraw must be applied to
the *already converged* state. :class:`PrefixLedger` does exactly that,
and is guaranteed checksum-identical to the cold batch computation.

Semantics
---------

The canonical ("cold") state for a prefix with active announcements
``a₁ … aₖ`` (in announcement order, each with the blocked set and
first-hop flag captured when it entered the stream) is the chain

    ``converge(a₁) → converge(a₂, base=·) → … → converge(aₖ, base=·)``

— the same announce-only stacking the batch
:meth:`~repro.bgp.engine.RoutingEngine.hijack` uses, which is why a
compiled scenario stream reproduces the batch lab's pollution sets
bit-for-bit. :func:`full_converge` computes that chain directly; it is
the differential reference the property suite compares against and the
"full re-convergence" baseline the stream benchmark beats.

How the ledger stays identical without recomputing
--------------------------------------------------

* **announce** — one :meth:`~repro.bgp.engine.RoutingEngine
  .converge_delta` pass: the announcement re-propagates in place from
  the new origin only where it strictly beats the incumbent entries
  (the affected frontier), recording an undo journal. Identical to
  ``converge(base=state)`` by construction — same kernel, same install
  sequence — minus the O(N) base copy.
* **withdraw of the newest announcement** — rewind its journal. O(cells
  touched), no convergence at all.
* **withdraw of an interior announcement** — rewind journals down to it,
  drop it, re-apply the survivors in order (with their captured
  parameters). Cost: the suffix after the withdrawn entry, not the
  whole chain.

Why not repair outward from the withdrawn region instead? In the
announce-only model a node may keep a route its neighbor has since
upgraded away from (install-time state, see
:meth:`RouteState.path_from <repro.bgp.engine.RouteState.path_from>`), so
the cold chain's post-withdraw state can contain entries **no current
neighbor still exports** — unreconstructible from the final arrays
alone. A spatial frontier repair is therefore unsound here; the journal
rewind replays history instead of guessing it, which is what makes the
equivalence exact rather than approximate.

With the engine's ``validate=True``, every (re)applied pass runs the
:mod:`repro.oracle.invariants` suite with the ledger's **full
announcement history** (per-origin blocked sets and first-hop flags —
one pass's parameters cannot describe a multi-announcement state, see
:func:`check_route_state <repro.oracle.invariants.check_route_state>`),
and the ledger additionally records a checksum per position and verifies
every rewind against it — a mutation tripwire in the same spirit as the
convergence cache's ``verify`` mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Sequence

from repro.bgp.engine import ConvergenceDelta, RouteState, RoutingEngine
from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = ["AnnounceEntry", "PrefixLedger", "full_converge"]


@dataclass(frozen=True)
class AnnounceEntry:
    """One active announcement: the origin plus its captured pass inputs.

    ``origin`` is a routing-node index; ``origin_asn`` the announcing AS
    as named by the event (one sibling-group node can be announced by
    any member). ``blocked``/``first_hop_filtered`` are frozen at
    announce time — defense changes are not retroactive; they affect
    announcements that propagate after them, exactly as receiver-side
    blocking drops announcements at propagation time (Section V).
    ``path`` is the claimed AS path attribute (claimed origin last;
    ``None`` = the honest single-AS claim) — its length sets the pass's
    claimed-path padding, so a forged deep path competes at its claimed
    length exactly as in the batch lab.
    """

    origin: int
    origin_asn: int
    blocked: frozenset[int] = frozenset()
    first_hop_filtered: bool = False
    path: tuple[int, ...] | None = None

    @property
    def claimed_path(self) -> tuple[int, ...]:
        """The effective claim; defaults to the honest origin-only path."""
        return self.path if self.path else (self.origin_asn,)

    @property
    def origin_length(self) -> int:
        """Claimed-path padding for the convergence pass (0 = honest)."""
        return len(self.claimed_path) - 1


def full_converge(
    engine: RoutingEngine, entries: Sequence[AnnounceEntry]
) -> RouteState | None:
    """The cold reference: chain-converge *entries* from a clean network.

    ``None`` for an empty ledger (no announcements, no routes). This is
    what every :class:`PrefixLedger` state is checksum-equal to; the
    stream benchmark times it once per event to quantify what the
    incremental path saves.

    With ``engine.validate`` the chain itself runs unvalidated (each
    pass's parameters describe only that pass, not the stacked state —
    and ``converge_delta`` never validates by contract) and the
    invariant suite runs once on the final state with the full
    announcement history — the same check the ledger applies.

    The chain runs as in-place :meth:`~repro.bgp.engine.RoutingEngine
    .converge_delta` passes over one mutable state (journals discarded):
    identical final arrays by the delta contract, without the O(N) base
    copy ``converge(base=...)`` would pay per entry.
    """
    if not entries:
        return None
    state = RouteState.empty(len(engine.view), entries[0].origin)
    for entry in entries:
        engine.converge_delta(
            state,
            entry.origin,
            blocked=entry.blocked,
            filter_first_hop_providers=entry.first_hop_filtered,
            origin_length=entry.origin_length,
        )
    if engine.validate:
        _validate_chain(engine, state, entries)
    return state


def _validate_chain(
    engine: RoutingEngine, state: RouteState, entries: Sequence[AnnounceEntry]
) -> None:
    """Invariant suite over a chain state, scoped by announcement history."""
    # Imported lazily: repro.oracle imports repro.bgp (same idiom as the
    # engine's own validate path).
    from repro.oracle.invariants import check_route_state

    check_route_state(
        engine.view,
        state,
        policy=engine.policy,
        history=[
            (entry.origin, entry.blocked, entry.first_hop_filtered)
            for entry in entries
        ],
        origin_lengths={
            entry.origin: entry.origin_length
            for entry in entries
            if entry.origin_length
        },
    )


@dataclass
class _LedgerSlot:
    """One applied announcement: entry + its delta (+ validate checksum)."""

    entry: AnnounceEntry
    delta: ConvergenceDelta
    checksum: str | None = field(default=None, repr=False)


class PrefixLedger:
    """The incremental convergence state of one prefix.

    One mutable working :class:`~repro.bgp.engine.RouteState` plus the
    ordered slots of active announcements. :meth:`announce` and
    :meth:`withdraw` keep the working state checksum-identical to
    :func:`full_converge` over :attr:`entries` at every step.

    Duplicate announcements of an already-active origin and withdrawals
    of an inactive origin are no-ops returning ``False`` — BGP updates
    with unchanged attributes and spurious withdrawals both collapse to
    nothing in this model; the replay layer counts them.
    """

    def __init__(self, engine: RoutingEngine, *, metrics: Metrics | None = None) -> None:
        self.engine = engine
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._slots: list[_LedgerSlot] = []
        self._state: RouteState | None = None

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def entries(self) -> tuple[AnnounceEntry, ...]:
        """Active announcements in announcement order."""
        return tuple(slot.entry for slot in self._slots)

    @property
    def state(self) -> RouteState | None:
        """The converged state, or ``None`` with nothing announced.

        The returned object is the ledger's live working buffer — read
        it, don't write it, and don't hold it across further events.
        """
        return self._state if self._slots else None

    def is_active(self, origin: int) -> bool:
        return any(slot.entry.origin == origin for slot in self._slots)

    def active_origins(self) -> tuple[int, ...]:
        return tuple(slot.entry.origin for slot in self._slots)

    def origin_asns(self) -> dict[int, int]:
        """Routing node → announcing ASN for every active announcement."""
        return {slot.entry.origin: slot.entry.origin_asn for slot in self._slots}

    def claimed_paths(self) -> dict[int, tuple[int, ...]]:
        """Routing node → claimed AS path for every active announcement."""
        return {
            slot.entry.origin: slot.entry.claimed_path for slot in self._slots
        }

    def checksum(self) -> str | None:
        return self._state.checksum() if self._slots and self._state else None

    # -- events ------------------------------------------------------------

    def announce(
        self,
        origin: int,
        *,
        origin_asn: int | None = None,
        blocked: Collection[int] = (),
        first_hop_filtered: bool = False,
        path: tuple[int, ...] | None = None,
    ) -> bool:
        """Apply one announcement; ``False`` if *origin* is already active."""
        if self.is_active(origin):
            return False
        entry = AnnounceEntry(
            origin=origin,
            origin_asn=origin_asn if origin_asn is not None else origin,
            blocked=frozenset(blocked),
            first_hop_filtered=first_hop_filtered,
            path=tuple(path) if path else None,
        )
        if self._state is None:
            self._state = RouteState.empty(len(self.engine.view), origin)
        self._apply(entry)
        return True

    def withdraw(self, origin: int) -> bool:
        """Withdraw *origin*'s announcement; ``False`` if not active.

        Newest-first withdrawals are pure journal rewinds; an interior
        withdrawal rewinds the suffix and re-applies the survivors with
        their captured parameters.
        """
        position = next(
            (index for index, slot in enumerate(self._slots)
             if slot.entry.origin == origin),
            None,
        )
        if position is None:
            return False
        assert self._state is not None
        survivors = [slot.entry for slot in self._slots[position + 1:]]
        for slot in reversed(self._slots[position:]):
            slot.delta.revert(self._state)
            self.metrics.count("stream.ledger.reverts")
            self.metrics.count("stream.ledger.cells_reverted", slot.delta.touched)
        del self._slots[position:]
        if self._slots and self._slots[-1].checksum is not None:
            if self._state.checksum() != self._slots[-1].checksum:
                raise RuntimeError(
                    f"ledger rewind for origin {origin} did not restore the "
                    "prior state (journal corruption)"
                )
        for entry in survivors:
            self._apply(entry, replayed=True)
        return True

    # -- internals ---------------------------------------------------------

    def _apply(self, entry: AnnounceEntry, *, replayed: bool = False) -> None:
        assert self._state is not None
        delta = self.engine.converge_delta(
            self._state,
            entry.origin,
            blocked=entry.blocked,
            filter_first_hop_providers=entry.first_hop_filtered,
            origin_length=entry.origin_length,
        )
        slot = _LedgerSlot(entry=entry, delta=delta)
        self._slots.append(slot)
        if self.engine.validate:
            _validate_chain(self.engine, self._state, self.entries)
            slot.checksum = self._state.checksum()
        self.metrics.count("stream.ledger.convergences")
        if replayed:
            self.metrics.count("stream.ledger.replays")
        self.metrics.count("stream.ledger.cells_installed", delta.touched)
