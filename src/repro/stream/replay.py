"""The replay engine: simulated clock, bounded queue, error isolation.

:class:`StreamReplayer` is the piece that makes the stream subsystem a
*system* rather than a data structure: it consumes events (typed or raw
JSONL lines), advances a virtual clock, batches events through a bounded
queue, applies them to per-prefix :class:`~repro.stream.incremental
.PrefixLedger`\\ s, keeps the defensive configuration live (ROAs publish
and revoke, deployers activate mid-stream), and feeds the
:class:`~repro.stream.monitor.OnlineMonitor` after every flush.

Operational semantics, chosen to be boring and explicit:

* **clock** — the max event timestamp seen; an event older than the
  clock is counted ``out_of_order`` but still applied (BGP collectors
  deliver such updates too; dropping them would hide data).
* **batching** — events accumulate in the pending queue until either the
  incoming event's timestamp is more than ``batch_window`` past the
  oldest pending one (time flush — the flush happens at the window's
  virtual *deadline*, so the clock never jumps over it) or the queue
  hits ``queue_limit`` (backpressure flush). ``batch_window=0``
  degenerates to per-event application. Announce/withdraw ground truth
  is anchored at *arrival*, so time spent queued is charged to
  detection latency.
* **coalescing** — an announce and a later withdraw of the same
  (prefix, origin) *within one batch* cancel: the route never existed
  for any observer. A withdraw whose announcement predates the batch is
  never cancelled against a batch announce — that would resurrect the
  pre-existing route. Cancellation is outcome-preserving (the surviving
  ledger chain is identical), so batched and unbatched replays of the
  same stream converge to checksum-identical states; only the monitor's
  sampling times — and therefore detection latency — differ.
* **error isolation** — a malformed line or a failing event is counted
  and recorded (bounded), never fatal: one bad update must not take the
  monitor down.

Defense changes are not retroactive: each announce captures the blocked
set in force at apply time (a later ``RoaPublish`` does not evict an
installed bogus route — exactly the paper's receiver-side blocking,
which drops announcements, not RIB entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.attacks.lab import HijackLab
from repro.defense.deployment import Defense
from repro.defense.strategies import DeploymentStrategy
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.prefixes.prefix import Prefix
from repro.registry.roa import RoaTable, RouteOriginAuthorization
from repro.stream.events import (
    Announce,
    DefenseActivate,
    RoaPublish,
    RoaRevoke,
    StreamEvent,
    StreamFormatError,
    Withdraw,
    parse_event_line,
)
from repro.stream.incremental import PrefixLedger
from repro.stream.monitor import MonitorReport, OnlineMonitor

__all__ = ["ReplayReport", "StreamReplayer"]


@dataclass(frozen=True)
class ReplayReport:
    """End-of-stream accounting: what arrived, what applied, what broke."""

    clock: float
    events_submitted: int
    events_applied: int
    events_coalesced: int
    events_malformed: int
    events_out_of_order: int
    events_noop: int
    flushes: int
    backpressure_flushes: int
    errors: tuple[str, ...]
    errors_dropped: int
    prefixes: dict[str, dict[str, object]] = field(default_factory=dict)
    monitor: MonitorReport | None = None

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "clock": self.clock,
            "events": {
                "submitted": self.events_submitted,
                "applied": self.events_applied,
                "coalesced": self.events_coalesced,
                "malformed": self.events_malformed,
                "out_of_order": self.events_out_of_order,
                "noop": self.events_noop,
            },
            "flushes": self.flushes,
            "backpressure_flushes": self.backpressure_flushes,
            "errors": list(self.errors),
            "errors_dropped": self.errors_dropped,
            "prefixes": self.prefixes,
        }
        if self.monitor is not None:
            payload["monitor"] = self.monitor.as_dict()
        return payload


class StreamReplayer:
    """Drive a stream of control-plane events over a lab's network.

    Built on a :class:`~repro.attacks.lab.HijackLab` for its view,
    engine, address plan and *initial* defense; the replayer owns a
    mutable copy of the defensive state (a live :class:`RoaTable` seeded
    from the lab's authority when that is iterable, plus a growable
    deployer set) so ``RoaPublish``/``RoaRevoke``/``DefenseActivate``
    events take effect mid-stream. Expose :attr:`authority` to the
    monitor's detector and published ROAs change its verdicts live.
    """

    def __init__(
        self,
        lab: HijackLab,
        *,
        monitor: OnlineMonitor | None = None,
        batch_window: float = 0.0,
        queue_limit: int = 64,
        max_errors: int = 32,
        metrics: Metrics | None = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        self.lab = lab
        self.monitor = monitor
        self.batch_window = batch_window
        self.queue_limit = queue_limit
        self.max_errors = max_errors
        self.metrics = metrics if metrics is not None else NULL_METRICS
        base = lab.defense
        seed_roas = base.authority if isinstance(base.authority, Iterable) else ()
        self.authority = RoaTable(seed_roas)
        self._deployers: set[int] = set(base.strategy.deployers)
        self._base_defense = base
        self._ledgers: dict[Prefix, PrefixLedger] = {}
        self._pending: list[StreamEvent] = []
        self.clock = 0.0
        self.errors: list[str] = []
        self._errors_dropped = 0
        self._counts = {
            "submitted": 0,
            "applied": 0,
            "coalesced": 0,
            "malformed": 0,
            "out_of_order": 0,
            "noop": 0,
            "flushes": 0,
            "backpressure_flushes": 0,
        }

    # -- queries -----------------------------------------------------------

    def ledger(self, prefix: Prefix) -> PrefixLedger | None:
        """The ledger for *prefix*, or ``None`` if never announced."""
        return self._ledgers.get(prefix)

    def ledgers(self) -> dict[Prefix, PrefixLedger]:
        """A snapshot of every live per-prefix ledger (prefix → ledger)."""
        return dict(self._ledgers)

    @property
    def counts(self) -> dict[str, int]:
        """A copy of the running event counters (``submitted`` … ``flushes``)."""
        return dict(self._counts)

    def defense(self) -> Defense:
        """The defensive configuration currently in force."""
        return Defense(
            strategy=DeploymentStrategy("stream", frozenset(self._deployers)),
            authority=self.authority if len(self.authority) else None,
            manual_filters=self._base_defense.manual_filters,
            stub_filter=self._base_defense.stub_filter,
            neighbors=self._base_defense.neighbors,
            path_check=self._base_defense.path_check,
        )

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- ingestion ---------------------------------------------------------

    def submit(self, event: StreamEvent) -> None:
        """Queue one typed event; may trigger a time or backpressure flush."""
        if self._pending and event.at - self._pending[0].at > self.batch_window:
            # The pending batch's window expired before this event: it
            # flushed (in virtual time) at its deadline, not at event.at
            # — and strictly before this event exists to the monitor.
            deadline = self._pending[0].at + self.batch_window
            if deadline > self.clock:
                self.clock = deadline
            self.flush()
        self._counts["submitted"] += 1
        self.metrics.count("stream.replay.submitted")
        if self.monitor is not None:
            self.monitor.note_event()
            # Ground-truth anchoring happens at *arrival*: detection
            # latency must include time an update spends queued.
            if isinstance(event, Announce):
                self.monitor.note_announce(event.prefix, event.origin_asn, event.at)
            elif isinstance(event, Withdraw):
                self.monitor.note_withdraw(event.prefix, event.origin_asn)
        if event.at < self.clock:
            self._counts["out_of_order"] += 1
            self.metrics.count("stream.replay.out_of_order")
        else:
            self.clock = event.at
        self._pending.append(event)
        if len(self._pending) >= self.queue_limit:
            self._counts["backpressure_flushes"] += 1
            self.metrics.count("stream.replay.backpressure_flushes")
            self.flush()

    def submit_line(self, line: str) -> None:
        """Parse and queue one JSONL line; malformed lines are counted."""
        try:
            event = parse_event_line(line)
        except StreamFormatError as error:
            self._counts["malformed"] += 1
            self.metrics.count("stream.replay.malformed")
            self._record_error(f"malformed line: {error}")
            return
        self.submit(event)

    def submit_lines(self, lines: Iterable[str]) -> int:
        """Feed an iterable of JSONL lines through the tolerant path.

        Blank lines are skipped; malformed ones are counted per the
        :meth:`submit_line` contract. Returns the number of non-blank
        lines consumed — the streaming entry point for feed files and
        the ingest pipeline, which never hold the whole stream.
        """
        consumed = 0
        for raw in lines:
            line = raw.strip()
            if not line:
                continue
            consumed += 1
            self.submit_line(line)
        return consumed

    def run(self, events: Iterable[StreamEvent]) -> ReplayReport:
        """Replay a whole event sequence and return the final report."""
        for event in events:
            self.submit(event)
        return self.finish()

    def finish(self) -> ReplayReport:
        """Flush whatever is pending and assemble the report."""
        self.flush()
        return self.report()

    # -- batch machinery ---------------------------------------------------

    def flush(self) -> int:
        """Apply the pending batch now; returns events applied."""
        if not self._pending:
            return 0
        batch, coalesced = self._coalesce(self._pending)
        self._pending.clear()
        self._counts["coalesced"] += coalesced
        self._counts["flushes"] += 1
        self.metrics.count("stream.replay.coalesced", coalesced)
        self.metrics.count("stream.replay.flushes")
        touched: set[Prefix] = set()
        applied = 0
        with self.metrics.span("stream.replay.flush"):
            for event in batch:
                try:
                    self._apply(event, touched)
                except Exception as error:  # per-event isolation, by contract
                    self.metrics.count("stream.replay.errors")
                    self._record_error(f"{type(event).__name__} at {event.at}: {error}")
                else:
                    applied += 1
        self._counts["applied"] += applied
        self.metrics.count("stream.replay.applied", applied)
        if self.monitor is not None:
            for prefix in sorted(touched, key=str):
                ledger = self._ledgers.get(prefix)
                if ledger is not None:
                    self.monitor.observe(self.clock, prefix, ledger)
        return applied

    def _coalesce(
        self, pending: list[StreamEvent]
    ) -> tuple[list[StreamEvent], int]:
        """Cancel announce→withdraw pairs opened *within* this batch.

        Tracked per (prefix, origin) against the pre-batch active state:
        only a withdraw that closes an announcement opened earlier in the
        same batch cancels with it. Removing such a pair leaves the
        surviving ledger chain — and hence the flushed state — identical.
        """
        removed: set[int] = set()
        openers: dict[tuple[Prefix, int], list[int]] = {}
        active: dict[tuple[Prefix, int], bool] = {}
        for index, event in enumerate(pending):
            if not isinstance(event, (Announce, Withdraw)):
                continue
            key = (event.prefix, event.origin_asn)
            if key not in active:
                ledger = self._ledgers.get(event.prefix)
                view = self.lab.view
                active[key] = bool(
                    ledger is not None
                    and view.has_asn(event.origin_asn)
                    and ledger.is_active(view.node_of(event.origin_asn))
                )
            if isinstance(event, Announce):
                if not active[key]:
                    active[key] = True
                    openers.setdefault(key, []).append(index)
            else:
                if active[key]:
                    active[key] = False
                    stack = openers.get(key)
                    if stack:
                        removed.add(stack.pop())
                        removed.add(index)
        kept = [event for index, event in enumerate(pending) if index not in removed]
        return kept, len(removed)

    def _apply(self, event: StreamEvent, touched: set[Prefix]) -> None:
        if isinstance(event, Announce):
            self._apply_announce(event, touched)
        elif isinstance(event, Withdraw):
            self._apply_withdraw(event, touched)
        elif isinstance(event, RoaPublish):
            self.authority.add(
                RouteOriginAuthorization(
                    event.prefix, event.origin_asn, event.max_length
                )
            )
        elif isinstance(event, RoaRevoke):
            try:
                self.authority.remove(
                    RouteOriginAuthorization(
                        event.prefix, event.origin_asn, event.max_length
                    )
                )
            except KeyError:
                self._note_noop()
        elif isinstance(event, DefenseActivate):
            self._deployers.update(event.deployer_asns)
        else:  # pragma: no cover - the event union is closed
            raise TypeError(f"unknown event {event!r}")

    def _apply_announce(self, event: Announce, touched: set[Prefix]) -> None:
        view = self.lab.view
        if not view.has_asn(event.origin_asn):
            raise ValueError(f"unknown origin AS{event.origin_asn}")
        node = view.node_of(event.origin_asn)
        if event.replay:
            # A type-U replay / route leak reuses the route the announcer
            # currently holds; with nothing to reuse the event is a noop
            # — the attack never launches, exactly as in the batch lab.
            tail = self._resolve_replay(event, node)
            if tail is None:
                self._note_noop()
                return
        elif event.path:
            tail = tuple(event.path)
        else:
            tail = None
        ledger = self._ledgers.get(event.prefix)
        if ledger is None:
            ledger = PrefixLedger(self.lab.engine, metrics=self.metrics)
            self._ledgers[event.prefix] = ledger
        defense = self.defense()
        blocked = defense.blocking_nodes(
            view, event.prefix, event.origin_asn, claimed_path=tail
        )
        first_hop = (
            defense.stub_filter
            and not self.lab.graph.customers(event.origin_asn)
            and self.lab.plan.origin_of(event.prefix) != event.origin_asn
        )
        applied = ledger.announce(
            node,
            origin_asn=event.origin_asn,
            blocked=blocked,
            first_hop_filtered=first_hop,
            path=tail,
        )
        if not applied:
            self._note_noop()
            return
        touched.add(event.prefix)

    def _resolve_replay(self, event: Announce, node: int) -> tuple[int, ...] | None:
        """The claimed path a replay marker resolves to right now.

        Longest-match lookup over the live ledgers covering the announced
        prefix: the announcer's currently selected route for that space
        is the one it re-announces. The tail is the announcer's received
        AS path (parent chain ASNs, claimed origin last — the announcer
        itself absent, as on the wire); a leak prepends the announcer.
        ``None`` when no covering ledger gives the announcer a route.
        """
        view = self.lab.view
        covering = sorted(
            (
                (prefix, ledger)
                for prefix, ledger in self._ledgers.items()
                if prefix.contains(event.prefix)
            ),
            key=lambda item: -item[0].length,
        )
        for _prefix, ledger in covering:
            state = ledger.state
            if state is None or not state.has_route(node):
                continue
            chain = state.path_from(node)
            if not chain:
                continue  # the announcer originates this one itself
            origin_asns = ledger.origin_asns()
            tail = tuple(
                origin_asns.get(hop, view.asn_of(hop)) for hop in chain
            )
            if event.replay == "leak":
                return (event.origin_asn, *tail)
            return tail
        return None

    def _apply_withdraw(self, event: Withdraw, touched: set[Prefix]) -> None:
        view = self.lab.view
        if not view.has_asn(event.origin_asn):
            raise ValueError(f"unknown origin AS{event.origin_asn}")
        ledger = self._ledgers.get(event.prefix)
        applied = bool(
            ledger is not None and ledger.withdraw(view.node_of(event.origin_asn))
        )
        if not applied:
            self._note_noop()
            return
        touched.add(event.prefix)

    def _note_noop(self) -> None:
        self._counts["noop"] += 1
        self.metrics.count("stream.replay.noops")

    def _record_error(self, message: str) -> None:
        if len(self.errors) < self.max_errors:
            self.errors.append(message)
        else:
            self._errors_dropped += 1

    # -- summary -----------------------------------------------------------

    def report(self) -> ReplayReport:
        prefixes: dict[str, dict[str, object]] = {}
        for prefix, ledger in sorted(self._ledgers.items(), key=lambda kv: str(kv[0])):
            checksum = ledger.checksum()
            prefixes[str(prefix)] = {
                "active_origins": sorted(ledger.origin_asns().values()),
                "checksum": checksum,
            }
        return ReplayReport(
            clock=self.clock,
            events_submitted=self._counts["submitted"],
            events_applied=self._counts["applied"],
            events_coalesced=self._counts["coalesced"],
            events_malformed=self._counts["malformed"],
            events_out_of_order=self._counts["out_of_order"],
            events_noop=self._counts["noop"],
            flushes=self._counts["flushes"],
            backpressure_flushes=self._counts["backpressure_flushes"],
            errors=tuple(self.errors),
            errors_dropped=self._errors_dropped,
            prefixes=prefixes,
            monitor=self.monitor.report() if self.monitor is not None else None,
        )
