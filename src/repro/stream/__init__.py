"""Event-driven BGP update streaming over the batch simulator's core.

The batch layers answer "what is the converged outcome of this attack?";
this package answers "what happens *while it is happening*": typed
announce/withdraw/ROA/defense events (:mod:`~repro.stream.events`),
incremental convergence that keeps per-prefix routing state live and
checksum-identical to cold recomputation (:mod:`~repro.stream
.incremental`), a replay engine with a simulated clock, bounded queue
and batch coalescing (:mod:`~repro.stream.replay`), and an online
monitor measuring detection latency (:mod:`~repro.stream.monitor`).
"""

from repro.stream.events import (
    Announce,
    DefenseActivate,
    RoaPublish,
    RoaRevoke,
    StreamEvent,
    StreamFormatError,
    Withdraw,
    compile_campaign,
    compile_scenario,
    event_from_dict,
    event_to_dict,
    parse_event_line,
    read_events,
    write_events,
)
from repro.stream.incremental import AnnounceEntry, PrefixLedger, full_converge
from repro.stream.monitor import MonitorReport, OnlineMonitor, StreamAlarm
from repro.stream.replay import ReplayReport, StreamReplayer

__all__ = [
    "Announce",
    "AnnounceEntry",
    "DefenseActivate",
    "MonitorReport",
    "OnlineMonitor",
    "PrefixLedger",
    "ReplayReport",
    "RoaPublish",
    "RoaRevoke",
    "StreamAlarm",
    "StreamEvent",
    "StreamFormatError",
    "StreamReplayer",
    "Withdraw",
    "compile_campaign",
    "compile_scenario",
    "event_from_dict",
    "event_to_dict",
    "full_converge",
    "parse_event_line",
    "read_events",
    "write_events",
]
