"""The online hijack monitor: vantage points, MOAS alarms, latency.

Batch detection (:meth:`HijackDetector.observe
<repro.detection.detector.HijackDetector.observe>`) judges a *finished*
attack outcome. A live monitor never sees outcomes — it sees what its
probe ASes' selected routes say about a prefix *right now*, and its
quality is measured by **detection latency**: how many events (and how
much virtual time) pass between the bogus announcement entering the
stream and the first alarm. That latency is the paper's operational
stake — PHAS-style notification is only useful if it beats the outage
ticket — and it is what batch pollution metrics cannot express.

:class:`OnlineMonitor` is fed by the replay engine after every applied
batch: it re-reads each probe's installed route for the touched prefix
from the :class:`~repro.stream.incremental.PrefixLedger`, maps origin
nodes back to announcing ASNs and claimed AS paths, and hands the
observed :class:`~repro.detection.taxonomy.PathObservation` set to
:meth:`HijackDetector.observe_conflict
<repro.detection.detector.HijackDetector.observe_conflict>` — so the
full path-aware rule ladder (ROA origin check, first-hop verification,
link verification, valley-free export) runs live, cell by cell of the
attack grid. Alarm times are the *flush* times, so queue batching shows
up as measurable added latency — the backpressure/latency trade-off
becomes a number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.detector import HijackDetector
from repro.detection.taxonomy import PathObservation
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.prefixes.prefix import Prefix
from repro.stream.incremental import PrefixLedger
from repro.topology.view import RoutingView

__all__ = ["MonitorReport", "OnlineMonitor", "StreamAlarm"]


@dataclass(frozen=True)
class StreamAlarm:
    """One alarm the monitor raised, with its latency measurements.

    ``latency_time``/``latency_events`` measure from the most recent
    announcement of a culprit (the announcer behind an indicted claimed
    path when path-aware classification names one, the invalid origins
    when only origin data does, otherwise every conflicting origin) to
    the moment the monitor judged the conflict — virtual seconds and
    events processed respectively. ``triggered_probes`` are the probe
    ASes whose selected route carried a culprit claim at alarm time;
    ``culprit_paths`` are those claims (claimed origin last), empty for
    origin-only verdicts.
    """

    at: float
    prefix: Prefix
    origins: tuple[int, ...]
    verdict: str
    invalid_origins: tuple[int, ...]
    latency_time: float
    latency_events: int
    triggered_probes: tuple[int, ...]
    culprit_paths: tuple[tuple[int, ...], ...] = ()

    def as_dict(self) -> dict[str, object]:
        return {
            "at": self.at,
            "prefix": str(self.prefix),
            "origins": list(self.origins),
            "verdict": self.verdict,
            "invalid_origins": list(self.invalid_origins),
            "latency_time": self.latency_time,
            "latency_events": self.latency_events,
            "triggered_probes": list(self.triggered_probes),
            "culprit_paths": [list(path) for path in self.culprit_paths],
        }


@dataclass(frozen=True)
class MonitorReport:
    """End-of-stream summary: every alarm plus headline latency."""

    probe_set: str
    probe_count: int
    events_seen: int
    conflicts_judged: int
    alarms: tuple[StreamAlarm, ...]

    @property
    def first_alarm(self) -> StreamAlarm | None:
        return self.alarms[0] if self.alarms else None

    @property
    def detection_latency_time(self) -> float | None:
        """Virtual time to the first alarm; ``None`` if nothing fired."""
        first = self.first_alarm
        return first.latency_time if first else None

    @property
    def detection_latency_events(self) -> int | None:
        first = self.first_alarm
        return first.latency_events if first else None

    def as_dict(self) -> dict[str, object]:
        return {
            "probe_set": self.probe_set,
            "probe_count": self.probe_count,
            "events_seen": self.events_seen,
            "conflicts_judged": self.conflicts_judged,
            "alarm_count": len(self.alarms),
            "detection_latency_time": self.detection_latency_time,
            "detection_latency_events": self.detection_latency_events,
            "alarms": [alarm.as_dict() for alarm in self.alarms],
        }


class OnlineMonitor:
    """Vantage-point observers over a stream of per-prefix ledgers.

    The monitor only knows what its probes' selected routes show — an
    attack polluting no probe is invisible, exactly as in the batch
    Fig. 7 analysis, but measured live. Alarms deduplicate on
    ``(prefix, observed origin set)``: a flapping hijack re-raising the
    same conflict pages once, a *new* origin joining the conflict pages
    again.

    The replay engine drives three entry points: :meth:`note_event` per
    accepted event (the event-latency clock), :meth:`note_announce` /
    :meth:`note_withdraw` for ground-truth anchoring, and
    :meth:`observe` after each batch apply that touched a prefix.
    """

    def __init__(
        self,
        view: RoutingView,
        detector: HijackDetector,
        *,
        metrics: Metrics | None = None,
    ) -> None:
        self.view = view
        self.detector = detector
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._probe_views: tuple[tuple[int, int], ...] = tuple(
            sorted(
                (asn, view.node_of(asn))
                for asn in detector.probes.asns
                if view.has_asn(asn)
            )
        )
        self._announced: dict[tuple[Prefix, int], tuple[float, int]] = {}
        self._alarm_keys: set[tuple[Prefix, tuple[int, ...]]] = set()
        self._events_seen = 0
        self._conflicts_judged = 0
        self.alarms: list[StreamAlarm] = []

    # -- stream feed -------------------------------------------------------

    def note_event(self) -> None:
        """Tick the event clock (one accepted event entered the stream)."""
        self._events_seen += 1

    def note_announce(self, prefix: Prefix, origin_asn: int, at: float) -> None:
        """Anchor ground truth: *origin_asn* announced *prefix* at *at*."""
        self._announced.setdefault((prefix, origin_asn), (at, self._events_seen))

    def note_withdraw(self, prefix: Prefix, origin_asn: int) -> None:
        """Drop the anchor so a re-announcement re-anchors latency."""
        self._announced.pop((prefix, origin_asn), None)

    def observe(self, at: float, prefix: Prefix, ledger: PrefixLedger) -> StreamAlarm | None:
        """Re-read the probes' routes for *prefix*; alarm on a judged conflict.

        *at* is the flush time of the batch that mutated the ledger —
        alarms raised out of a coalesced batch carry the batching delay
        in their latency, by design.
        """
        state = ledger.state
        if state is None:
            return None
        asn_of_origin = ledger.origin_asns()
        claimed = ledger.claimed_paths()
        witnesses_by_tail: dict[tuple[int, ...], list[int]] = {}
        announcer_by_tail: dict[tuple[int, ...], int] = {}
        for probe_asn, probe_node in self._probe_views:
            origin_node = state.origin_of[probe_node]
            if origin_node == -1:
                continue
            announcer = asn_of_origin.get(origin_node)
            if announcer is None:  # defensively skip stale origins
                continue
            tail = claimed.get(origin_node, (announcer,))
            witnesses_by_tail.setdefault(tail, []).append(probe_asn)
            announcer_by_tail.setdefault(tail, announcer)
        if not witnesses_by_tail:
            return None
        observations = [
            PathObservation(tail=tail, witnesses=tuple(sorted(probes)))
            for tail, probes in sorted(witnesses_by_tail.items())
        ]
        origins = tuple(sorted({tail[-1] for tail in witnesses_by_tail}))
        report = self.detector.observe_conflict(
            prefix, origins, observations=observations
        )
        if report is None:
            return None
        self._conflicts_judged += 1
        self.metrics.count("stream.monitor.conflicts")
        if not report.alarm:
            return None
        key = (prefix, report.origins, report.culprit_paths)
        if key in self._alarm_keys:
            return None
        self._alarm_keys.add(key)
        if report.culprit_paths:
            culprit_tails = report.culprit_paths
        else:
            blamed = set(report.invalid_origins or report.origins)
            culprit_tails = tuple(
                tail for tail in sorted(witnesses_by_tail) if tail[-1] in blamed
            )
        culprits = sorted(
            {
                announcer_by_tail[tail]
                for tail in culprit_tails
                if tail in announcer_by_tail
            }
        )
        anchors = [
            anchor
            for announcer in culprits
            if (anchor := self._announced.get((prefix, announcer))) is not None
        ]
        if anchors:
            anchor_at, anchor_seq = max(anchors)
            latency_time = max(0.0, at - anchor_at)
            latency_events = max(0, self._events_seen - anchor_seq)
        else:
            latency_time, latency_events = 0.0, 0
        triggered = tuple(
            sorted(
                probe
                for tail in culprit_tails
                for probe in witnesses_by_tail.get(tail, ())
            )
        )
        alarm = StreamAlarm(
            at=at,
            prefix=prefix,
            origins=report.origins,
            verdict=report.verdict.value,
            invalid_origins=report.invalid_origins,
            latency_time=latency_time,
            latency_events=latency_events,
            triggered_probes=triggered,
            culprit_paths=report.culprit_paths,
        )
        self.alarms.append(alarm)
        self.metrics.count("stream.monitor.alarms")
        if len(self.alarms) == 1:
            self.metrics.gauge("stream.monitor.first_alarm_latency_s", latency_time)
            self.metrics.gauge(
                "stream.monitor.first_alarm_latency_events", float(latency_events)
            )
        return alarm

    # -- summary -----------------------------------------------------------

    def report(self) -> MonitorReport:
        return MonitorReport(
            probe_set=self.detector.probes.name,
            probe_count=len(self.detector.probes),
            events_seen=self._events_seen,
            conflicts_judged=self._conflicts_judged,
            alarms=tuple(self.alarms),
        )
