"""BGP policy model, message-passing simulator and fast routing engine."""

from repro.bgp.convergence import (
    ConvergenceStats,
    generation_wavefront,
    measure_convergence,
)
from repro.bgp.engine import UNREACHABLE, HijackResult, RouteState, RoutingEngine
from repro.bgp.policy import PolicyConfig, exports_to_peers_and_providers, prefers
from repro.bgp.routes import Rib, Route
from repro.bgp.simulator import (
    BGPSimulator,
    ConvergenceError,
    PropagationEvent,
    PropagationReport,
)

# The array-kernel names are exported lazily (PEP 562) so that merely
# importing repro.bgp on the reference path never pays the numpy import.
_KERNEL_EXPORTS = ("BACKENDS", "CompiledTopology", "compile_view", "resolve_backend")


def __getattr__(name: str):
    if name in _KERNEL_EXPORTS:
        from repro.bgp import kernel

        return getattr(kernel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BACKENDS",
    "BGPSimulator",
    "CompiledTopology",
    "compile_view",
    "resolve_backend",
    "ConvergenceError",
    "ConvergenceStats",
    "generation_wavefront",
    "measure_convergence",
    "HijackResult",
    "PolicyConfig",
    "PropagationEvent",
    "PropagationReport",
    "Rib",
    "Route",
    "RouteState",
    "RoutingEngine",
    "UNREACHABLE",
    "exports_to_peers_and_providers",
    "prefers",
]
