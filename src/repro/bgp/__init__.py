"""BGP policy model, message-passing simulator and fast routing engine."""

from repro.bgp.convergence import (
    ConvergenceStats,
    generation_wavefront,
    measure_convergence,
)
from repro.bgp.engine import UNREACHABLE, HijackResult, RouteState, RoutingEngine
from repro.bgp.policy import PolicyConfig, exports_to_peers_and_providers, prefers
from repro.bgp.routes import Rib, Route
from repro.bgp.simulator import (
    BGPSimulator,
    ConvergenceError,
    PropagationEvent,
    PropagationReport,
)

__all__ = [
    "BGPSimulator",
    "ConvergenceError",
    "ConvergenceStats",
    "generation_wavefront",
    "measure_convergence",
    "HijackResult",
    "PolicyConfig",
    "PropagationEvent",
    "PropagationReport",
    "Rib",
    "Route",
    "RouteState",
    "RoutingEngine",
    "UNREACHABLE",
    "exports_to_peers_and_providers",
    "prefers",
]
