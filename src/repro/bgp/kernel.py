"""The flat-array convergence backend (``backend="array"``).

The reference kernel in :meth:`repro.bgp.engine.RoutingEngine._propagate`
pays Python-interpreter cost *per message*: every announcement crossing
every link is one tuple allocation, one ``prefers`` call and a handful of
list indexings. At the 1/10-scale synthetic topology that is comfortable;
at the paper's real CAIDA snapshot (42,697 ASes, 139,156 links) a single
origin convergence pushes hundreds of thousands of messages and the
interpreter dominates. This module re-states the identical algorithm in
bulk array operations so the per-message cost drops to a few vectorized
numpy instructions:

* the compiled :class:`~repro.topology.view.RoutingView` adjacency is
  flattened once per view into CSR form (:class:`CompiledTopology` —
  int32 ``indptr``/``indices`` per relationship kind, memoized by view
  object identity exactly like the convergence cache's view digest);
* per-pass route state lives in preallocated int32/int64 scratch arrays,
  loaded from and written back to the :class:`~repro.bgp.engine
  .RouteState` lists around the hot loop;
* the bucketed frontier queue holds *array chunks* of ``(node, sender)``
  candidates instead of per-candidate tuples, and each ``(length,
  class)`` bucket is resolved with one vectorized preference test plus a
  CSR neighbor gather for the winners' exports.

Why it is bit-identical
-----------------------

The reference kernel's observable behaviour per bucket is: candidates are
considered in push order; the *first* candidate for a node wins iff it
strictly beats the node's incumbent at bucket start (a later candidate in
the same bucket carries the same ``(length, class)`` and can never beat
an entry the first one just installed — ties keep the incumbent); winners
export at ``length + 1``, never back into the current bucket. The array
kernel reproduces exactly that: a reverse-order index scatter selects
each node's first candidate in push order, the vectorized
preference test mirrors :func:`repro.bgp.policy.prefers` (including the
tier-1 shortest-path exception), and winner exports are gathered in
install order with each winner's neighbors in adjacency order — the same
concatenation the reference's per-winner ``push_exports`` produces. The
undo journal is emitted in the same install order with the same
pre-install cells, so :meth:`ConvergenceDelta.revert
<repro.bgp.engine.ConvergenceDelta.revert>` parity holds too.

The contract — identical :meth:`RouteState.checksum()
<repro.bgp.engine.RouteState.checksum>` on every topology, origin,
blocked set and policy variant — is enforced by
``tests/property/test_kernel_equivalence.py`` and the golden-figure
fixtures; see ``docs/model.md``.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us lazily)
    from repro.bgp.engine import RouteState
    from repro.topology.view import RoutingView

__all__ = [
    "BACKENDS",
    "CompiledTopology",
    "compile_view",
    "propagate_array",
    "propagate_array_batch",
    "resolve_backend",
]

# The selectable convergence backends. "reference" is the pure-Python
# bucket-queue kernel in repro.bgp.engine; "array" is this module.
BACKENDS = ("reference", "array")

_CLASS_ORIGIN = 0  # RouteClass.ORIGIN
_CLASS_CUSTOMER = 1  # RouteClass.CUSTOMER
_CLASS_PEER = 2  # RouteClass.PEER
_CLASS_PROVIDER = 3  # RouteClass.PROVIDER
_NO_CLASS = 9  # engine._NO_CLASS
_UNREACHABLE = 1 << 30  # engine.UNREACHABLE

# The hot loop packs (class, length) into one int64 — class in the high
# bits, length below — so the lexicographic Gao–Rexford preference
# (better class first, then shorter path) becomes a single integer
# comparison and route state needs one gather/scatter instead of two.
# Lengths are bounded by _UNREACHABLE < 2**31, so 31 bits suffice.
_LEN_BITS = 31
_LEN_MASK = (1 << _LEN_BITS) - 1
_EMPTY_KEY = (_NO_CLASS << _LEN_BITS) | _UNREACHABLE


def resolve_backend(backend: str) -> str:
    """Validate a ``backend=`` knob value; returns it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown convergence backend {backend!r}; choices: {BACKENDS}"
        )
    return backend


@dataclass(frozen=True)
class CompiledTopology:
    """CSR-flattened adjacency of one :class:`RoutingView`.

    ``<kind>_indptr[i] : <kind>_indptr[i+1]`` slices ``<kind>_indices``
    to node *i*'s neighbors of that kind, in the view's (sorted)
    adjacency order — the order the reference kernel iterates, which the
    within-bucket tie-breaking depends on. ``is_tier1`` mirrors the
    view's flag as a bool array for vectorized preference tests.
    """

    size: int
    customer_indptr: np.ndarray
    customer_indices: np.ndarray
    peer_indptr: np.ndarray
    peer_indices: np.ndarray
    provider_indptr: np.ndarray
    provider_indices: np.ndarray
    # The fused export adjacency: per node, providers then peers then
    # customers (each sub-list in adjacency order), with a parallel class
    # code per target (0 = route arrives as CUSTOMER at a provider,
    # 1 = PEER at a peer, 2 = PROVIDER at a customer). A full valley-free
    # export — the hot case, everything an own/customer route fans out to
    # — is then ONE range gather instead of three.
    export_indptr: np.ndarray
    export_indices: np.ndarray
    export_kinds: np.ndarray
    is_tier1: np.ndarray

    def gather(
        self, indptr: np.ndarray, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The flat positions of the given nodes' CSR slices, concatenated
        in node order — ``(positions, senders)`` where ``senders`` repeats
        each node once per neighbor."""
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _EMPTY, _EMPTY
        # Standard vectorized multi-range gather: each output cell's flat
        # position is its running output index shifted by its node's
        # (slice start - output start), repeated once per slice cell.
        ends = np.cumsum(counts)
        shift = np.repeat(starts - (ends - counts), counts)
        positions = np.arange(total, dtype=np.int64) + shift
        return positions, np.repeat(nodes, counts)

    def neighbors(
        self, indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gather the given nodes' neighbor slices, concatenated in node
        order — ``(neighbors, senders)``."""
        positions, senders = self.gather(indptr, nodes)
        return indices[positions], senders


_EMPTY = np.empty(0, dtype=np.int32)

# Compiled-topology memo keyed by view object id, with a weakref callback
# evicting entries when the view is collected (same idiom as the
# convergence cache's view-digest memo).
_COMPILED: dict[int, tuple["weakref.ref[RoutingView]", CompiledTopology]] = {}


def _csr(adjacency: tuple[tuple[int, ...], ...]) -> tuple[np.ndarray, np.ndarray]:
    indptr = np.zeros(len(adjacency) + 1, dtype=np.int64)
    for node, neighbors in enumerate(adjacency):
        indptr[node + 1] = indptr[node] + len(neighbors)
    indices = np.fromiter(
        (neighbor for neighbors in adjacency for neighbor in neighbors),
        dtype=np.int32,
        count=int(indptr[-1]),
    )
    return indptr, indices


def compile_view(view: "RoutingView") -> CompiledTopology:
    """The CSR form of *view*, built once and memoized per view object."""
    key = id(view)
    entry = _COMPILED.get(key)
    if entry is not None and entry[0]() is view:
        return entry[1]
    customer_indptr, customer_indices = _csr(view.customers)
    peer_indptr, peer_indices = _csr(view.peers)
    provider_indptr, provider_indices = _csr(view.providers)
    export_indptr, export_indices = _csr(
        tuple(
            providers + peers + customers
            for providers, peers, customers in zip(
                view.providers, view.peers, view.customers
            )
        )
    )
    export_kinds = np.fromiter(
        (
            kind
            for providers, peers, customers in zip(
                view.providers, view.peers, view.customers
            )
            for kind, count in ((0, len(providers)), (1, len(peers)), (2, len(customers)))
            for _ in range(count)
        ),
        dtype=np.int8,
        count=int(export_indptr[-1]),
    )
    compiled = CompiledTopology(
        size=len(view),
        customer_indptr=customer_indptr,
        customer_indices=customer_indices,
        peer_indptr=peer_indptr,
        peer_indices=peer_indices,
        provider_indptr=provider_indptr,
        provider_indices=provider_indices,
        export_indptr=export_indptr,
        export_indices=export_indices,
        export_kinds=export_kinds,
        is_tier1=np.asarray(view.is_tier1, dtype=bool),
    )
    _COMPILED[key] = (
        weakref.ref(view, lambda _ref, key=key: _COMPILED.pop(key, None)),
        compiled,
    )
    return compiled


def propagate_array(
    topology: CompiledTopology,
    state: "RouteState",
    origin: int,
    blocked_set: frozenset[int],
    filter_first_hop_providers: bool,
    tier1_shortest: bool,
    journal: list[tuple[int, int, int, int, int]] | None,
    fresh: bool = False,
    origin_length: int = 0,
) -> tuple[int, int, int, int]:
    """Run one announcement pass over *state* with bulk array operations.

    Mutates *state* in place (its arrays are replaced with fresh lists of
    Python ints holding the identical final content the reference kernel
    would produce) and appends the identical undo journal when *journal*
    is given. Returns ``(messages, installs, replaced, rounds)`` for the
    engine's metrics emission.

    ``fresh=True`` promises *state* is a pristine :meth:`RouteState.empty
    <repro.bgp.engine.RouteState.empty>` — the scratch arrays are then
    filled directly instead of converted from the state's Python lists,
    which saves a third of the single-origin wall-clock at CAIDA scale.
    """
    if fresh:
        key = np.full(topology.size, _EMPTY_KEY, dtype=np.int64)
        parent = np.full(topology.size, -1, dtype=np.int32)
        origin_of = np.full(topology.size, -1, dtype=np.int32)
    else:
        key = (np.asarray(state.cls, dtype=np.int64) << _LEN_BITS) | np.asarray(
            state.length, dtype=np.int64
        )
        parent = np.asarray(state.parent, dtype=np.int32)
        origin_of = np.asarray(state.origin_of, dtype=np.int32)

    # Scratch for the per-bucket first-occurrence scatter below; -1 means
    # "node not in the current bucket's candidate list".
    first_slot = np.full(topology.size, -1, dtype=np.int64)

    # Candidates for the origin itself or a blocked node are dropped at
    # consideration time, exactly as the reference kernel's per-candidate
    # skip — one mask lookup replaces both tests.
    dropped = np.zeros(topology.size, dtype=bool)
    if blocked_set:
        dropped[list(blocked_set)] = True
    dropped[origin] = True

    if journal is not None:
        origin_key = int(key[origin])
        journal.append(
            (
                origin,
                origin_key >> _LEN_BITS,
                origin_key & _LEN_MASK,
                int(parent[origin]),
                int(origin_of[origin]),
            )
        )
    key[origin] = (_CLASS_ORIGIN << _LEN_BITS) | origin_length
    parent[origin] = -1
    origin_of[origin] = origin

    # buckets[length] = None or three per-class chunk lists (customer,
    # peer, provider); each chunk is a (nodes, senders) array pair kept
    # in push order — the array analogue of the reference bucket queue.
    buckets: list[list[list[tuple[np.ndarray, np.ndarray]]] | None] = []

    def push(route_length: int, class_offset: int, nodes: np.ndarray, senders: np.ndarray) -> None:
        if nodes.size == 0:
            return
        while len(buckets) <= route_length:
            buckets.append(None)
        bucket = buckets[route_length]
        if bucket is None:
            bucket = [[], [], []]
            buckets[route_length] = bucket
        bucket[class_offset].append((nodes, senders))

    def push_exports(nodes: np.ndarray, route_class: int, next_length: int) -> None:
        if route_class in (_CLASS_ORIGIN, _CLASS_CUSTOMER):
            # Full valley-free export: one fused gather, split by target
            # kind. Compress preserves order, and per node the fused
            # adjacency is providers|peers|customers, so each per-class
            # subsequence matches the reference's per-winner push order.
            positions, senders = topology.gather(topology.export_indptr, nodes)
            if positions.size == 0:
                return
            targets = topology.export_indices[positions]
            kinds = topology.export_kinds[positions]
            for class_offset in (0, 1, 2):
                mask = kinds == class_offset
                push(next_length, class_offset, targets[mask], senders[mask])
        else:
            push(
                next_length,
                2,
                *topology.neighbors(
                    topology.customer_indptr, topology.customer_indices, nodes
                ),
            )

    origin_arr = np.array([origin], dtype=np.int32)
    origin_is_stub = (
        topology.customer_indptr[origin + 1] == topology.customer_indptr[origin]
    )
    # Claimed-path padding: first receivers install one hop past the
    # announced path length, exactly as in the reference kernel.
    first_hop_length = origin_length + 1
    if filter_first_hop_providers and origin_is_stub:
        push(
            first_hop_length,
            1,
            *topology.neighbors(
                topology.peer_indptr, topology.peer_indices, origin_arr
            ),
        )
        push(
            first_hop_length,
            2,
            *topology.neighbors(
                topology.customer_indptr, topology.customer_indices, origin_arr
            ),
        )
    else:
        push_exports(origin_arr, _CLASS_ORIGIN, first_hop_length)

    messages = 0
    installs = 0
    replaced = 0
    route_length = 0
    while route_length < len(buckets):
        bucket = buckets[route_length]
        if bucket is not None:
            for class_offset, route_class in enumerate(
                (_CLASS_CUSTOMER, _CLASS_PEER, _CLASS_PROVIDER)
            ):
                chunks = bucket[class_offset]
                if not chunks:
                    continue
                if len(chunks) == 1:
                    nodes, senders = chunks[0]
                else:
                    nodes = np.concatenate([chunk[0] for chunk in chunks])
                    senders = np.concatenate([chunk[1] for chunk in chunks])
                messages += int(nodes.size)
                keep = ~dropped[nodes]
                if not keep.all():
                    nodes = nodes[keep]
                    senders = senders[keep]
                if nodes.size == 0:
                    continue
                # First candidate per node in push order: any later one in
                # this bucket carries the same (length, class) and ties
                # keep the incumbent. Scatter-assigning the candidate
                # indices in *reverse* leaves each node's earliest index
                # in first_slot (fancy-index assignment is last-wins), so
                # comparing back picks exactly the first occurrences —
                # already in push order, no sort needed.
                slots = np.arange(nodes.size, dtype=np.int64)
                first_slot[nodes[::-1]] = slots[::-1]
                sel = first_slot[nodes] == slots
                first_slot[nodes] = -1  # reset only the touched cells
                cand_nodes = nodes[sel]
                cand_senders = senders[sel]
                incumbent_key = key[cand_nodes]
                cand_key = (route_class << _LEN_BITS) | route_length
                # One packed comparison = better class, or same class and
                # strictly shorter path.
                beats = cand_key < incumbent_key
                if tier1_shortest:
                    beats = np.where(
                        topology.is_tier1[cand_nodes],
                        route_length < (incumbent_key & _LEN_MASK),
                        beats,
                    )
                if not beats.any():
                    continue
                # Install order is push order of each winner's first
                # candidate — what the journal and export order encode.
                winners = cand_nodes[beats]
                winner_senders = cand_senders[beats]
                displaced_key = incumbent_key[beats]
                installs += int(winners.size)
                replaced += int(((displaced_key >> _LEN_BITS) != _NO_CLASS).sum())
                if journal is not None:
                    journal.extend(
                        zip(
                            winners.tolist(),
                            (displaced_key >> _LEN_BITS).tolist(),
                            (displaced_key & _LEN_MASK).tolist(),
                            parent[winners].tolist(),
                            origin_of[winners].tolist(),
                        )
                    )
                key[winners] = cand_key
                parent[winners] = winner_senders
                origin_of[winners] = origin
                push_exports(winners, route_class, route_length + 1)
        route_length += 1

    state.cls = (key >> _LEN_BITS).tolist()
    state.length = (key & _LEN_MASK).tolist()
    state.parent = parent.tolist()
    state.origin_of = origin_of.tolist()
    return messages, installs, replaced, len(buckets)


_EMPTY64 = np.empty(0, dtype=np.int64)


def propagate_array_batch(
    topology: CompiledTopology,
    states: "list[RouteState]",
    origins: "list[int]",
    blocked_sets: "list[frozenset[int]]",
    first_hop_flags: "list[bool]",
    tier1_shortest: bool,
    journals: list[list[tuple[int, int, int, int, int]]] | None,
    origin_lengths: "list[int]",
    base: "RouteState | None" = None,
    fresh: bool = False,
) -> tuple[int, int, int, int]:
    """Converge K independent announcement passes in one fused sweep.

    The single-origin kernel above amortizes the interpreter over one
    origin's frontier; this variant amortizes numpy's per-call overhead
    over a whole sweep's origins too. Each origin is one *column* of a
    flat ``K*N`` scratch layout (cell ``col*N + node``): columns never
    read or write each other's cells, so the reverse-scatter tie-break,
    the packed-key preference test and the CSR export gathers all run
    once per ``(length, class)`` bucket over every column's candidates
    concatenated.

    Why each column is bit-identical to its single-origin pass: within a
    bucket the flat candidate array keeps per-column push order (chunks
    are appended in the same step order, and boolean filtering preserves
    relative order), the first-occurrence scatter operates on flat cells
    so selection restricted to one column picks exactly that column's
    first candidates, and the preference test is per-cell. By induction
    over bucket steps every column installs the same winners in the same
    order as :func:`propagate_array` would — which is also why the
    per-column undo journals (distributed from the global install stream
    by a stable sort on the column index) match entry for entry.

    Loading modes: ``fresh=True`` fills pristine scratch directly
    (*states* may hold placeholder empty lists); ``base`` loads one
    shared base state and tiles it across columns (the hijack-sweep
    shape — K attackers stacked on one legitimate baseline) without K
    Python-list copies; otherwise each of the K *states* is loaded into
    its own column (the warm-start shape behind
    :meth:`RoutingEngine.converge_delta_batch
    <repro.bgp.engine.RoutingEngine.converge_delta_batch>`).

    Mutates every state in place (write-back per column) and returns the
    aggregate ``(messages, installs, replaced, rounds)``.
    """
    n = topology.size
    k = len(origins)
    total = n * k

    if fresh:
        key = np.full(total, _EMPTY_KEY, dtype=np.int64)
        parent = np.full(total, -1, dtype=np.int32)
        origin_of = np.full(total, -1, dtype=np.int32)
    elif base is not None:
        base_key = (np.asarray(base.cls, dtype=np.int64) << _LEN_BITS) | np.asarray(
            base.length, dtype=np.int64
        )
        key = np.tile(base_key, k)
        parent = np.tile(np.asarray(base.parent, dtype=np.int32), k)
        origin_of = np.tile(np.asarray(base.origin_of, dtype=np.int32), k)
    else:
        key = np.concatenate(
            [
                (np.asarray(state.cls, dtype=np.int64) << _LEN_BITS)
                | np.asarray(state.length, dtype=np.int64)
                for state in states
            ]
        )
        parent = np.concatenate(
            [np.asarray(state.parent, dtype=np.int32) for state in states]
        )
        origin_of = np.concatenate(
            [np.asarray(state.origin_of, dtype=np.int32) for state in states]
        )

    origins_np = np.asarray(origins, dtype=np.int32)
    is_tier1_flat = np.tile(topology.is_tier1, k)
    first_slot = np.full(total, -1, dtype=np.int64)

    dropped = np.zeros(total, dtype=bool)
    for col, (origin, blocked_set) in enumerate(zip(origins, blocked_sets)):
        colbase = col * n
        if blocked_set:
            dropped[[colbase + node for node in blocked_set]] = True
        dropped[colbase + origin] = True

    for col, origin in enumerate(origins):
        cell = col * n + origin
        if journals is not None:
            origin_key = int(key[cell])
            journals[col].append(
                (
                    origin,
                    origin_key >> _LEN_BITS,
                    origin_key & _LEN_MASK,
                    int(parent[cell]),
                    int(origin_of[cell]),
                )
            )
        key[cell] = (_CLASS_ORIGIN << _LEN_BITS) | origin_lengths[col]
        parent[cell] = -1
        origin_of[cell] = origin

    buckets: list[list[list[tuple[np.ndarray, np.ndarray]]] | None] = []

    def push(route_length: int, class_offset: int, cells: np.ndarray, senders: np.ndarray) -> None:
        if cells.size == 0:
            return
        while len(buckets) <= route_length:
            buckets.append(None)
        bucket = buckets[route_length]
        if bucket is None:
            bucket = [[], [], []]
            buckets[route_length] = bucket
        bucket[class_offset].append((cells, senders))

    def gather_flat(indptr: np.ndarray, cells: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # The multi-range CSR gather of CompiledTopology.gather, lifted to
        # flat cells: returns (positions, sender node ids, column bases)
        # so the caller can rebase gathered targets into their columns.
        cols, nodes = np.divmod(cells, n)
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        out = int(counts.sum())
        if out == 0:
            return _EMPTY64, _EMPTY64, _EMPTY64
        ends = np.cumsum(counts)
        shift = np.repeat(starts - (ends - counts), counts)
        positions = np.arange(out, dtype=np.int64) + shift
        return positions, np.repeat(nodes, counts), np.repeat(cols * n, counts)

    def push_exports(cells: np.ndarray, route_class: int, next_length: int) -> None:
        if route_class in (_CLASS_ORIGIN, _CLASS_CUSTOMER):
            positions, senders, colbase = gather_flat(topology.export_indptr, cells)
            if positions.size == 0:
                return
            targets = colbase + topology.export_indices[positions]
            kinds = topology.export_kinds[positions]
            for class_offset in (0, 1, 2):
                mask = kinds == class_offset
                push(next_length, class_offset, targets[mask], senders[mask])
        else:
            positions, senders, colbase = gather_flat(topology.customer_indptr, cells)
            if positions.size == 0:
                return
            push(next_length, 2, colbase + topology.customer_indices[positions], senders)

    for col, origin in enumerate(origins):
        colbase = col * n
        first_hop_length = origin_lengths[col] + 1
        origin_is_stub = (
            topology.customer_indptr[origin + 1] == topology.customer_indptr[origin]
        )
        if first_hop_flags[col] and origin_is_stub:
            origin_arr = np.array([origin], dtype=np.int32)
            peers, senders = topology.neighbors(
                topology.peer_indptr, topology.peer_indices, origin_arr
            )
            push(first_hop_length, 1, colbase + peers.astype(np.int64), senders)
            customers, senders = topology.neighbors(
                topology.customer_indptr, topology.customer_indices, origin_arr
            )
            push(first_hop_length, 2, colbase + customers.astype(np.int64), senders)
        else:
            push_exports(
                np.array([colbase + origin], dtype=np.int64),
                _CLASS_ORIGIN,
                first_hop_length,
            )

    # Journal records accumulate as column-tagged arrays during the loop
    # and are distributed per column afterwards: a stable sort on the
    # column index keeps each column's global install order intact.
    j_cols: list[np.ndarray] = []
    j_nodes: list[np.ndarray] = []
    j_cls: list[np.ndarray] = []
    j_len: list[np.ndarray] = []
    j_parent: list[np.ndarray] = []
    j_origin: list[np.ndarray] = []

    messages = 0
    installs = 0
    replaced = 0
    route_length = 0
    while route_length < len(buckets):
        bucket = buckets[route_length]
        if bucket is not None:
            for class_offset, route_class in enumerate(
                (_CLASS_CUSTOMER, _CLASS_PEER, _CLASS_PROVIDER)
            ):
                chunks = bucket[class_offset]
                if not chunks:
                    continue
                if len(chunks) == 1:
                    cells, senders = chunks[0]
                else:
                    cells = np.concatenate([chunk[0] for chunk in chunks])
                    senders = np.concatenate([chunk[1] for chunk in chunks])
                messages += int(cells.size)
                keep = ~dropped[cells]
                if not keep.all():
                    cells = cells[keep]
                    senders = senders[keep]
                if cells.size == 0:
                    continue
                slots = np.arange(cells.size, dtype=np.int64)
                first_slot[cells[::-1]] = slots[::-1]
                sel = first_slot[cells] == slots
                first_slot[cells] = -1
                cand_cells = cells[sel]
                cand_senders = senders[sel]
                incumbent_key = key[cand_cells]
                cand_key = (route_class << _LEN_BITS) | route_length
                beats = cand_key < incumbent_key
                if tier1_shortest:
                    beats = np.where(
                        is_tier1_flat[cand_cells],
                        route_length < (incumbent_key & _LEN_MASK),
                        beats,
                    )
                if not beats.any():
                    continue
                winners = cand_cells[beats]
                winner_senders = cand_senders[beats]
                displaced_key = incumbent_key[beats]
                installs += int(winners.size)
                replaced += int(((displaced_key >> _LEN_BITS) != _NO_CLASS).sum())
                cols = winners // n
                if journals is not None:
                    j_cols.append(cols)
                    j_nodes.append(winners - cols * n)
                    j_cls.append(displaced_key >> _LEN_BITS)
                    j_len.append(displaced_key & _LEN_MASK)
                    j_parent.append(parent[winners].astype(np.int64))
                    j_origin.append(origin_of[winners].astype(np.int64))
                key[winners] = cand_key
                parent[winners] = winner_senders
                origin_of[winners] = origins_np[cols]
                push_exports(winners, route_class, route_length + 1)
        route_length += 1

    if journals is not None and j_cols:
        cols_all = np.concatenate(j_cols)
        order = np.argsort(cols_all, kind="stable")
        sorted_cols = cols_all[order]
        nodes_sorted = np.concatenate(j_nodes)[order]
        cls_sorted = np.concatenate(j_cls)[order]
        len_sorted = np.concatenate(j_len)[order]
        parent_sorted = np.concatenate(j_parent)[order]
        origin_sorted = np.concatenate(j_origin)[order]
        bounds = np.searchsorted(sorted_cols, np.arange(k + 1))
        for col in range(k):
            lo, hi = int(bounds[col]), int(bounds[col + 1])
            if lo == hi:
                continue
            journals[col].extend(
                zip(
                    nodes_sorted[lo:hi].tolist(),
                    cls_sorted[lo:hi].tolist(),
                    len_sorted[lo:hi].tolist(),
                    parent_sorted[lo:hi].tolist(),
                    origin_sorted[lo:hi].tolist(),
                )
            )

    key_grid = key.reshape(k, n)
    parent_grid = parent.reshape(k, n)
    origin_grid = origin_of.reshape(k, n)
    for col, state in enumerate(states):
        state.cls = (key_grid[col] >> _LEN_BITS).tolist()
        state.length = (key_grid[col] & _LEN_MASK).tolist()
        state.parent = parent_grid[col].tolist()
        state.origin_of = origin_grid[col].tolist()
    return messages, installs, replaced, len(buckets)
