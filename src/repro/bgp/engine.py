"""The fast stable-outcome routing engine.

The paper's sweeps attack one target from every other AS (42,696 attacks
per vulnerability curve). Running the generation-stepped message simulator
per attack would dominate the experiment budget, so this engine computes
the *identical* final state directly.

Why it is identical
-------------------

In the message simulator every announcement expands one hop per
generation, so a candidate route of length *L* always arrives in
generation *L*. Each node therefore sees its candidates in increasing
length order (best class first within a generation) and installs a
candidate exactly when it strictly beats the node's current entry. That is
precisely a generalized Dijkstra ordered by ``(length, class)``: this
engine pushes candidate routes through a bucket queue in that order and
applies the same strict-preference install rule (:func:`repro.bgp.policy
.prefers`), so per node the install sequence — and hence the final RIB —
matches the simulator's. The equivalence is enforced by randomized
property tests in ``tests/integration/test_engine_equivalence.py``.

Hijacks reuse the same procedure: converge the legitimate origin from a
clean state, then run the attacker's announcement *on top of* that state —
the bogus route only displaces entries it strictly beats, ties keeping the
incumbent, exactly the paper's announce-only RIB model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Collection, Iterable, MutableSequence, Sequence

from repro.bgp.policy import PolicyConfig, prefers
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.topology.relationships import RouteClass
from repro.topology.view import RoutingView

__all__ = ["ConvergenceDelta", "RouteState", "RoutingEngine", "UNREACHABLE"]

UNREACHABLE = 1 << 30
_NO_CLASS = 9  # worse than every RouteClass value

_CLASS_ORIGIN = int(RouteClass.ORIGIN)
_CLASS_CUSTOMER = int(RouteClass.CUSTOMER)
_CLASS_PEER = int(RouteClass.PEER)
_CLASS_PROVIDER = int(RouteClass.PROVIDER)


@dataclass
class RouteState:
    """Per-node routing outcome for one prefix.

    Arrays are indexed by routing-node index. ``cls`` holds
    :class:`RouteClass` integer values (``_NO_CLASS`` when the node has no
    route), ``length`` AS-path lengths (``UNREACHABLE`` when none),
    ``parent`` the next-hop node (−1 for none/origin) and ``origin_of`` the
    origin node of the installed route (−1 when none). After a hijack pass
    the state mixes entries for the legitimate and the bogus origin.

    A state that will be shared — cached as a clean baseline and reused
    across many hijack passes, possibly from several worker processes —
    should be :meth:`frozen <freeze>` first: its arrays become tuples, so
    any accidental in-place write raises immediately instead of silently
    contaminating every later attack computed on top of it. A hijack pass
    never needs to write into its baseline: :meth:`RoutingEngine.converge`
    always works on a :meth:`copy_for` copy of ``base``.
    """

    origin: int
    cls: MutableSequence[int] | Sequence[int]
    length: MutableSequence[int] | Sequence[int]
    parent: MutableSequence[int] | Sequence[int]
    origin_of: MutableSequence[int] | Sequence[int]

    @classmethod
    def empty(cls, size: int, origin: int) -> "RouteState":
        return cls(
            origin=origin,
            cls=[_NO_CLASS] * size,
            length=[UNREACHABLE] * size,
            parent=[-1] * size,
            origin_of=[-1] * size,
        )

    def copy_for(self, origin: int) -> "RouteState":
        return RouteState(
            origin=origin,
            cls=list(self.cls),
            length=list(self.length),
            parent=list(self.parent),
            origin_of=list(self.origin_of),
        )

    def freeze(self) -> "RouteState":
        """Make the arrays immutable (idempotent); returns ``self``."""
        self.cls = tuple(self.cls)
        self.length = tuple(self.length)
        self.parent = tuple(self.parent)
        self.origin_of = tuple(self.origin_of)
        return self

    @property
    def is_frozen(self) -> bool:
        return isinstance(self.cls, tuple)

    def checksum(self) -> str:
        """Content digest over every array — detects in-place mutation."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(str(self.origin).encode())
        for array in (self.cls, self.length, self.parent, self.origin_of):
            digest.update(b"|")
            digest.update(",".join(map(str, array)).encode())
        return digest.hexdigest()

    # -- queries -------------------------------------------------------------

    def has_route(self, node: int) -> bool:
        return self.cls[node] != _NO_CLASS

    def route_class(self, node: int) -> RouteClass | None:
        value = self.cls[node]
        return None if value == _NO_CLASS else RouteClass(value)

    def holders_of(self, origin: int) -> frozenset[int]:
        """Nodes (excluding *origin* itself) routing to *origin*."""
        return frozenset(
            node
            for node, holder in enumerate(self.origin_of)
            if holder == origin and node != origin
        )

    def path_from(self, node: int) -> tuple[int, ...]:
        """The next-hop chain from *node* toward its route's origin.

        This is the *forwarding* path through final-state parents. In the
        announce-only model a neighbor may upgrade its route after
        exporting, so this chain's hop count can differ from
        ``length[node]`` (which is the install-time AS-path length, as in
        the message simulator); use the simulator's recorded routes when
        the exact announced AS path matters.
        """
        path: list[int] = []
        current = node
        seen = set()
        while True:
            parent = self.parent[current]
            if parent < 0:
                break
            if parent in seen:  # defensive: corrupted parents
                raise RuntimeError(f"parent cycle at node {parent}")
            seen.add(parent)
            path.append(parent)
            current = parent
        return tuple(path)


class RoutingEngine:
    """Direct computation of converged routing states over a view.

    With ``validate=True`` every convergence is followed by the
    structural invariant suite from :mod:`repro.oracle.invariants`
    (loop-free parents, valley-free final classes, preference stability,
    blocked coherence) — a runtime tripwire for exactly the class of
    wrong-but-plausible outcomes a fast path can produce. The default
    (off) path costs one boolean test per convergence; the hot
    propagation loop is untouched either way.

    ``metrics`` (any :class:`repro.obs.Metrics`) receives per-convergence
    counters — messages propagated, routes installed/replaced,
    convergence rounds. The engine accumulates them in local integers and
    emits once per convergence, so the instrumented path costs a handful
    of dict updates per *convergence*, not per message; the default
    ``NULL_METRICS`` sink reduces that to four no-op calls.

    ``backend`` selects the propagation kernel: ``"reference"`` (default)
    is the pure-Python bucket queue below; ``"array"`` is the flat-array
    kernel in :mod:`repro.bgp.kernel`, which produces bit-identical
    :meth:`RouteState.checksum` outcomes at a fraction of the wall-clock
    on large topologies (see ``docs/performance.md``). The contract is
    enforced by ``tests/property/test_kernel_equivalence.py``.
    """

    def __init__(
        self,
        view: RoutingView,
        policy: PolicyConfig | None = None,
        *,
        validate: bool = False,
        metrics: Metrics | None = None,
        backend: str = "reference",
    ) -> None:
        self.view = view
        self.policy = policy or PolicyConfig()
        self.validate = validate
        self.metrics = metrics if metrics is not None else NULL_METRICS
        if backend != "reference":
            # Imported lazily: the reference path must not pay the numpy
            # import, and kernel.py type-checks against this module.
            from repro.bgp.kernel import (
                compile_view,
                propagate_array,
                propagate_array_batch,
                resolve_backend,
            )

            self.backend = resolve_backend(backend)
            self._compiled = compile_view(view)
            self._propagate_array = propagate_array
            self._propagate_array_batch = propagate_array_batch
        else:
            self.backend = backend
            self._compiled = None
            self._propagate_array = None
            self._propagate_array_batch = None

    # -- public API ------------------------------------------------------------

    def converge(
        self,
        origin: int,
        *,
        base: RouteState | None = None,
        blocked: Collection[int] = (),
        filter_first_hop_providers: bool = False,
        origin_length: int = 0,
    ) -> RouteState:
        """Propagate an announcement from *origin* to the stable state.

        ``base`` is the pre-existing RIB state the announcement competes
        against (the legitimate state when *origin* is a hijacker); without
        it the network starts clean. ``blocked`` nodes drop the
        announcement entirely (prefix filters / ROV). With
        ``filter_first_hop_providers`` the origin's providers drop its
        direct announcement — the defensive stub filter of Section IV.
        ``origin_length`` pads the announced AS path: a path-forgery
        attack (type-1/type-N) or a route leak claims a path of that many
        hops behind the announcer, so its first receivers install at
        ``origin_length + 1`` and compete on that longer length — the
        honest default 0 is the plain one-hop origination.
        """
        n = len(self.view)
        state = base.copy_for(origin) if base is not None else RouteState.empty(n, origin)
        blocked_set = frozenset(blocked)
        self._propagate(
            state,
            origin,
            blocked_set,
            filter_first_hop_providers,
            journal=None,
            fresh=base is None,
            origin_length=origin_length,
        )
        if self.validate:
            # Imported lazily: the oracle package imports this module.
            from repro.oracle.invariants import check_route_state

            check_route_state(
                self.view,
                state,
                policy=self.policy,
                blocked=blocked_set,
                first_hop_filtered=filter_first_hop_providers,
                origin_lengths={origin: origin_length} if origin_length else None,
            )
        return state

    def _batch_params(
        self,
        count: int,
        blocked_sets: Sequence[Collection[int]] | None,
        first_hop_flags: Sequence[bool] | None,
        origin_lengths: Sequence[int] | None,
    ) -> tuple[list[frozenset[int]], list[bool], list[int]]:
        """Normalize per-column batch knobs, defaulting like the scalar API."""
        blocked = (
            [frozenset()] * count
            if blocked_sets is None
            else [frozenset(entry) for entry in blocked_sets]
        )
        first_hop = (
            [False] * count if first_hop_flags is None else list(first_hop_flags)
        )
        lengths = [0] * count if origin_lengths is None else list(origin_lengths)
        if not (len(blocked) == len(first_hop) == len(lengths) == count):
            raise ValueError("batch parameter lists must match the origin count")
        return blocked, first_hop, lengths

    def converge_batch(
        self,
        origins: Sequence[int],
        *,
        base: RouteState | None = None,
        blocked_sets: Sequence[Collection[int]] | None = None,
        first_hop_flags: Sequence[bool] | None = None,
        origin_lengths: Sequence[int] | None = None,
    ) -> list[RouteState]:
        """Converge K independent announcements in one fused pass.

        The batched analogue of :meth:`converge`: origin *i*'s returned
        state is checksum-identical to
        ``converge(origins[i], base=base, blocked=blocked_sets[i], ...)``
        — columns of the batch never interact, the shared ``base`` (the
        hijack-sweep shape: many attackers stacked on one legitimate
        baseline) is tiled, never mutated. Per-column knobs default
        exactly like the scalar API (no blocking, no stub filter, honest
        origination).

        On the array backend all K origins share one kernel invocation
        over the memoized CSR, which is where the multi-origin speedup in
        ``BENCH_scale.json`` comes from; the reference backend (and any
        single-origin batch) falls back to a per-origin :meth:`converge`
        loop — the fallback rule documented in ``docs/performance.md``.
        """
        origins = list(origins)
        blocked, first_hop, lengths = self._batch_params(
            len(origins), blocked_sets, first_hop_flags, origin_lengths
        )
        if self._propagate_array_batch is None or len(origins) <= 1:
            return [
                self.converge(
                    origin,
                    base=base,
                    blocked=blocked[index],
                    filter_first_hop_providers=first_hop[index],
                    origin_length=lengths[index],
                )
                for index, origin in enumerate(origins)
            ]
        # Placeholder states: the kernel's write-back replaces every array,
        # so pre-filling K RouteState.empty copies would be pure waste.
        states = [
            RouteState(origin=origin, cls=[], length=[], parent=[], origin_of=[])
            for origin in origins
        ]
        messages, installs, replaced, rounds = self._propagate_array_batch(
            self._compiled,
            states,
            origins,
            blocked,
            first_hop,
            self.policy.tier1_shortest_path,
            None,
            lengths,
            base=base,
            fresh=base is None,
        )
        self._emit_convergence_metrics(messages, installs, replaced, rounds)
        if self.validate:
            from repro.oracle.invariants import check_route_state

            for index, state in enumerate(states):
                check_route_state(
                    self.view,
                    state,
                    policy=self.policy,
                    blocked=blocked[index],
                    first_hop_filtered=first_hop[index],
                    origin_lengths=(
                        {origins[index]: lengths[index]} if lengths[index] else None
                    ),
                )
        return states

    def converge_delta_batch(
        self,
        states: Sequence[RouteState],
        origins: Sequence[int],
        *,
        blocked_sets: Sequence[Collection[int]] | None = None,
        first_hop_flags: Sequence[bool] | None = None,
        origin_lengths: Sequence[int] | None = None,
    ) -> list["ConvergenceDelta"]:
        """Apply K in-place announcement passes in one fused sweep.

        The batched analogue of :meth:`converge_delta`: pass *i* mutates
        ``states[i]`` exactly as the scalar call would and returns the
        identical per-pass undo journal, so deltas revert independently
        in the usual newest-first order. This is the warm-start primitive
        behind deployment sweeps: keep one mutable state per attacker,
        apply a rung's blocked sets, read the outcome, revert, move to
        the adjacent rung — never paying a cold convergence per rung.

        The reference backend (and any single-state batch) loops the
        scalar :meth:`converge_delta`; like it, this path never runs the
        invariant suite itself.
        """
        states = list(states)
        origins = list(origins)
        if len(states) != len(origins):
            raise ValueError("converge_delta_batch needs one state per origin")
        blocked, first_hop, lengths = self._batch_params(
            len(origins), blocked_sets, first_hop_flags, origin_lengths
        )
        if self._propagate_array_batch is None or len(origins) <= 1:
            return [
                self.converge_delta(
                    state,
                    origin,
                    blocked=blocked[index],
                    filter_first_hop_providers=first_hop[index],
                    origin_length=lengths[index],
                )
                for index, (state, origin) in enumerate(zip(states, origins))
            ]
        for state in states:
            if state.is_frozen:
                raise ValueError(
                    "converge_delta_batch needs mutable states; unfreeze or copy them"
                )
        prev_origins = [state.origin for state in states]
        for state, origin in zip(states, origins):
            state.origin = origin
        journals: list[list[tuple[int, int, int, int, int]]] = [[] for _ in origins]
        messages, installs, replaced, rounds = self._propagate_array_batch(
            self._compiled,
            states,
            origins,
            blocked,
            first_hop,
            self.policy.tier1_shortest_path,
            journals,
            lengths,
        )
        self._emit_convergence_metrics(messages, installs, replaced, rounds)
        return [
            ConvergenceDelta(
                origin=origin,
                prev_origin=prev_origins[index],
                blocked=blocked[index],
                first_hop_filtered=first_hop[index],
                journal=journals[index],
                origin_length=lengths[index],
            )
            for index, origin in enumerate(origins)
        ]

    def converge_delta(
        self,
        state: RouteState,
        origin: int,
        *,
        blocked: Collection[int] = (),
        filter_first_hop_providers: bool = False,
        origin_length: int = 0,
    ) -> "ConvergenceDelta":
        """Apply *origin*'s announcement to *state* in place — the
        frontier re-propagation hook behind :mod:`repro.stream`.

        The announcement re-propagates from *origin* only where it
        strictly beats the entries already installed in *state*, so the
        install sequence — and hence the final arrays — is identical to
        ``converge(origin, base=state)``, but without the O(N) base copy.
        Every overwritten cell is recorded in the returned
        :class:`ConvergenceDelta`'s undo journal, so the caller can
        rewind the announcement exactly (:meth:`ConvergenceDelta.revert`)
        — which is what makes event-stream withdrawals cheap.

        *state* must be mutable (not :meth:`~RouteState.frozen
        <RouteState.freeze>`) and is mutated directly; its ``origin``
        field is updated to *origin* (the previous value is kept in the
        delta for the rewind).

        Unlike :meth:`converge`, this path never runs the invariant
        suite itself even with ``validate=True``: a state stacked from
        several announcements with *different* blocked sets cannot be
        described by one pass's parameters. The stream ledger validates
        instead, passing the full announcement ``history`` to
        :func:`repro.oracle.invariants.check_route_state`.
        """
        if state.is_frozen:
            raise ValueError("converge_delta needs a mutable state; unfreeze or copy it")
        journal: list[tuple[int, int, int, int, int]] = []
        prev_origin = state.origin
        state.origin = origin
        blocked_set = frozenset(blocked)
        self._propagate(
            state, origin, blocked_set, filter_first_hop_providers, journal=journal,
            origin_length=origin_length,
        )
        return ConvergenceDelta(
            origin=origin,
            prev_origin=prev_origin,
            blocked=blocked_set,
            first_hop_filtered=filter_first_hop_providers,
            journal=journal,
            origin_length=origin_length,
        )

    def _propagate(
        self,
        state: RouteState,
        origin: int,
        blocked_set: frozenset[int],
        filter_first_hop_providers: bool,
        journal: list[tuple[int, int, int, int, int]] | None,
        fresh: bool = False,
        origin_length: int = 0,
    ) -> None:
        """The propagation kernel dispatcher.

        Mutates *state* in place. When *journal* is given, every install
        appends the overwritten ``(node, cls, length, parent, origin_of)``
        cells (pre-install values) so the pass can be reverted; the batch
        path passes ``None`` and pays only one ``is not None`` test per
        install. ``fresh=True`` asserts *state* is a pristine
        :meth:`RouteState.empty` — a pure hint; the array kernel uses it
        to fill its scratch arrays directly instead of converting the
        state lists. Both backends produce identical state arrays,
        journals and metrics counters.
        """
        if self._propagate_array is not None:
            messages, installs, replaced, rounds = self._propagate_array(
                self._compiled,
                state,
                origin,
                blocked_set,
                filter_first_hop_providers,
                self.policy.tier1_shortest_path,
                journal,
                fresh,
                origin_length,
            )
            self._emit_convergence_metrics(messages, installs, replaced, rounds)
            return
        self._propagate_reference(
            state, origin, blocked_set, filter_first_hop_providers, journal,
            origin_length,
        )

    def _propagate_reference(
        self,
        state: RouteState,
        origin: int,
        blocked_set: frozenset[int],
        filter_first_hop_providers: bool,
        journal: list[tuple[int, int, int, int, int]] | None,
        origin_length: int = 0,
    ) -> None:
        """The pure-Python bucket-queue propagation kernel."""
        view = self.view
        cls = state.cls
        length = state.length
        parent = state.parent
        origin_of = state.origin_of
        is_tier1 = view.is_tier1
        tier1_shortest = self.policy.tier1_shortest_path

        # The origin installs its own route unconditionally.
        if journal is not None:
            journal.append(
                (origin, cls[origin], length[origin], parent[origin], origin_of[origin])
            )
        cls[origin] = _CLASS_ORIGIN
        length[origin] = origin_length
        parent[origin] = -1
        origin_of[origin] = origin

        # Bucket queue keyed by (length, class): candidates are considered
        # exactly in simulator arrival order. Each entry: (node, sender).
        buckets: list[list[list[tuple[int, int]]] | None] = []

        def push(node: int, route_class: int, route_length: int, sender: int) -> None:
            while len(buckets) <= route_length:
                buckets.append(None)
            bucket = buckets[route_length]
            if bucket is None:
                bucket = [[], [], [], []]
                buckets[route_length] = bucket
            bucket[route_class].append((node, sender))

        def push_exports(node: int, route_class: int, route_length: int) -> None:
            exported_up = route_class in (_CLASS_ORIGIN, _CLASS_CUSTOMER)
            next_length = route_length + 1
            if exported_up:
                for provider in view.providers[node]:
                    push(provider, _CLASS_CUSTOMER, next_length, node)
                for peer in view.peers[node]:
                    push(peer, _CLASS_PEER, next_length, node)
            for customer in view.customers[node]:
                push(customer, _CLASS_PROVIDER, next_length, node)

        # Initial exports from the origin, one hop past the claimed path.
        first_hop_length = origin_length + 1
        origin_is_stub = not view.customers[origin]
        if not (filter_first_hop_providers and origin_is_stub):
            for provider in view.providers[origin]:
                push(provider, _CLASS_CUSTOMER, first_hop_length, origin)
        for peer in view.peers[origin]:
            push(peer, _CLASS_PEER, first_hop_length, origin)
        for customer in view.customers[origin]:
            push(customer, _CLASS_PROVIDER, first_hop_length, origin)

        installs = 0
        replaced = 0
        route_length = 0
        while route_length < len(buckets):
            bucket = buckets[route_length]
            if bucket is not None:
                for route_class in (_CLASS_CUSTOMER, _CLASS_PEER, _CLASS_PROVIDER):
                    for node, sender in bucket[route_class]:
                        if node == origin or node in blocked_set:
                            continue
                        current_class = cls[node]
                        if current_class != _NO_CLASS and not prefers(
                            is_tier1[node],
                            route_class,  # type: ignore[arg-type]
                            route_length,
                            current_class,  # type: ignore[arg-type]
                            length[node],
                            tier1_shortest_path=tier1_shortest,
                        ):
                            continue
                        installs += 1
                        if current_class != _NO_CLASS:
                            replaced += 1
                        if journal is not None:
                            journal.append(
                                (node, current_class, length[node],
                                 parent[node], origin_of[node])
                            )
                        cls[node] = route_class
                        length[node] = route_length
                        parent[node] = sender
                        origin_of[node] = origin
                        push_exports(node, route_class, route_length)
            route_length += 1
        if self.metrics.enabled:
            # Every bucket entry is one announcement crossing one link;
            # summing after the fact keeps the hot loop free of counting.
            messages = sum(
                len(per_class)
                for bucket in buckets
                if bucket is not None
                for per_class in bucket
            )
            self._emit_convergence_metrics(messages, installs, replaced, len(buckets))

    def _emit_convergence_metrics(
        self, messages: int, installs: int, replaced: int, rounds: int
    ) -> None:
        metrics = self.metrics
        if metrics.enabled:
            metrics.count("engine.convergences")
            metrics.count("engine.messages", messages)
            metrics.count("engine.routes_installed", installs)
            metrics.count("engine.routes_replaced", replaced)
            metrics.count("engine.convergence_rounds", rounds)

    def hijack(
        self,
        target: int,
        attacker: int,
        *,
        legitimate: RouteState | None = None,
        blocked: Collection[int] = (),
        filter_first_hop_providers: bool = False,
    ) -> "HijackResult":
        """Run a full origin-hijack: legitimate convergence, then attack.

        Pass a precomputed ``legitimate`` state (from :meth:`converge` on
        the target) when sweeping many attackers against one target — it is
        attacker-independent and dominates the cost otherwise.
        """
        if target == attacker:
            raise ValueError("attacker and target must differ")
        if legitimate is None:
            legitimate = self.converge(target)
        elif legitimate.origin != target:
            raise ValueError(
                f"legitimate state is for origin {legitimate.origin}, not {target}"
            )
        final = self.converge(
            attacker,
            base=legitimate,
            blocked=blocked,
            filter_first_hop_providers=filter_first_hop_providers,
        )
        return HijackResult(
            target=target,
            attacker=attacker,
            legitimate=legitimate,
            final=final,
        )


@dataclass
class ConvergenceDelta:
    """The reversible record of one in-place announcement pass.

    Produced by :meth:`RoutingEngine.converge_delta`. ``journal`` holds
    the pre-install ``(node, cls, length, parent, origin_of)`` cells in
    install order — a node can appear more than once when an early
    candidate is later displaced within the same pass, which is why
    :meth:`revert` replays the journal *backwards*. ``blocked`` and
    ``first_hop_filtered`` are the pass parameters captured at announce
    time; an exact re-application (after rewinding past this entry) must
    reuse them, not the current defense state. ``origin_length`` is the
    claimed-path padding of the pass (0 for an honest origination).
    """

    origin: int
    prev_origin: int
    blocked: frozenset[int]
    first_hop_filtered: bool
    journal: list[tuple[int, int, int, int, int]] = field(repr=False)
    origin_length: int = 0

    @property
    def touched(self) -> int:
        """Install count of the pass (journal length; ≥ 1 for the origin)."""
        return len(self.journal)

    def revert(self, state: RouteState) -> None:
        """Rewind the pass, restoring *state* to its exact prior content."""
        if state.is_frozen:
            raise ValueError("cannot revert into a frozen state")
        cls = state.cls
        length = state.length
        parent = state.parent
        origin_of = state.origin_of
        for node, old_cls, old_length, old_parent, old_origin in reversed(self.journal):
            cls[node] = old_cls
            length[node] = old_length
            parent[node] = old_parent
            origin_of[node] = old_origin
        state.origin = self.prev_origin


@dataclass
class HijackResult:
    """Outcome of one origin-hijack computation."""

    target: int
    attacker: int
    legitimate: RouteState
    final: RouteState

    @property
    def polluted_nodes(self) -> frozenset[int]:
        """Routing nodes holding the bogus route (the attacker excluded)."""
        return self.final.holders_of(self.attacker)

    def polluted_asns(self, view: RoutingView) -> frozenset[int]:
        """Polluted original ASNs (sibling groups expanded)."""
        return view.expand(self.polluted_nodes)

    def pollution_count(self, view: RoutingView) -> int:
        return len(self.polluted_asns(view))

    def is_polluted(self, nodes: Iterable[int]) -> dict[int, bool]:
        polluted = self.polluted_nodes
        return {node: node in polluted for node in nodes}
