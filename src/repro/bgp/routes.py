"""Routes, RIB entries and the per-AS routing table.

The paper's router objects keep a single best entry per prefix ("If a
router already has an announcement in its RIB and a new announcement
arrives…"), so the RIB here is a plain mapping prefix → :class:`Route`.
Routes carry their full AS-path (as routing-node indices) both for realism
— loop detection, path-length preference — and so property tests can check
every installed path is valley-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.prefixes.prefix import Prefix
from repro.topology.relationships import RouteClass

__all__ = ["Route", "Rib"]


@dataclass(frozen=True)
class Route:
    """One candidate or installed route at a routing node.

    ``path`` lists routing-node indices from this node's neighbor down to
    the origin (so ``len(path)`` is the AS-path length and ``path[-1]`` the
    origin). A self-originated route has an empty path and class ORIGIN.
    """

    prefix: Prefix
    route_class: RouteClass
    path: tuple[int, ...]
    origin: int

    def __post_init__(self) -> None:
        if self.path:
            if self.path[-1] != self.origin:
                raise ValueError("path must end at the origin")
        elif self.route_class is not RouteClass.ORIGIN:
            raise ValueError("empty path is only valid for self-originated routes")

    @property
    def length(self) -> int:
        return len(self.path)

    @property
    def next_hop(self) -> int:
        """The neighbor this route was learned from (the origin itself for
        a directly-received origin announcement)."""
        if not self.path:
            raise ValueError("origin route has no next hop")
        return self.path[0]

    def extend(self, via: int, route_class: RouteClass) -> "Route":
        """The route as announced *by* node ``via`` to a neighbor that
        classifies it as ``route_class``."""
        return Route(
            prefix=self.prefix,
            route_class=route_class,
            path=(via, *self.path),
            origin=self.origin,
        )

    def contains_node(self, node: int) -> bool:
        """Loop check: is *node* already on the path (or the origin)?"""
        return node in self.path or node == self.origin


class Rib:
    """The single-best-route table of one routing node."""

    def __init__(self) -> None:
        self._entries: dict[Prefix, Route] = {}

    def get(self, prefix: Prefix) -> Route | None:
        return self._entries.get(prefix)

    def install(self, route: Route) -> None:
        self._entries[route.prefix] = route

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._entries.values())
