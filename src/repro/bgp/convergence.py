"""Convergence statistics for the message simulator.

The paper reports that "convergence is generally reached within 5 to 10
generations". This module measures that claim on any topology: it runs
announcements from sampled origins, collects per-announcement generation
counts and per-generation acceptance volumes, and summarizes them — both
as a validation of the simulator against the paper's observation and as a
characterization tool for other topologies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.bgp.policy import PolicyConfig
from repro.bgp.simulator import BGPSimulator
from repro.prefixes.prefix import Prefix
from repro.topology.view import RoutingView
from repro.util.rng import make_rng

__all__ = ["ConvergenceStats", "measure_convergence", "generation_wavefront"]

_PROBE_PREFIX = Prefix.parse("100.64.0.0/10")


@dataclass(frozen=True)
class ConvergenceStats:
    """Distribution of generations-to-convergence over many announcements."""

    samples: int
    histogram: Mapping[int, int]

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return (
            sum(generations * count for generations, count in self.histogram.items())
            / self.samples
        )

    @property
    def maximum(self) -> int:
        return max(self.histogram, default=0)

    @property
    def minimum(self) -> int:
        return min(self.histogram, default=0)

    def within(self, low: int, high: int) -> float:
        """Fraction of announcements converging within [low, high]
        generations (the paper's 5–10 band)."""
        if not self.samples:
            return 0.0
        hits = sum(
            count
            for generations, count in self.histogram.items()
            if low <= generations <= high
        )
        return hits / self.samples


def measure_convergence(
    view: RoutingView,
    *,
    origins: Sequence[int] | None = None,
    sample: int = 50,
    seed: int = 0,
    policy: PolicyConfig | None = None,
) -> ConvergenceStats:
    """Run sampled announcements and record generations to convergence."""
    if origins is None:
        rng = make_rng(seed, "convergence-origins")
        origins = rng.sample(range(len(view)), min(sample, len(view)))
    histogram: dict[int, int] = {}
    for origin in origins:
        simulator = BGPSimulator(view, policy)
        report = simulator.announce(origin, _PROBE_PREFIX)
        histogram[report.generations] = histogram.get(report.generations, 0) + 1
    return ConvergenceStats(samples=len(origins), histogram=dict(sorted(histogram.items())))


def generation_wavefront(
    view: RoutingView,
    origin: int,
    *,
    policy: PolicyConfig | None = None,
) -> list[int]:
    """Accepted announcements per generation for one origin.

    This is the "fan-out" the paper's Fig. 1 frames visualize: a small
    first generation, an explosive middle, and a tail as the announcement
    saturates the mesh.
    """
    simulator = BGPSimulator(view, policy)
    report = simulator.announce(origin, _PROBE_PREFIX, record_events=True)
    counts = [0] * report.generations
    for event in report.events:
        if event.accepted:
            counts[event.generation - 1] += 1
    return counts
