"""The generation-stepped BGP message simulator.

This is the faithful re-implementation of the paper's simulator: router
objects exchange prefix announcements with their neighbors in synchronous
generations ("BGP announcements are propagated to neighboring ASes in
step-wise fashion… Generation after generation of message propagation
continues until convergence is reached", Section III). Every acceptance
and rejection is optionally recorded, which is what drives the Fig. 1
polar-graph animation (red = accepted/polluted, green = rejected).

For large attacker sweeps use :class:`repro.bgp.engine.RoutingEngine`,
which computes the identical stable outcome directly; the test suite
asserts exact agreement between the two on randomized topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bgp.policy import PolicyConfig, exports_to_peers_and_providers, prefers
from repro.bgp.routes import Rib, Route
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.prefixes.prefix import Prefix
from repro.topology.relationships import RouteClass
from repro.topology.view import RoutingView

__all__ = [
    "BGPSimulator",
    "PropagationEvent",
    "PropagationReport",
    "ConvergenceError",
    "Validator",
]

# A validator sees the receiving node and the candidate route and returns
# True when the announcement must be dropped (prefix filter / ROV).
Validator = Callable[[int, Route], bool]


class ConvergenceError(RuntimeError):
    """The simulation did not converge within ``max_generations``."""


@dataclass(frozen=True)
class PropagationEvent:
    """One announcement crossing one link in one generation."""

    generation: int
    sender: int
    receiver: int
    accepted: bool
    route_class: RouteClass
    length: int
    origin: int


@dataclass
class PropagationReport:
    """Outcome of one origin announcement."""

    origin: int
    prefix: Prefix
    generations: int
    adopters: frozenset[int]
    events: list[PropagationEvent] = field(default_factory=list)

    def adopter_count(self) -> int:
        return len(self.adopters)

    def events_in_generation(self, generation: int) -> list[PropagationEvent]:
        return [event for event in self.events if event.generation == generation]


class BGPSimulator:
    """Synchronous-generation announcement propagation over a routing view."""

    def __init__(
        self,
        view: RoutingView,
        policy: PolicyConfig | None = None,
        *,
        validator: Validator | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self.view = view
        self.policy = policy or PolicyConfig()
        self.validator = validator
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._ribs: list[Rib] = [Rib() for _ in range(len(view))]
        # Edge-class lookup: class a route takes *at the receiver* when
        # learned from each neighbor.
        self._class_from: list[dict[int, RouteClass]] = []
        for node in range(len(view)):
            table: dict[int, RouteClass] = {}
            for customer in view.customers[node]:
                table[customer] = RouteClass.CUSTOMER
            for peer in view.peers[node]:
                table[peer] = RouteClass.PEER
            for provider in view.providers[node]:
                table[provider] = RouteClass.PROVIDER
            self._class_from.append(table)

    # -- state inspection ----------------------------------------------------

    def rib_of(self, node: int) -> Rib:
        return self._ribs[node]

    def route_to(self, prefix: Prefix, node: int) -> Route | None:
        """The installed route at *node* for exactly *prefix*."""
        return self._ribs[node].get(prefix)

    def adopters_of(self, prefix: Prefix, origin: int) -> frozenset[int]:
        """Nodes (excluding the origin) whose entry for *prefix* leads to
        *origin* — the paper's polluted set when *origin* is the hijacker."""
        return frozenset(
            node
            for node in range(len(self.view))
            if node != origin
            and (route := self._ribs[node].get(prefix)) is not None
            and route.origin == origin
        )

    # -- announcement --------------------------------------------------------

    def announce(
        self,
        origin: int,
        prefix: Prefix,
        *,
        record_events: bool = False,
    ) -> PropagationReport:
        """Originate *prefix* at node *origin* and run to convergence.

        The origin installs its own route unconditionally (a hijacker lies
        on purpose; a legitimate origin starts from a clean table), then the
        announcement floods generation by generation under the policy model.
        """
        view = self.view
        origin_route = Route(prefix=prefix, route_class=RouteClass.ORIGIN, path=(), origin=origin)
        self._ribs[origin].install(origin_route)
        events: list[PropagationEvent] = []
        # Pending messages for the next generation: (sender, receiver, route).
        pending: list[tuple[int, int, Route]] = [
            (origin, neighbor, origin_route)
            for neighbor in sorted(view.neighbor_nodes(origin))
        ]
        generation = 0
        messages = 0
        accepted_count = 0
        while pending:
            generation += 1
            if generation > self.policy.max_generations:
                raise ConvergenceError(
                    f"no convergence after {self.policy.max_generations} generations"
                )
            changed: list[int] = []
            changed_set: set[int] = set()
            # All messages of one generation carry equal-length routes (the
            # announcement expands one hop per generation), so ordering by
            # class makes each receiver consider its best offer first —
            # deterministic tie-breaking that the fast engine reproduces.
            arrivals = [
                (receiver, self._class_from[receiver][sender], sender, sent_route)
                for sender, receiver, sent_route in pending
            ]
            arrivals.sort(key=lambda item: (item[0], item[1].value, item[2]))
            messages += len(arrivals)
            for receiver, route_class, sender, sent_route in arrivals:
                candidate = sent_route.extend(sender, route_class)
                accepted = self._consider(receiver, candidate)
                if accepted:
                    accepted_count += 1
                if record_events:
                    events.append(
                        PropagationEvent(
                            generation=generation,
                            sender=sender,
                            receiver=receiver,
                            accepted=accepted,
                            route_class=candidate.route_class,
                            length=candidate.length,
                            origin=candidate.origin,
                        )
                    )
                if accepted and receiver not in changed_set:
                    changed_set.add(receiver)
                    changed.append(receiver)
            pending = []
            for node in changed:
                route = self._ribs[node].get(prefix)
                assert route is not None
                pending.extend(
                    (node, neighbor, route)
                    for neighbor in self._export_targets(node, route)
                )
        metrics = self.metrics
        if metrics.enabled:
            metrics.count("simulator.announcements")
            metrics.count("simulator.messages", messages)
            metrics.count("simulator.routes_installed", accepted_count)
            metrics.count("simulator.generations", generation)
        return PropagationReport(
            origin=origin,
            prefix=prefix,
            generations=generation,
            adopters=self.adopters_of(prefix, origin),
            events=events,
        )

    # -- internals -------------------------------------------------------------

    def _consider(self, node: int, candidate: Route) -> bool:
        """Apply loop check, validators and RIB preference; install if won."""
        if candidate.contains_node(node):
            return False
        if self.validator is not None and self.validator(node, candidate):
            return False
        incumbent = self._ribs[node].get(candidate.prefix)
        if incumbent is not None:
            if not prefers(
                self.view.is_tier1[node],
                candidate.route_class,
                candidate.length,
                incumbent.route_class,
                incumbent.length,
                tier1_shortest_path=self.policy.tier1_shortest_path,
            ):
                return False
        self._ribs[node].install(candidate)
        return True

    def _export_targets(self, node: int, route: Route) -> Sequence[int]:
        """Valley-free export: customers always, the rest only for
        own/customer routes. Never export back to the learning neighbor."""
        learned_from = route.path[0] if route.path else None
        targets = list(self.view.customers[node])
        if exports_to_peers_and_providers(route.route_class):
            targets.extend(self.view.peers[node])
            targets.extend(self.view.providers[node])
        return sorted(target for target in targets if target != learned_from)
