"""The routing-policy model from Section III of the paper.

Every behavioural rule the paper's simulator enforces is encoded here, in
one place, shared verbatim by both engines (the generation-stepped message
simulator and the fast three-phase solver):

* **MESSAGE PRIORITY** — LOCAL_PREF orders customer > peer > provider
  routes; within a class, shorter AS paths win; on an exact tie the RIB
  keeps the incumbent ("the new announcement is accepted only if it has a
  shorter path length").
* **Tier-1 exception** — "Tier-1 routers always accept shortest path":
  tier-1 ASes compare path length first, ignoring LOCAL_PREF class, and
  still keep the incumbent on a length tie. This single rule produces the
  paper's Section VI blind-spot example (AS6450's bogus customer routes
  cannot displace equal-length legitimate peer routes at any tier-1).
* **PROPAGATION POLICY** — valley-free export: own/customer routes go to
  everyone; peer and provider routes go to customers only.

The attack model follows the paper's announce-only RIB: the legitimate
route converges first, then the hijack propagates and replaces RIB entries
only where *strictly* preferred. Routes are never withdrawn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.relationships import RouteClass

__all__ = ["PolicyConfig", "prefers", "exports_to_peers_and_providers"]


@dataclass(frozen=True)
class PolicyConfig:
    """Tunable policy switches (defaults = the paper's model).

    ``tier1_shortest_path``
        Apply the tier-1 exception. Turning it off is the ABL-T1 ablation:
        tier-1s then rank routes like everyone else, which (as the paper
        hints) would let tier-1 probes detect attacks they otherwise miss.
    ``first_hop_stub_filter``
        The "optimistic scenario" of Section IV: transit providers know
        their direct stub customers' prefixes and drop bogus announcements
        from them, so a stub attacker cannot inject the hijack through its
        providers (peer links, if any, still leak).
    ``max_generations``
        Safety valve for the message simulator; the paper observes
        convergence within 5–10 generations.
    """

    tier1_shortest_path: bool = True
    first_hop_stub_filter: bool = False
    max_generations: int = 64


def prefers(
    is_tier1: bool,
    new_class: RouteClass,
    new_length: int,
    old_class: RouteClass,
    old_length: int,
    *,
    tier1_shortest_path: bool = True,
) -> bool:
    """True if the new route *strictly* beats the incumbent.

    Ties always keep the incumbent, which is how announcement order
    (legitimate first, hijack second) decides the paper's contested cases.
    """
    if is_tier1 and tier1_shortest_path:
        return new_length < old_length
    if new_class != old_class:
        return new_class < old_class
    return new_length < old_length


def exports_to_peers_and_providers(route_class: RouteClass) -> bool:
    """Valley-free reach of a selected route.

    Own and customer routes are exported to every neighbor; peer and
    provider routes only to customers (which every route reaches).
    """
    return route_class in (RouteClass.ORIGIN, RouteClass.CUSTOMER)
