"""IPv4 prefix model.

The paper reasons about hijacks of *address space*: an attacker announces a
target's prefix (an origin hijack) or a more-specific slice of it (a
sub-prefix hijack), and results are reported both as polluted-AS counts and as
the fraction of internet address space that no longer reaches its rightful
destination ("96% of the IP address space no longer reaches the correct
destination", Fig. 1 caption).

This module provides a compact, hashable, total-ordered IPv4 ``Prefix`` value
type used throughout the simulator, the registries (RPKI / ROVER) and the
address-space accounting. It is deliberately independent from
:mod:`ipaddress` so that the representation stays a plain ``(network, length)``
integer pair that the radix trie and the allocator can manipulate directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Prefix", "PrefixError"]

_MAX_LENGTH = 32
_ADDRESS_SPACE = 1 << _MAX_LENGTH


class PrefixError(ValueError):
    """Raised for malformed prefix strings or out-of-range components."""


def _parse_dotted_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise PrefixError(f"expected dotted quad, got {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise PrefixError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_dotted_quad(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 CIDR prefix, e.g. ``Prefix.parse("203.0.113.0/24")``.

    ``network`` is the 32-bit integer network address (host bits must be
    zero) and ``length`` the mask length in ``[0, 32]``. Instances are
    immutable, hashable and totally ordered by ``(network, length)``, which
    sorts supernets before their first subnet — the order a radix walk
    naturally produces.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= _MAX_LENGTH:
            raise PrefixError(f"prefix length {self.length} out of range")
        if not 0 <= self.network < _ADDRESS_SPACE:
            raise PrefixError(f"network {self.network:#x} out of range")
        if self.network & (self.host_mask()):
            raise PrefixError(
                f"host bits set in {_format_dotted_quad(self.network)}/{self.length}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (or a bare address, meaning a /32)."""
        text = text.strip()
        if "/" in text:
            addr_part, _, len_part = text.partition("/")
            if not len_part.isdigit():
                raise PrefixError(f"bad prefix length in {text!r}")
            length = int(len_part)
        else:
            addr_part, length = text, _MAX_LENGTH
        return cls(_parse_dotted_quad(addr_part), length)

    @classmethod
    def from_host(cls, address: int, length: int) -> "Prefix":
        """Build a prefix from *any* address inside it by masking host bits."""
        if not 0 <= address < _ADDRESS_SPACE:
            raise PrefixError(f"address {address:#x} out of range")
        mask = ((1 << length) - 1) << (_MAX_LENGTH - length) if length else 0
        return cls(address & mask, length)

    # -- mask helpers ------------------------------------------------------

    def netmask(self) -> int:
        """The 32-bit network mask as an integer."""
        if self.length == 0:
            return 0
        return ((1 << self.length) - 1) << (_MAX_LENGTH - self.length)

    def host_mask(self) -> int:
        """The inverse mask covering the host bits."""
        return _ADDRESS_SPACE - 1 - self.netmask()

    # -- size and containment ---------------------------------------------

    def size(self) -> int:
        """Number of addresses covered (2^(32-length))."""
        return 1 << (_MAX_LENGTH - self.length)

    def fraction_of_space(self) -> float:
        """Fraction of the full IPv4 space this prefix covers."""
        return self.size() / _ADDRESS_SPACE

    def first_address(self) -> int:
        return self.network

    def last_address(self) -> int:
        return self.network | self.host_mask()

    def contains(self, other: "Prefix") -> bool:
        """True if *other* is equal to or more specific than this prefix."""
        if other.length < self.length:
            return False
        return (other.network & self.netmask()) == self.network

    def contains_address(self, address: int) -> bool:
        return (address & self.netmask()) == self.network

    def overlaps(self, other: "Prefix") -> bool:
        return self.contains(other) or other.contains(self)

    def is_subprefix_of(self, other: "Prefix") -> bool:
        """Strictly more specific than *other* (proper sub-prefix)."""
        return other.contains(self) and self.length > other.length

    # -- derivation --------------------------------------------------------

    def supernet(self) -> "Prefix":
        """The enclosing prefix one bit shorter. Errors on ``0.0.0.0/0``."""
        if self.length == 0:
            raise PrefixError("0.0.0.0/0 has no supernet")
        return Prefix.from_host(self.network, self.length - 1)

    def subnets(self, new_length: int | None = None) -> Iterator["Prefix"]:
        """Iterate the subdivisions of this prefix at ``new_length``.

        Defaults to splitting one bit deeper (two halves).
        """
        if new_length is None:
            new_length = self.length + 1
        if new_length < self.length:
            raise PrefixError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        if new_length > _MAX_LENGTH:
            raise PrefixError(f"subnet length /{new_length} exceeds /32")
        step = 1 << (_MAX_LENGTH - new_length)
        for network in range(self.network, self.last_address() + 1, step):
            yield Prefix(network, new_length)

    def bit(self, index: int) -> int:
        """The *index*-th most-significant network bit (0-based)."""
        if not 0 <= index < self.length:
            raise PrefixError(f"bit index {index} outside /{self.length}")
        return (self.network >> (_MAX_LENGTH - 1 - index)) & 1

    def bits(self) -> str:
        """Network bits as a binary string of ``length`` characters."""
        if self.length == 0:
            return ""
        return format(self.network >> (_MAX_LENGTH - self.length), f"0{self.length}b")

    # -- presentation ------------------------------------------------------

    def __str__(self) -> str:
        return f"{_format_dotted_quad(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"
