"""Address-space allocation: which AS originates which prefixes.

The paper measures attack impact two ways: polluted-AS counts and the share
of IP address space that is drawn away from the rightful origin (Fig. 1:
"96% of the internet address space can no longer reach the target"; node
sizes in the polar graphs reflect owned address space). Reproducing those
metrics requires an explicit, disjoint allocation of prefixes to ASes.

:class:`AddressPlan` carves the unicast IPv4 space into per-AS blocks whose
sizes follow the allocation reality the paper's CAIDA-derived topology has:
a handful of tier-1/tier-2 carriers own enormous aggregates while the tail
of stub ASes originates a /22–/24 or two. Block sizes are driven by a caller
supplied weight per AS (the topology layer passes degree-derived weights),
so any topology — synthetic or real CAIDA — obtains a plausible plan.

Allocation is deterministic for a given input ordering and seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.prefixes.prefix import Prefix
from repro.prefixes.trie import PrefixTrie
from repro.util.rng import make_rng

__all__ = ["AddressPlan", "AllocationError"]

# Allocate inside 1.0.0.0/8 .. 223.255.255.255 (classic unicast space),
# skipping the loopback /8. The simulator never needs the reserved ranges
# and skipping them keeps printed prefixes plausible.
_POOL_START = 1 << 24  # 1.0.0.0
_POOL_END = 224 << 24  # first address past 223.255.255.255
_LOOPBACK = Prefix.parse("127.0.0.0/8")


class AllocationError(RuntimeError):
    """Raised when the pool cannot satisfy the requested allocation."""


def _weight_to_length(weight: float, max_weight: float) -> int:
    """Map a relative weight to a prefix length.

    The heaviest AS receives a /10; weight decays map down to /24, roughly
    log-scaled so the resulting size distribution is heavy-tailed like real
    RIR allocations.
    """
    if max_weight <= 0 or weight <= 0:
        return 24
    import math

    # ratio in (0, 1]; log2 spread over the /10../24 range (14 steps).
    ratio = min(1.0, weight / max_weight)
    steps = int(round(-math.log2(max(ratio, 2.0 ** -14))))
    return min(24, 10 + steps)


@dataclass
class AddressPlan:
    """A disjoint assignment of IPv4 prefixes to autonomous systems."""

    _by_asn: dict[int, list[Prefix]] = field(default_factory=dict)
    _origins: PrefixTrie[int] = field(default_factory=PrefixTrie)
    _total_size: int = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        weights: Mapping[int, float],
        *,
        seed: int = 0,
        extra_prefix_probability: float = 0.15,
    ) -> "AddressPlan":
        """Allocate one block per AS (heaviest first), sized by weight.

        ``weights`` maps ASN → relative size weight (e.g. AS degree).
        With probability ``extra_prefix_probability`` an AS receives a second
        smaller block, which gives the sub-prefix and multi-origin
        experiments realistic material to work with.
        """
        if not weights:
            return cls()
        rng = make_rng(seed, "address-plan")
        max_weight = max(weights.values())
        requests: list[tuple[int, int]] = []  # (length, asn)
        for asn in sorted(weights):
            length = _weight_to_length(weights[asn], max_weight)
            requests.append((length, asn))
            if rng.random() < extra_prefix_probability:
                requests.append((min(24, length + 2), asn))
        # Largest blocks first: with aligned carving this never fragments.
        requests.sort(key=lambda item: (item[0], item[1]))
        plan = cls()
        cursor = _POOL_START
        for length, asn in requests:
            block = 1 << (32 - length)
            cursor = (cursor + block - 1) // block * block  # align up
            prefix = Prefix(cursor, length)
            if _LOOPBACK.overlaps(prefix):
                cursor = _LOOPBACK.last_address() + 1
                cursor = (cursor + block - 1) // block * block
                prefix = Prefix(cursor, length)
            if cursor + block > _POOL_END:
                raise AllocationError(
                    f"pool exhausted allocating /{length} for AS{asn}"
                )
            plan.assign(asn, prefix)
            cursor += block
        return plan

    def assign(self, asn: int, prefix: Prefix) -> None:
        """Record that *asn* originates *prefix*. Overlaps are rejected."""
        clash = self._origins.longest_match_prefix(prefix)
        if clash is not None:
            raise AllocationError(f"{prefix} overlaps allocated {clash[0]}")
        if any(True for _ in self._origins.covered_by(prefix)):
            raise AllocationError(f"{prefix} covers an existing allocation")
        self._by_asn.setdefault(asn, []).append(prefix)
        self._origins.insert(prefix, asn)
        self._total_size += prefix.size()

    def transfer(self, prefix: Prefix, new_asn: int) -> int:
        """Reassign an allocated *prefix* to *new_asn*; returns the old owner.

        Models real-world churn — mergers, address sales, re-homing of
        customer blocks — which is exactly what makes *historical* origin
        data go stale (see :mod:`repro.registry.history`).
        """
        bucket = self._by_asn.get(self._origins.get(prefix, -1))
        if bucket is None or prefix not in bucket:
            raise KeyError(f"{prefix} is not an allocated block")
        old_asn = self._origins[prefix]
        bucket.remove(prefix)
        if not bucket:
            del self._by_asn[old_asn]
        self._by_asn.setdefault(new_asn, []).append(prefix)
        self._origins.insert(prefix, new_asn)
        return old_asn

    # -- queries -----------------------------------------------------------

    def prefixes_of(self, asn: int) -> Sequence[Prefix]:
        """Prefixes originated by *asn* (empty if none allocated)."""
        return tuple(self._by_asn.get(asn, ()))

    def primary_prefix(self, asn: int) -> Prefix:
        """The largest (first-allocated) prefix of *asn*."""
        prefixes = self._by_asn.get(asn)
        if not prefixes:
            raise KeyError(f"AS{asn} has no allocation")
        return min(prefixes, key=lambda p: (p.length, p.network))

    def origin_of(self, prefix: Prefix) -> int | None:
        """The AS whose allocation contains *prefix*, if any."""
        match = self._origins.longest_match_prefix(prefix)
        return None if match is None else match[1]

    def address_space_of(self, asn: int) -> int:
        return sum(p.size() for p in self._by_asn.get(asn, ()))

    def total_allocated(self) -> int:
        """Total number of allocated addresses across all ASes."""
        return self._total_size

    def fraction_owned(self, asns: Iterable[int]) -> float:
        """Share of *allocated* space owned by the given ASes.

        This is the paper's "% of the internet address space" metric: when a
        set of ASes routes traffic to the hijacker, the space they serve is
        proportional to the space behind them, approximated here by the space
        the polluted ASes themselves originate.
        """
        if self._total_size == 0:
            return 0.0
        owned = sum(self.address_space_of(asn) for asn in set(asns))
        return owned / self._total_size

    def all_asns(self) -> Sequence[int]:
        return tuple(sorted(self._by_asn))

    def items(self) -> Iterable[tuple[Prefix, int]]:
        """All ``(prefix, origin ASN)`` pairs in prefix order."""
        return self._origins.items()

    def __len__(self) -> int:
        return sum(len(prefixes) for prefixes in self._by_asn.values())

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn
