"""IPv4 prefixes, longest-prefix matching and address-space allocation."""

from repro.prefixes.addressing import AddressPlan, AllocationError
from repro.prefixes.prefix import Prefix, PrefixError
from repro.prefixes.trie import PrefixTrie

__all__ = [
    "AddressPlan",
    "AllocationError",
    "Prefix",
    "PrefixError",
    "PrefixTrie",
]
