"""Binary radix trie with longest-prefix matching.

BGP routers select routes per-prefix and forward packets to the most specific
matching entry, which is exactly why sub-prefix hijacks are so damaging: the
bogus /25 beats the legitimate /24 everywhere it propagates. The registries
(RPKI / ROVER) also need covering-prefix lookups to validate announcements
against published route origins. Both needs are served by this trie.

The trie maps :class:`~repro.prefixes.prefix.Prefix` keys to arbitrary
values. It is a plain uncompressed binary trie — at the scale of this
simulator (thousands of prefixes, 32-bit keys) path compression buys nothing
measurable and costs clarity.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.prefixes.prefix import Prefix

__all__ = ["PrefixTrie"]

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list["_Node[V]" | None] = [None, None]
        self.value: V | None = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """A mapping from IPv4 prefixes to values with radix-tree lookups.

    Besides the ``MutableMapping``-flavoured basics (``insert`` / ``get`` /
    ``remove`` / ``in`` / ``len`` / iteration), it offers the three lookups
    routing and origin-validation code needs:

    * :meth:`longest_match` — forwarding decision for an address,
    * :meth:`covering` — all stored prefixes that contain a given prefix
      (what an RPKI validator walks to find candidate ROAs),
    * :meth:`covered_by` — all stored prefixes inside a given block
      (what an allocator or filter-builder enumerates).
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._count = 0

    # -- mutation ----------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at *prefix*."""
        node = self._root
        for index in range(prefix.length):
            bit = prefix.bit(index)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._count += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> V:
        """Remove *prefix* and return its value; ``KeyError`` if absent."""
        path: list[tuple[_Node[V], int]] = []
        node = self._root
        for index in range(prefix.length):
            bit = prefix.bit(index)
            child = node.children[bit]
            if child is None:
                raise KeyError(str(prefix))
            path.append((node, bit))
            node = child
        if not node.has_value:
            raise KeyError(str(prefix))
        value = node.value
        node.value = None
        node.has_value = False
        self._count -= 1
        # Prune now-empty branches so memory tracks the live contents.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            assert child is not None
            if child.has_value or child.children[0] or child.children[1]:
                break
            parent.children[bit] = None
        return value  # type: ignore[return-value]

    def setdefault(self, prefix: Prefix, default: V) -> V:
        """Return the value at *prefix*, inserting *default* if absent.

        The accumulator idiom (``trie.setdefault(p, set()).add(x)``)
        used by the RIB compiler to grow per-prefix legal-origin sets
        in one walk instead of a get-then-insert pair.
        """
        node = self._root
        for index in range(prefix.length):
            bit = prefix.bit(index)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            node.value = default
            node.has_value = True
            self._count += 1
        return node.value  # type: ignore[return-value]

    def clear(self) -> None:
        self._root = _Node()
        self._count = 0

    # -- exact lookups -----------------------------------------------------

    def get(self, prefix: Prefix, default: V | None = None) -> V | None:
        node = self._find(prefix)
        if node is None or not node.has_value:
            return default
        return node.value

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find(prefix)
        return node is not None and node.has_value

    def __getitem__(self, prefix: Prefix) -> V:
        node = self._find(prefix)
        if node is None or not node.has_value:
            raise KeyError(str(prefix))
        return node.value  # type: ignore[return-value]

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def __len__(self) -> int:
        return self._count

    def _find(self, prefix: Prefix) -> _Node[V] | None:
        node = self._root
        for index in range(prefix.length):
            node = node.children[prefix.bit(index)]
            if node is None:
                return None
        return node

    # -- longest-prefix matching -------------------------------------------

    def longest_match(self, address: int) -> tuple[Prefix, V] | None:
        """The most specific stored prefix containing *address*, if any."""
        best: tuple[Prefix, V] | None = None
        node = self._root
        network = 0
        for depth in range(33):
            if node.has_value:
                best = (Prefix.from_host(network, depth), node.value)  # type: ignore[arg-type]
            if depth == 32:
                break
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            network |= bit << (31 - depth)
            node = child
        return best

    def longest_match_prefix(self, prefix: Prefix) -> tuple[Prefix, V] | None:
        """The most specific stored prefix that *contains* the query prefix."""
        best: tuple[Prefix, V] | None = None
        node = self._root
        if node.has_value:
            best = (Prefix(0, 0), node.value)  # type: ignore[arg-type]
        for index in range(prefix.length):
            node = node.children[prefix.bit(index)]
            if node is None:
                break
            if node.has_value:
                best = (Prefix.from_host(prefix.network, index + 1), node.value)  # type: ignore[arg-type]
        return best

    # -- containment walks -------------------------------------------------

    def covering(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """All stored prefixes that contain *prefix*, shortest first."""
        node = self._root
        if node.has_value:
            yield Prefix(0, 0), node.value  # type: ignore[misc]
        for index in range(prefix.length):
            node = node.children[prefix.bit(index)]
            if node is None:
                return
            if node.has_value:
                yield Prefix.from_host(prefix.network, index + 1), node.value  # type: ignore[misc]

    def covered_by(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """All stored prefixes equal to or inside *prefix*, in sorted order."""
        node = self._find(prefix)
        if node is None:
            return
        yield from self._walk(node, prefix.network, prefix.length)

    def iter_covered(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """All stored prefixes *strictly* inside *prefix*, in sorted order.

        The sub-prefix-cover lookup: a tenant registered for a /24 must
        also see announcements of any /25..../32 carved out of it (the
        sub-prefix hijack shape), which are the entries this walk yields.
        Unlike :meth:`covered_by` the query prefix itself is excluded.
        """
        node = self._find(prefix)
        if node is None or prefix.length == 32:
            return
        for bit in (0, 1):
            child = node.children[bit]
            if child is not None:
                yield from self._walk(
                    child,
                    prefix.network | (bit << (31 - prefix.length)),
                    prefix.length + 1,
                )

    def __iter__(self) -> Iterator[Prefix]:
        for prefix, _value in self.items():
            yield prefix

    def items(self) -> Iterator[tuple[Prefix, V]]:
        yield from self._walk(self._root, 0, 0)

    def _walk(self, node: _Node[V], network: int, depth: int) -> Iterator[tuple[Prefix, V]]:
        if node.has_value:
            yield Prefix.from_host(network, depth), node.value  # type: ignore[misc]
        if depth == 32:
            return
        for bit in (0, 1):
            child = node.children[bit]
            if child is not None:
                yield from self._walk(child, network | (bit << (31 - depth)), depth + 1)
