"""Rendering Fig. 1: the polar propagation movie of an origin hijack.

Each generation of the attack becomes one SVG frame: red lines are
announcements that were *accepted* (the receiving AS is polluted), green
lines announcements *rejected* because the AS already holds a preferred
path — exactly the encoding of the paper's Fig. 1. The final frame doubles
as the "after" picture the paper recommends for studying filter placement
("especially when comparing before & after scenarios to see the effect of
prefix filters and where attacks are still getting through").
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.bgp.simulator import PropagationReport
from repro.topology.view import RoutingView
from repro.viz.layout import PolarLayout
from repro.viz.svg import SvgCanvas

__all__ = ["PolarRenderer", "render_attack_frames"]

_ACCEPT_COLOR = "#c0392b"  # red: bogus announcement accepted
_REJECT_COLOR = "#27ae60"  # green: rejected, preferred path retained
_NODE_COLOR = "#2c3e50"
_POLLUTED_COLOR = "#e74c3c"
_RING_COLOR = "#dddddd"


@dataclass
class PolarRenderer:
    """Draws propagation frames over a fixed polar layout."""

    layout: PolarLayout
    view: RoutingView
    size: float = 900.0

    @property
    def _center(self) -> float:
        return self.size / 2

    @property
    def _scale(self) -> float:
        return self.size / 2 - 40

    def _canvas_with_rings(self, title: str) -> SvgCanvas:
        canvas = SvgCanvas(self.size, self.size)
        rings = self.layout.max_depth + 1
        for ring in range(1, rings + 1):
            radius = self._scale * ring / rings
            canvas.circle(
                self._center, self._center, radius,
                fill="none", stroke=_RING_COLOR,
            )
        canvas.text(20, 28, title, size=16)
        canvas.text(
            20, self.size - 18,
            "red = bogus route accepted, green = rejected (preferred path kept)",
            size=11, fill="#777",
        )
        return canvas

    def _xy(self, asn: int) -> tuple[float, float]:
        return self.layout.position_of(asn).xy(
            center=self._center, scale=self._scale
        )

    def render_frame(
        self,
        report: PropagationReport,
        generation: int,
        *,
        polluted_so_far: frozenset[int],
        title: str,
    ) -> SvgCanvas:
        """One generation: its messages plus the cumulative polluted set."""
        canvas = self._canvas_with_rings(title)
        for event in report.events_in_generation(generation):
            sender_asn = self.view.asn_of(event.sender)
            receiver_asn = self.view.asn_of(event.receiver)
            x1, y1 = self._xy(sender_asn)
            x2, y2 = self._xy(receiver_asn)
            canvas.line(
                x1, y1, x2, y2,
                stroke=_ACCEPT_COLOR if event.accepted else _REJECT_COLOR,
                width=0.8 if event.accepted else 0.5,
                opacity=0.8 if event.accepted else 0.35,
            )
        for asn, position in self.layout.positions.items():
            x, y = position.xy(center=self._center, scale=self._scale)
            polluted = asn in polluted_so_far
            canvas.circle(
                x, y, position.size if polluted else max(1.0, position.size * 0.6),
                fill=_POLLUTED_COLOR if polluted else _NODE_COLOR,
                opacity=0.9 if polluted else 0.45,
            )
        return canvas


def render_attack_frames(
    renderer: PolarRenderer,
    attack_report: PropagationReport,
    output_dir: str | Path,
    *,
    attacker_asn: int,
    target_asn: int,
) -> list[Path]:
    """Write one SVG per generation plus a final summary frame."""
    output_dir = Path(output_dir)
    view = renderer.view
    paths: list[Path] = []
    polluted: set[int] = set()
    for generation in range(1, attack_report.generations + 1):
        for event in attack_report.events_in_generation(generation):
            if event.accepted:
                polluted.update(view.members[event.receiver])
        title = (
            f"AS{attacker_asn} hijacks AS{target_asn} — generation "
            f"{generation}: {len(polluted)} ASes polluted"
        )
        canvas = renderer.render_frame(
            attack_report, generation,
            polluted_so_far=frozenset(polluted), title=title,
        )
        paths.append(canvas.save(output_dir / f"generation_{generation:02d}.svg"))
    return paths
