"""Before/after comparison frames.

"These visualizations are useful for gaining insights on attack
propagation, especially when comparing before & after scenarios to see the
effect of prefix filters and where attacks are still getting through"
(Fig. 1 caption). This module renders exactly that comparison: one polar
frame coloring each AS by its fate across two runs of the same attack —
polluted in both (the hole), protected by the new defense, or never
polluted.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.attacks.scenario import AttackOutcome
from repro.viz.layout import PolarLayout
from repro.viz.svg import SvgCanvas

__all__ = ["DefenseDiff", "diff_outcomes", "render_diff_frame"]

_STILL_POLLUTED = "#c0392b"  # red: the attack still gets through here
_PROTECTED = "#27ae60"  # green: the defense saved this AS
_NEWLY_POLLUTED = "#8e44ad"  # purple: polluted only under the new defense
_CLEAN = "#b0bec5"  # gray: never polluted
_BLOCKER = "#2980b9"  # blue ring: a blocking AS


@dataclass(frozen=True)
class DefenseDiff:
    """Set algebra of two outcomes for the same scenario."""

    still_polluted: frozenset[int]
    protected: frozenset[int]
    newly_polluted: frozenset[int]
    blockers: frozenset[int]

    @property
    def protected_count(self) -> int:
        return len(self.protected)

    def effectiveness(self) -> float:
        """Fraction of the originally polluted set the defense rescued."""
        before = len(self.still_polluted) + len(self.protected)
        return len(self.protected) / before if before else 0.0


def diff_outcomes(before: AttackOutcome, after: AttackOutcome) -> DefenseDiff:
    """Compare an undefended and a defended run of the same scenario."""
    if before.scenario.target_asn != after.scenario.target_asn or (
        before.scenario.attacker_asn != after.scenario.attacker_asn
    ):
        raise ValueError("outcomes describe different scenarios")
    return DefenseDiff(
        still_polluted=before.polluted_asns & after.polluted_asns,
        protected=before.polluted_asns - after.polluted_asns,
        newly_polluted=after.polluted_asns - before.polluted_asns,
        blockers=after.blocked_asns,
    )


def render_diff_frame(
    layout: PolarLayout,
    diff: DefenseDiff,
    *,
    title: str,
    size: float = 900.0,
    path: str | Path | None = None,
) -> SvgCanvas:
    """Draw the comparison frame (optionally saving it to *path*)."""
    canvas = SvgCanvas(size, size)
    center = size / 2
    scale = size / 2 - 40
    rings = layout.max_depth + 1
    for ring in range(1, rings + 1):
        canvas.circle(center, center, scale * ring / rings, fill="none", stroke="#e0e0e0")
    for asn, position in layout.positions.items():
        x, y = position.xy(center=center, scale=scale)
        if asn in diff.still_polluted:
            color, radius = _STILL_POLLUTED, position.size
        elif asn in diff.protected:
            color, radius = _PROTECTED, position.size
        elif asn in diff.newly_polluted:
            color, radius = _NEWLY_POLLUTED, position.size
        else:
            color, radius = _CLEAN, max(1.0, position.size * 0.5)
        canvas.circle(x, y, radius, fill=color, opacity=0.85)
        if asn in diff.blockers:
            canvas.circle(x, y, radius + 1.5, fill="none", stroke=_BLOCKER)
    canvas.text(20, 28, title, size=16)
    canvas.text(
        20, size - 18,
        "red = still polluted, green = protected by the defense, "
        "gray = never polluted, blue ring = blocking AS",
        size=11, fill="#777",
    )
    if path is not None:
        canvas.save(path)
    return canvas
