"""SVG chart rendering for the evaluation figures.

Two chart shapes cover the whole paper: multi-series line charts for the
vulnerability CCDFs (Figs. 2–6) and a bar chart with an overlaid line for
the detector histograms (Fig. 7). Everything is rendered through
:class:`~repro.viz.svg.SvgCanvas`, so the benchmark harness produces
self-contained, versionable figure files.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.viz.svg import SvgCanvas

__all__ = ["Series", "line_chart", "bar_line_chart"]

_PALETTE = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
]
_MARGIN_LEFT = 70.0
_MARGIN_RIGHT = 24.0
_MARGIN_TOP = 48.0
_MARGIN_BOTTOM = 58.0


@dataclass(frozen=True)
class Series:
    """One labeled curve."""

    label: str
    points: tuple[tuple[float, float], ...]

    @classmethod
    def from_pairs(cls, label: str, pairs) -> "Series":
        return cls(label, tuple((float(x), float(y)) for x, y in pairs))


def _nice_step(span: float, target_ticks: int = 6) -> float:
    if span <= 0:
        return 1.0
    raw = span / target_ticks
    magnitude = 10 ** math.floor(math.log10(raw))
    for multiplier in (1, 2, 5, 10):
        if raw <= multiplier * magnitude:
            return multiplier * magnitude
    return 10 * magnitude


def _ticks(low: float, high: float) -> list[float]:
    step = _nice_step(high - low)
    first = math.floor(low / step) * step
    ticks = []
    value = first
    while value <= high + step / 2:
        if value >= low - step / 2:
            ticks.append(value)
        value += step
    return ticks


def _fmt_tick(value: float) -> str:
    if abs(value) >= 1000 and value == int(value):
        return f"{int(value):,}"
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


class _Frame:
    """Axis frame mapping data space to canvas space."""

    def __init__(
        self, canvas: SvgCanvas, x_range: tuple[float, float],
        y_range: tuple[float, float],
    ) -> None:
        self.canvas = canvas
        self.x0, self.x1 = x_range
        self.y0, self.y1 = y_range
        if self.x1 <= self.x0:
            self.x1 = self.x0 + 1
        if self.y1 <= self.y0:
            self.y1 = self.y0 + 1
        self.left = _MARGIN_LEFT
        self.right = canvas.width - _MARGIN_RIGHT
        self.top = _MARGIN_TOP
        self.bottom = canvas.height - _MARGIN_BOTTOM

    def x(self, value: float) -> float:
        span = self.x1 - self.x0
        return self.left + (value - self.x0) / span * (self.right - self.left)

    def y(self, value: float) -> float:
        span = self.y1 - self.y0
        return self.bottom - (value - self.y0) / span * (self.bottom - self.top)

    def draw_axes(self, title: str, x_label: str, y_label: str) -> None:
        canvas = self.canvas
        canvas.text(self.left, 26, title, size=15)
        for tick in _ticks(self.x0, self.x1):
            x = self.x(tick)
            canvas.line(x, self.bottom, x, self.top, stroke="#eeeeee")
            canvas.text(x, self.bottom + 18, _fmt_tick(tick), size=10, anchor="middle")
        for tick in _ticks(self.y0, self.y1):
            y = self.y(tick)
            canvas.line(self.left, y, self.right, y, stroke="#eeeeee")
            canvas.text(self.left - 8, y + 3, _fmt_tick(tick), size=10, anchor="end")
        canvas.line(self.left, self.bottom, self.right, self.bottom, stroke="#444")
        canvas.line(self.left, self.bottom, self.left, self.top, stroke="#444")
        canvas.text(
            (self.left + self.right) / 2, self.canvas.height - 16,
            x_label, size=12, anchor="middle",
        )
        canvas.text(
            20, (self.top + self.bottom) / 2, y_label,
            size=12, anchor="middle", rotate=-90.0,
        )


def line_chart(
    series: Sequence[Series],
    *,
    title: str,
    x_label: str,
    y_label: str,
    width: float = 860.0,
    height: float = 560.0,
) -> SvgCanvas:
    """A multi-series line chart (the Fig. 2–6 CCDF shape)."""
    canvas = SvgCanvas(width, height)
    xs = [x for item in series for x, _ in item.points] or [0.0, 1.0]
    ys = [y for item in series for _, y in item.points] or [0.0, 1.0]
    frame = _Frame(canvas, (min(xs + [0.0]), max(xs)), (min(ys + [0.0]), max(ys)))
    frame.draw_axes(title, x_label, y_label)
    for index, item in enumerate(series):
        color = _PALETTE[index % len(_PALETTE)]
        if len(item.points) >= 2:
            canvas.polyline(
                [(frame.x(x), frame.y(y)) for x, y in item.points],
                stroke=color, width=1.8,
            )
        elif item.points:
            x, y = item.points[0]
            canvas.circle(frame.x(x), frame.y(y), 3, fill=color)
        legend_y = _MARGIN_TOP + 16 * index
        canvas.line(width - 190, legend_y, width - 165, legend_y, stroke=color, width=2.5)
        canvas.text(width - 158, legend_y + 4, item.label, size=11)
    return canvas


def bar_line_chart(
    bars: Mapping[int, int],
    line: Mapping[int, float],
    *,
    title: str,
    x_label: str,
    bar_label: str,
    line_label: str,
    width: float = 860.0,
    height: float = 480.0,
) -> SvgCanvas:
    """Fig. 7's shape: histogram bars plus a mean-size line on a second axis."""
    canvas = SvgCanvas(width, height)
    categories = sorted(set(bars) | set(line))
    if not categories:
        categories = [0]
    max_bar = max(bars.values(), default=1) or 1
    max_line = max(line.values(), default=1.0) or 1.0
    frame = _Frame(canvas, (-0.5, len(categories) - 0.5), (0.0, float(max_bar)))
    frame.draw_axes(title, x_label, bar_label)
    slot = (frame.right - frame.left) / len(categories)
    for index, category in enumerate(categories):
        count = bars.get(category, 0)
        x = frame.left + slot * index + slot * 0.15
        y = frame.y(count)
        canvas.rect(x, y, slot * 0.7, frame.bottom - y, fill="#1f77b4")
        canvas.text(
            frame.left + slot * (index + 0.5), frame.bottom + 18,
            str(category), size=10, anchor="middle",
        )
        if count:
            canvas.text(
                frame.left + slot * (index + 0.5), y - 4,
                str(count), size=9, anchor="middle", fill="#555",
            )
    points = []
    for index, category in enumerate(categories):
        if category in line:
            x = frame.left + slot * (index + 0.5)
            y = frame.bottom - (line[category] / max_line) * (frame.bottom - frame.top)
            points.append((x, y))
    if len(points) >= 2:
        canvas.polyline(points, stroke="#d62728", width=2.0)
    for x, y in points:
        canvas.circle(x, y, 2.5, fill="#d62728")
    canvas.text(width - 250, _MARGIN_TOP, f"bars: {bar_label}", size=11, fill="#1f77b4")
    canvas.text(width - 250, _MARGIN_TOP + 16, f"line: {line_label} (max {max_line:.0f})", size=11, fill="#d62728")
    return canvas
