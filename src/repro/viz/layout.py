"""The CAIDA-inspired polar layout of Fig. 1.

"The polar graphs are constructed such that an AS's longitude is plotted
along the graph perimeter, and the AS depth is plotted along the radius.
This results in 7 concentric circles… with highest depth in the center…
The size of an AS circle indicates the amount of address space an AS
owns. AS degree is shown by scattering within a concentric circle. Higher
degree ASes are towards the center."

This module computes those coordinates; :mod:`repro.viz.polar` renders
them. Longitude groups ASes by region (keeping regional meshes visually
adjacent) and orders within a region by provider to keep customer cones
contiguous.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from repro.prefixes.addressing import AddressPlan
from repro.topology.asgraph import ASGraph
from repro.topology.classify import effective_depth, find_tier1, find_tier2
from repro.topology.view import RoutingView

__all__ = ["PolarLayout", "NodePosition"]


@dataclass(frozen=True)
class NodePosition:
    """One AS's place on the polar canvas (unit-disc coordinates)."""

    asn: int
    angle: float  # radians along the perimeter
    radius: float  # 0 (center, deepest) .. 1 (rim, tier-1)
    size: float  # marker radius, scaled by owned address space
    depth: int

    def xy(self, *, center: float, scale: float) -> tuple[float, float]:
        return (
            center + scale * self.radius * math.cos(self.angle),
            center + scale * self.radius * math.sin(self.angle),
        )


@dataclass(frozen=True)
class PolarLayout:
    """Positions for every AS plus ring metadata for the renderer."""

    positions: dict[int, NodePosition]
    max_depth: int

    @classmethod
    def compute(
        cls,
        graph: ASGraph,
        *,
        plan: AddressPlan | None = None,
        view: RoutingView | None = None,
    ) -> "PolarLayout":
        tier1 = find_tier1(graph)
        tier2 = find_tier2(graph, tier1)
        depth = effective_depth(graph, tier1, tier2)
        max_depth = max(depth.values(), default=0)
        rings = max_depth + 1  # one ring per depth, tier-1 on the rim

        # Longitude: sort by (region, shallowest provider, asn) so customer
        # cones cluster; spread evenly around the circle.
        def sort_key(asn: int) -> tuple:
            providers = sorted(graph.providers(asn))
            anchor = providers[0] if providers else asn
            return (graph.region_of(asn) or "", anchor, asn)

        ordered = sorted(graph.asns(), key=sort_key)
        count = max(1, len(ordered))

        # Degree scattering: percentile of degree within each depth band
        # pushes high-degree ASes toward the inner edge of their ring.
        degrees_by_depth: dict[int, list[int]] = {}
        for asn in ordered:
            degrees_by_depth.setdefault(depth.get(asn, 0), []).append(
                graph.degree(asn)
            )
        for values in degrees_by_depth.values():
            values.sort()

        max_space = 1
        if plan is not None:
            max_space = max(
                (plan.address_space_of(asn) for asn in ordered), default=1
            )

        positions: dict[int, NodePosition] = {}
        ring_width = 1.0 / rings if rings else 1.0
        for index, asn in enumerate(ordered):
            node_depth = depth.get(asn, max_depth)
            band = degrees_by_depth[node_depth]
            degree = graph.degree(asn)
            # rank in [0, 1): 0 = lowest degree (outer edge of the ring).
            rank = bisect.bisect_left(band, degree) / max(1, len(band))
            ring_outer = 1.0 - node_depth * ring_width
            radius = ring_outer - ring_width * (0.15 + 0.7 * rank)
            if plan is not None:
                space = plan.address_space_of(asn)
                size = 1.5 + 6.0 * math.sqrt(space / max_space)
            else:
                size = 2.0
            positions[asn] = NodePosition(
                asn=asn,
                angle=2 * math.pi * index / count,
                radius=max(0.02, radius),
                size=size,
                depth=node_depth,
            )
        return cls(positions=positions, max_depth=max_depth)

    def position_of(self, asn: int) -> NodePosition:
        return self.positions[asn]
