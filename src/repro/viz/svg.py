"""A small SVG document builder.

matplotlib is not available in this environment, so the polar propagation
graphs (Fig. 1) and the evaluation charts (Figs. 2–7) are rendered as
standalone SVG documents through this deliberately tiny builder: just the
primitives the figure code needs, emitted as clean, diffable markup.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape, quoteattr

__all__ = ["SvgCanvas"]


def _fmt(value: float) -> str:
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


class SvgCanvas:
    """Accumulates SVG elements and serializes a standalone document."""

    def __init__(self, width: float, height: float, *, background: str | None = "white") -> None:
        self.width = width
        self.height = height
        self._elements: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # -- primitives ------------------------------------------------------------

    def _attrs(self, **attributes: object) -> str:
        parts = []
        for key, value in attributes.items():
            if value is None:
                continue
            name = key.replace("_", "-")
            parts.append(f"{name}={quoteattr(_fmt(value) if isinstance(value, float) else str(value))}")
        return " ".join(parts)

    def line(self, x1: float, y1: float, x2: float, y2: float, *, stroke: str = "black",
             width: float = 1.0, opacity: float | None = None) -> None:
        self._elements.append(
            f"<line x1={quoteattr(_fmt(x1))} y1={quoteattr(_fmt(y1))} "
            f"x2={quoteattr(_fmt(x2))} y2={quoteattr(_fmt(y2))} "
            + self._attrs(stroke=stroke, stroke_width=width, stroke_opacity=opacity)
            + "/>"
        )

    def circle(self, cx: float, cy: float, r: float, *, fill: str = "black",
               stroke: str = "none", opacity: float | None = None) -> None:
        self._elements.append(
            f"<circle cx={quoteattr(_fmt(cx))} cy={quoteattr(_fmt(cy))} r={quoteattr(_fmt(r))} "
            + self._attrs(fill=fill, stroke=stroke, fill_opacity=opacity)
            + "/>"
        )

    def rect(self, x: float, y: float, w: float, h: float, *, fill: str = "black",
             stroke: str = "none") -> None:
        self._elements.append(
            f"<rect x={quoteattr(_fmt(x))} y={quoteattr(_fmt(y))} "
            f"width={quoteattr(_fmt(w))} height={quoteattr(_fmt(h))} "
            + self._attrs(fill=fill, stroke=stroke)
            + "/>"
        )

    def polyline(self, points: list[tuple[float, float]], *, stroke: str = "black",
                 width: float = 1.5, dash: str | None = None) -> None:
        encoded = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f"<polyline points={quoteattr(encoded)} fill=\"none\" "
            + self._attrs(stroke=stroke, stroke_width=width, stroke_dasharray=dash)
            + "/>"
        )

    def text(self, x: float, y: float, content: str, *, size: float = 12.0,
             anchor: str = "start", fill: str = "#333", rotate: float | None = None) -> None:
        transform = (
            f"rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})" if rotate is not None else None
        )
        self._elements.append(
            f"<text x={quoteattr(_fmt(x))} y={quoteattr(_fmt(y))} "
            + self._attrs(
                font_size=size,
                text_anchor=anchor,
                fill=fill,
                font_family="Helvetica, Arial, sans-serif",
                transform=transform,
            )
            + f">{escape(content)}</text>"
        )

    # -- output ------------------------------------------------------------------

    def to_string(self) -> str:
        header = (
            f"<svg xmlns=\"http://www.w3.org/2000/svg\" "
            f"width=\"{_fmt(self.width)}\" height=\"{_fmt(self.height)}\" "
            f"viewBox=\"0 0 {_fmt(self.width)} {_fmt(self.height)}\">"
        )
        return "\n".join([header, *self._elements, "</svg>"]) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_string(), encoding="utf-8")
        return path
