"""Visualisation: polar propagation graphs (Fig. 1) and SVG charts."""

from repro.viz.charts import Series, bar_line_chart, line_chart
from repro.viz.diff import DefenseDiff, diff_outcomes, render_diff_frame
from repro.viz.layout import NodePosition, PolarLayout
from repro.viz.polar import PolarRenderer, render_attack_frames
from repro.viz.svg import SvgCanvas

__all__ = [
    "DefenseDiff",
    "NodePosition",
    "PolarLayout",
    "PolarRenderer",
    "Series",
    "SvgCanvas",
    "bar_line_chart",
    "diff_outcomes",
    "line_chart",
    "render_attack_frames",
    "render_diff_frame",
]
