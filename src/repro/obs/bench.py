"""Scale-knobbed benchmark profiles and the ``BENCH_*.json`` trail.

``run_bench`` executes one profile — topology build, a sequential vs
pooled vulnerability sweep, the cold/warm convergence-cache workload,
and a metrics-overhead self-measurement — with every phase recorded
through one :class:`repro.obs.Metrics` sink, then writes a
schema-versioned, machine-readable ``BENCH_<name>.json``:

* ``config`` — the resolved profile knobs (topology size, sample sizes,
  worker count, seed), so two files are only comparable when they agree;
* ``env`` — interpreter/platform/core-count fingerprint;
* ``timings`` — wall-clock seconds per phase (what the CI gate diffs);
* ``counters``/``gauges``/``spans`` — the full metrics snapshot
  (messages propagated, routes installed, cache hit rates, pool
  utilization, …);
* ``speedups``/``derived`` — headline ratios, including the measured
  metrics-layer overhead on the profile's sweep (budget: < 3%).

``repro.obs.compare`` diffs two of these files and drives the
``bench-smoke`` CI gate; see ``docs/performance.md``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Mapping

from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = [
    "BATCH_PROFILES",
    "BatchBenchProfile",
    "BenchProfile",
    "INGEST_PROFILES",
    "IngestBenchProfile",
    "PROFILES",
    "SCALE_PROFILES",
    "SCHEMA",
    "SERVICE_PROFILES",
    "STREAM_PROFILES",
    "ScaleBenchProfile",
    "ServiceBenchProfile",
    "StreamBenchProfile",
    "env_fingerprint",
    "run_batch_bench",
    "run_bench",
    "run_ingest_bench",
    "run_scale_bench",
    "run_service_bench",
    "run_stream_bench",
]

SCHEMA = "repro-bench/1"


@dataclass(frozen=True)
class BenchProfile:
    """One named set of scale knobs for ``repro-bgp bench``."""

    name: str
    as_count: int
    sweep_sample: int
    cache_attacks: int
    workers: int
    seed: int = 2014
    cache_capacity: int = 4096
    # Overhead-measurement budget: how many off/on sample pairs to take
    # and how long each timed sample should run. Small profiles keep this
    # minimal — at their scale the number is noise anyway; the smoke and
    # default profiles are what the < 3% budget is enforced against.
    overhead_pairs: int = 5
    overhead_target_s: float = 1.0


# tiny: seconds-cheap, used by the unit tests; smoke: minutes-cheap, the
# per-PR CI gate; default: the full-scale local trajectory benchmark.
# (The calibrated generator needs ≥ ~300 ASes to build its tier-1 clique.)
PROFILES: Mapping[str, BenchProfile] = {
    "tiny": BenchProfile(
        "tiny", as_count=300, sweep_sample=24, cache_attacks=40, workers=2,
        overhead_pairs=1, overhead_target_s=0.05,
    ),
    "smoke": BenchProfile(
        "smoke", as_count=2000, sweep_sample=1000, cache_attacks=500, workers=2,
        # The smoke profile's sweeps are short, so its overhead estimate
        # needs more and longer samples to get the noise under the
        # ±3% it is judged against.
        overhead_pairs=7, overhead_target_s=2.0,
    ),
    "default": BenchProfile(
        "default", as_count=4270, sweep_sample=1200, cache_attacks=600, workers=4
    ),
}


def _available_cores() -> int:
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def env_fingerprint() -> dict[str, object]:
    """Where this BENCH file was produced — context for cross-file diffs."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": _available_cores(),
    }


def _outcomes_equal(a, b) -> bool:
    return list(a) == list(b) and all(
        a[key].polluted_asns == b[key].polluted_asns for key in a
    )


def run_bench(
    profile: BenchProfile | str,
    *,
    output: str | Path | None = None,
    workers: int | None = None,
    metrics: Metrics | None = None,
) -> tuple[dict[str, object], Path]:
    """Run one benchmark profile and write its ``BENCH_<name>.json``.

    ``output`` defaults to ``BENCH_<name>.json`` in the current directory
    (the repo root, when invoked from CI). ``workers`` overrides the
    profile's pool size. Returns ``(payload, path)``.
    """
    # Imported here so ``repro.obs`` stays importable on its own (the
    # heavy simulation stack pulls in numpy/networkx).
    from repro.attacks.lab import HijackLab
    from repro.parallel.cache import ConvergenceCache
    from repro.parallel.executor import resolve_workers
    from repro.topology.generator import GeneratorConfig, generate_topology

    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown bench profile {profile!r}; choices: {sorted(PROFILES)}"
            ) from None
    pool_workers = resolve_workers(
        profile.workers if workers is None else workers
    )
    metrics = metrics if metrics is not None else Metrics()
    timings: dict[str, float] = {}
    bench_start = time.perf_counter()

    def timed(key: str):
        return _PhaseTimer(key, timings, metrics)

    with timed("topology_s"):
        graph = generate_topology(
            GeneratorConfig.scaled(profile.as_count, seed=profile.seed)
        )
    target = HijackLab(graph, seed=profile.seed).attacker_pool(transit_only=True)[3]

    # -- sweep: sequential vs pooled (fresh lab each, cold caches) --------
    sequential_lab = HijackLab(graph, seed=profile.seed, metrics=metrics)
    with timed("sweep_sequential_s"):
        sequential = sequential_lab.sweep_target(
            target, transit_only=True, sample=profile.sweep_sample, seed=profile.seed
        )
    parallel_lab = HijackLab(
        graph, seed=profile.seed, workers=pool_workers, metrics=metrics
    )
    with timed("sweep_parallel_s"):
        parallel = parallel_lab.sweep_target(
            target, transit_only=True, sample=profile.sweep_sample, seed=profile.seed
        )
    outcomes_consistent = _outcomes_equal(sequential, parallel)

    # -- convergence cache: cold vs warm random-attack workload -----------
    cache = ConvergenceCache(capacity=profile.cache_capacity, metrics=metrics)
    cached_lab = HijackLab(graph, seed=profile.seed, cache=cache, metrics=metrics)
    with timed("random_cold_s"):
        cached_lab.random_attacks(profile.cache_attacks, seed=profile.seed)
    cold_hit_rate = cache.stats.hit_rate
    with timed("random_warm_s"):
        cached_lab.random_attacks(profile.cache_attacks, seed=profile.seed)
    warm_hit_rate = cache.stats.hit_rate

    # -- metrics-layer overhead: the same sweep, sink off vs on -----------
    # Fresh labs with cold caches for every sweep, so the only difference
    # between the two modes is whether the hot paths feed a real Metrics
    # or the no-op sink. Wall-clock A/B at this granularity is noisy
    # (allocator/page-cache state, CPU-share drift on busy hosts), so:
    # labs are constructed *outside* the timed window; each sample
    # repeats the sweep until it is ~a second; samples come in adjacent
    # off/on pairs (shared machine conditions) with alternating order;
    # and the reported overhead is the *median* of the per-pair ratios,
    # which survives an outlier pair either direction.
    repeats = max(
        1,
        round(profile.overhead_target_s / max(timings["sweep_sequential_s"], 1e-3)),
    )

    def _overhead_sample(make_sink) -> float:
        labs = [
            HijackLab(graph, seed=profile.seed, metrics=make_sink())
            for _ in range(repeats)
        ]
        start = time.perf_counter()
        for lab in labs:
            lab.sweep_target(
                target,
                transit_only=True,
                sample=profile.sweep_sample,
                seed=profile.seed,
            )
        return time.perf_counter() - start

    _overhead_sample(lambda: NULL_METRICS)  # warm-up, discarded
    pair_ratios: list[float] = []
    off_best = float("inf")
    on_best = float("inf")
    for pair_index in range(profile.overhead_pairs):
        if pair_index % 2 == 0:
            off_s = _overhead_sample(lambda: NULL_METRICS)
            on_s = _overhead_sample(Metrics)
        else:
            on_s = _overhead_sample(Metrics)
            off_s = _overhead_sample(lambda: NULL_METRICS)
        off_best = min(off_best, off_s)
        on_best = min(on_best, on_s)
        pair_ratios.append(on_s / off_s if off_s > 0 else 1.0)
    pair_ratios.sort()
    timings["overhead_off_s"] = off_best
    timings["overhead_on_s"] = on_best
    metrics.observe("bench.overhead_off", off_best)
    metrics.observe("bench.overhead_on", on_best)
    metrics.gauge("bench.overhead_repeats", repeats)
    overhead_fraction = pair_ratios[len(pair_ratios) // 2] - 1.0

    timings["total_s"] = time.perf_counter() - bench_start
    snapshot = metrics.snapshot()
    payload: dict[str, object] = {
        "schema": SCHEMA,
        "name": profile.name,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": {
            **asdict(profile),
            "workers_resolved": pool_workers,
        },
        "env": env_fingerprint(),
        "timings": timings,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "spans": snapshot["spans"],
        "speedups": {
            "sweep_parallel": timings["sweep_sequential_s"]
            / max(timings["sweep_parallel_s"], 1e-9),
            "cache_warm": timings["random_cold_s"]
            / max(timings["random_warm_s"], 1e-9),
        },
        "derived": {
            "metrics_overhead_fraction": overhead_fraction,
            "cache_cold_hit_rate": cold_hit_rate,
            "cache_warm_hit_rate": warm_hit_rate,
            "outcomes_consistent": outcomes_consistent,
        },
    }
    path = Path(output) if output is not None else Path(f"BENCH_{profile.name}.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return payload, path


@dataclass(frozen=True)
class StreamBenchProfile:
    """Scale knobs for ``repro-bgp bench --suite stream``.

    The workload is one prefix under churn: the legitimate origin
    announces, then a rotating pool of *attackers* announces and
    withdraws bogus routes, stacking the ledger several announcements
    deep. That shape makes the full-reconvergence baseline pay the whole
    chain per event while the incremental path pays one delta — the
    contrast the headline speedup quantifies.
    """

    name: str
    as_count: int
    events: int
    attackers: int = 12
    withdraw_fraction: float = 0.35
    campaign_attacks: int = 5
    batch_window: float = 0.5
    queue_limit: int = 64
    seed: int = 2014


# tiny: seconds-cheap, used by the unit tests; smoke: the per-PR CI gate
# and the acceptance benchmark (50 events on the default 4,270-AS
# topology); default: the longer local trajectory run.
STREAM_PROFILES: Mapping[str, StreamBenchProfile] = {
    "tiny": StreamBenchProfile(
        "tiny", as_count=300, events=20, attackers=6, campaign_attacks=3
    ),
    "smoke": StreamBenchProfile("smoke", as_count=4270, events=50),
    "default": StreamBenchProfile(
        "default", as_count=4270, events=200, attackers=24, campaign_attacks=12
    ),
}


def run_stream_bench(
    profile: StreamBenchProfile | str,
    *,
    output: str | Path | None = None,
    metrics: Metrics | None = None,
) -> tuple[dict[str, object], Path]:
    """Benchmark the stream subsystem and write ``BENCH_stream.json``.

    Three timed phases over the same event plan:

    * ``stream_incremental_s`` — every event applied to one live
      :class:`~repro.stream.incremental.PrefixLedger` (the product path);
    * ``stream_full_s`` — after every event, the whole active chain
      re-converged cold via :func:`~repro.stream.incremental
      .full_converge` (the K-full-reconvergences baseline the paper-scale
      deployment cannot afford); checksums are compared event-by-event
      and reported as ``derived.checksums_consistent``;
    * ``stream_replay_s`` — a compiled multi-attack campaign replayed
      through the full :class:`~repro.stream.replay.StreamReplayer` +
      :class:`~repro.stream.monitor.OnlineMonitor` stack (events/sec and
      detection latency in ``derived``).
    """
    from repro.attacks.lab import HijackLab
    from repro.attacks.scenario import HijackScenario
    from repro.detection.detector import HijackDetector
    from repro.detection.probes import top_degree_probes
    from repro.stream.events import compile_campaign
    from repro.stream.incremental import AnnounceEntry, PrefixLedger, full_converge
    from repro.stream.monitor import OnlineMonitor
    from repro.stream.replay import StreamReplayer
    from repro.topology.generator import GeneratorConfig, generate_topology
    from repro.util.rng import make_rng

    if isinstance(profile, str):
        try:
            profile = STREAM_PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown stream bench profile {profile!r}; "
                f"choices: {sorted(STREAM_PROFILES)}"
            ) from None
    metrics = metrics if metrics is not None else Metrics()
    timings: dict[str, float] = {}
    bench_start = time.perf_counter()

    def timed(key: str):
        return _PhaseTimer(key, timings, metrics)

    with timed("topology_s"):
        graph = generate_topology(
            GeneratorConfig.scaled(profile.as_count, seed=profile.seed)
        )
    lab = HijackLab(graph, seed=profile.seed, metrics=metrics)
    view = lab.view
    rng = make_rng(profile.seed, "stream-bench")
    pool = lab.attacker_pool(transit_only=True)
    target_asn = pool[3]
    target_node = view.node_of(target_asn)
    attacker_nodes = []
    for asn in rng.sample(pool, min(profile.attackers + 1, len(pool))):
        node = view.node_of(asn)
        if node != target_node and node not in attacker_nodes:
            attacker_nodes.append(node)
    attacker_nodes = attacker_nodes[: profile.attackers]

    # One deterministic event plan, shared by both timed phases: the
    # legitimate origin stays announced, attackers churn on top of it.
    ops: list[tuple[str, int]] = [("announce", target_node)]
    active: list[int] = []
    while len(ops) < profile.events:
        idle = [node for node in attacker_nodes if node not in active]
        if active and (not idle or rng.random() < profile.withdraw_fraction):
            node = rng.choice(active)
            ops.append(("withdraw", node))
            active.remove(node)
        else:
            node = rng.choice(idle)
            ops.append(("announce", node))
            active.append(node)

    # Timed product path: apply only — a live stream never hashes its
    # whole state per event, so neither does the timed loop.
    ledger = PrefixLedger(lab.engine, metrics=metrics)
    with timed("stream_incremental_s"):
        for op, node in ops:
            if op == "announce":
                ledger.announce(node)
            else:
                ledger.withdraw(node)

    chain: list[AnnounceEntry] = []
    full_states = []
    with timed("stream_full_s"):
        for op, node in ops:
            if op == "announce":
                chain.append(AnnounceEntry(origin=node, origin_asn=view.asn_of(node)))
            else:
                chain = [entry for entry in chain if entry.origin != node]
            full_states.append(full_converge(lab.engine, chain))

    # Untimed consistency pass: replay the same plan on a fresh ledger,
    # hashing after every event against the stored cold states.
    shadow = PrefixLedger(lab.engine)
    checksums_consistent = True
    for (op, node), full_state in zip(ops, full_states):
        if op == "announce":
            shadow.announce(node)
        else:
            shadow.withdraw(node)
        full_checksum = full_state.checksum() if full_state is not None else None
        if shadow.checksum() != full_checksum:
            checksums_consistent = False
            break
    checksums_consistent = checksums_consistent and (
        ledger.checksum() == shadow.checksum()
    )
    del full_states

    # -- full replay + online monitor over a compiled campaign ------------
    scenarios = []
    for attacker_asn in rng.sample(pool, len(pool))[: profile.campaign_attacks * 3]:
        if view.node_of(attacker_asn) == target_node:
            continue
        scenarios.append(
            HijackScenario(
                target_asn=target_asn,
                attacker_asn=attacker_asn,
                prefix=lab.plan.primary_prefix(target_asn),
            )
        )
        if len(scenarios) == profile.campaign_attacks:
            break
    campaign = compile_campaign(
        scenarios, publish_roas=True, dwell=5.0, stagger=2.0
    )
    replayer = StreamReplayer(
        lab,
        batch_window=profile.batch_window,
        queue_limit=profile.queue_limit,
        metrics=metrics,
    )
    detector = HijackDetector(
        top_degree_probes(graph), authority=replayer.authority
    )
    replayer.monitor = OnlineMonitor(view, detector, metrics=metrics)
    with timed("stream_replay_s"):
        replay_report = replayer.run(campaign)
    monitor_report = replay_report.monitor
    assert monitor_report is not None

    timings["total_s"] = time.perf_counter() - bench_start
    snapshot = metrics.snapshot()
    payload: dict[str, object] = {
        "schema": SCHEMA,
        "name": f"stream-{profile.name}",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": asdict(profile),
        "env": env_fingerprint(),
        "timings": timings,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "spans": snapshot["spans"],
        "speedups": {
            "stream_incremental": timings["stream_full_s"]
            / max(timings["stream_incremental_s"], 1e-9),
        },
        "derived": {
            "events": profile.events,
            "checksums_consistent": checksums_consistent,
            "events_per_s": replay_report.events_submitted
            / max(timings["stream_replay_s"], 1e-9),
            "replay_events_submitted": replay_report.events_submitted,
            "replay_events_coalesced": replay_report.events_coalesced,
            "replay_flushes": replay_report.flushes,
            "alarms": len(monitor_report.alarms),
            "detection_latency_time": monitor_report.detection_latency_time,
            "detection_latency_events": monitor_report.detection_latency_events,
        },
    }
    path = Path(output) if output is not None else Path("BENCH_stream.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return payload, path


@dataclass(frozen=True)
class ScaleBenchProfile:
    """Scale knobs for ``repro-bgp bench --suite scale``.

    The workload is the tentpole question of the array backend: how fast
    is one single-origin convergence at (up to) the paper's full CAIDA
    snapshot scale, reference kernel vs array kernel, on a CAIDA-format
    fixture that flows through the real ``caida.py`` parser. ``origins``
    convergences are timed per backend (summed; best of ``repeats``
    passes), every timed state is checksum-compared across backends, and
    ``hijacks`` attacker-on-top-of-baseline stackings cross-check the
    non-fresh path too.
    """

    name: str
    as_count: int
    origins: int = 4
    hijacks: int = 2
    repeats: int = 3
    seed: int = 2014
    # Multi-origin workload width: this many announcements are stacked on
    # a shared baseline as one fused converge_batch pass and as a
    # per-origin array loop, the ratio being the batched kernel's
    # headline (speedups.multi_origin_batch).
    batch_origins: int = 16


# tiny: seconds-cheap, the per-PR CI gate (scale-smoke step); smoke: a
# mid-scale local check; default: the paper's full 42,697-AS snapshot
# scale — the profile behind the committed BENCH_scale.json baseline.
SCALE_PROFILES: Mapping[str, ScaleBenchProfile] = {
    "tiny": ScaleBenchProfile("tiny", as_count=4270),
    "smoke": ScaleBenchProfile("smoke", as_count=12000),
    "default": ScaleBenchProfile(
        "default", as_count=42697, origins=6, hijacks=3, repeats=5
    ),
}


def run_scale_bench(
    profile: ScaleBenchProfile | str,
    *,
    output: str | Path | None = None,
    metrics: Metrics | None = None,
) -> tuple[dict[str, object], Path]:
    """Benchmark reference vs array convergence and write ``BENCH_scale.json``.

    Timed phases:

    * ``fixture_s`` — generate the deterministic CAIDA-scale fixture
      (:mod:`repro.topology.scalefixture`) and write it in CAIDA serial-1
      format;
    * ``parse_s`` — read it back through the real
      :func:`repro.topology.caida.load_caida` parser and build the
      routing view;
    * ``compile_s`` — the array backend's one-time CSR compilation;
    * ``converge_reference_s`` / ``converge_array_s`` — the same
      ``origins`` single-origin convergences per backend (sum over
      origins, best of ``repeats`` passes);
    * ``converge_multi_array_s`` / ``converge_batch_s`` — the same
      ``batch_origins`` announcements stacked on one shared converged
      baseline, as a per-origin array loop vs one fused
      :meth:`~repro.bgp.engine.RoutingEngine.converge_batch` pass
      (``speedups.multi_origin_batch``);
    * ``hijack_reference_s`` / ``hijack_array_s`` — attacker
      announcements stacked on a converged baseline (the non-fresh
      state path).

    Every timed convergence and hijack is checksum-compared between the
    backends (``derived.checksums_consistent``); the headline ratios are
    ``speedups.single_origin`` and ``speedups.multi_origin_batch``.
    """
    import tempfile

    from repro.bgp.engine import RoutingEngine
    from repro.bgp.kernel import compile_view
    from repro.bgp.policy import PolicyConfig
    from repro.topology.caida import load_caida
    from repro.topology.scalefixture import ScaleFixtureConfig, write_scale_fixture
    from repro.topology.view import RoutingView
    from repro.util.rng import make_rng

    if isinstance(profile, str):
        try:
            profile = SCALE_PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown scale bench profile {profile!r}; "
                f"choices: {sorted(SCALE_PROFILES)}"
            ) from None
    metrics = metrics if metrics is not None else Metrics()
    timings: dict[str, float] = {}
    bench_start = time.perf_counter()

    def timed(key: str):
        return _PhaseTimer(key, timings, metrics)

    fixture_config = (
        ScaleFixtureConfig(seed=profile.seed)
        if profile.as_count == 42_697
        else ScaleFixtureConfig.scaled(profile.as_count, seed=profile.seed)
    )
    with tempfile.TemporaryDirectory(prefix="repro-scale-bench-") as tmp:
        fixture_path = Path(tmp) / "scale-fixture.txt.gz"
        with timed("fixture_s"):
            write_scale_fixture(fixture_path, fixture_config)
        with timed("parse_s"):
            graph = load_caida(fixture_path)
            view = RoutingView.from_graph(graph)

    policy = PolicyConfig()
    reference = RoutingEngine(view, policy, metrics=metrics)
    with timed("compile_s"):
        compile_view(view)
    array = RoutingEngine(view, policy, metrics=metrics, backend="array")

    rng = make_rng(profile.seed, "scale-bench")
    nodes = len(view)
    origins = sorted(rng.sample(range(nodes), profile.origins))
    base_target = rng.randrange(nodes)
    batch_set = sorted(rng.sample(range(nodes), profile.batch_origins))

    # Multi-origin batched phase: the hijack-sweep shape the batched
    # kernel exists for — ``batch_origins`` attacker announcements
    # stacked on one shared converged baseline, as a per-origin array
    # loop vs one fused ``converge_batch`` pass. The loop pays the
    # baseline's list→array load once per origin; the batch loads it
    # once and tiles. The ratio is the batched kernel's headline
    # (``speedups.multi_origin_batch``); every pair of states is
    # checksum-compared. This phase runs first: the reference kernel's
    # convergences churn millions of short-lived Python objects, and the
    # resulting heap fragmentation taxes both of these paths by the same
    # absolute amount per origin — which would compress the ratio for
    # reasons that have nothing to do with either kernel.
    base_state = array.converge(base_target)

    def time_multi(convert) -> tuple[float, list[str]]:
        best = float("inf")
        checksums: list[str] = []
        for _ in range(profile.repeats):
            start = time.perf_counter()
            states = convert()
            best = min(best, time.perf_counter() - start)
            checksums = [state.checksum() for state in states]
        return best, checksums

    with timed("converge_multi_array_total_s"):
        multi_array_s, multi_array_sums = time_multi(
            lambda: [array.converge(origin, base=base_state) for origin in batch_set]
        )
    with timed("converge_batch_total_s"):
        batch_s, batch_sums = time_multi(
            lambda: array.converge_batch(batch_set, base=base_state)
        )
    timings["converge_multi_array_s"] = multi_array_s
    timings["converge_batch_s"] = batch_s

    def time_backend(engine: RoutingEngine) -> tuple[float, list[str]]:
        best = float("inf")
        checksums: list[str] = []
        for _ in range(profile.repeats):
            states = []
            start = time.perf_counter()
            for origin in origins:
                states.append(engine.converge(origin))
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            checksums = [state.checksum() for state in states]
        return best, checksums

    with timed("converge_reference_total_s"):
        reference_s, reference_sums = time_backend(reference)
    with timed("converge_array_total_s"):
        array_s, array_sums = time_backend(array)
    timings["converge_reference_s"] = reference_s
    timings["converge_array_s"] = array_s
    checksums_consistent = (
        reference_sums == array_sums and multi_array_sums == batch_sums
    )

    # Hijack stacking exercises the non-fresh path: the attacker's
    # announcement converges on top of a copied baseline state.
    pairs = []
    while len(pairs) < profile.hijacks:
        target, attacker = rng.sample(range(nodes), 2)
        pairs.append((target, attacker))

    def time_hijacks(engine: RoutingEngine) -> tuple[float, list[str]]:
        baselines = {target: engine.converge(target) for target, _ in pairs}
        checksums = []
        start = time.perf_counter()
        for target, attacker in pairs:
            result = engine.hijack(target, attacker, legitimate=baselines[target])
            checksums.append(result.final.checksum())
        return time.perf_counter() - start, checksums

    with timed("hijack_reference_s"):
        _, hijack_reference_sums = time_hijacks(reference)
    with timed("hijack_array_s"):
        _, hijack_array_sums = time_hijacks(array)
    checksums_consistent = checksums_consistent and (
        hijack_reference_sums == hijack_array_sums
    )

    timings["total_s"] = time.perf_counter() - bench_start
    snapshot = metrics.snapshot()
    payload: dict[str, object] = {
        "schema": SCHEMA,
        "name": f"scale-{profile.name}",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": asdict(profile),
        "env": env_fingerprint(),
        "timings": timings,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "spans": snapshot["spans"],
        "speedups": {
            "single_origin": reference_s / max(array_s, 1e-9),
            "hijack": timings["hijack_reference_s"]
            / max(timings["hijack_array_s"], 1e-9),
            "multi_origin_batch": multi_array_s / max(batch_s, 1e-9),
        },
        "derived": {
            "as_count": len(graph),
            "links": graph.edge_count(),
            "routing_nodes": nodes,
            "origins_timed": profile.origins,
            "reference_origin_s": reference_s / profile.origins,
            "array_origin_s": array_s / profile.origins,
            "batch_origins_timed": profile.batch_origins,
            "array_multi_origin_s": multi_array_s / profile.batch_origins,
            "batch_origin_s": batch_s / profile.batch_origins,
            "checksums_consistent": checksums_consistent,
        },
    }
    path = Path(output) if output is not None else Path("BENCH_scale.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return payload, path


@dataclass(frozen=True)
class BatchBenchProfile:
    """Scale knobs for ``repro-bgp bench --suite batch``.

    The workload is the batched lab end to end, array backend on both
    sides so batching is the only variable: a full vulnerability sweep
    with ``batch_origins=1`` vs the same sweep chunk-fused through
    :meth:`~repro.attacks.lab.HijackLab.run_scenario_batch`, and a
    ``rungs``-deep paper deployment ladder swept cold (one
    ``with_defense`` sweep per rung) vs warm-started through
    :meth:`~repro.attacks.lab.HijackLab.sweep_deployments` (attack
    states converged once, each rung applied and rewound through the
    ``converge_delta`` undo journal). Outcomes are compared
    item-by-item across each pair of paths.
    """

    name: str
    as_count: int
    sweep_sample: int
    batch_origins: int = 16
    rungs: int = 4
    repeats: int = 3
    seed: int = 2014


# tiny: seconds-cheap, the per-PR CI gate (batch-smoke step); smoke: a
# mid-scale local check; default: the profile behind the committed
# BENCH_batch.json baseline.
BATCH_PROFILES: Mapping[str, BatchBenchProfile] = {
    "tiny": BatchBenchProfile(
        "tiny", as_count=300, sweep_sample=24, batch_origins=8, rungs=2, repeats=2
    ),
    "smoke": BatchBenchProfile("smoke", as_count=2000, sweep_sample=200, rungs=3),
    "default": BatchBenchProfile("default", as_count=4270, sweep_sample=400),
}


def run_batch_bench(
    profile: BatchBenchProfile | str,
    *,
    output: str | Path | None = None,
    metrics: Metrics | None = None,
) -> tuple[dict[str, object], Path]:
    """Benchmark batched vs unbatched lab paths; write ``BENCH_batch.json``.

    Timed phases (each best of ``repeats`` passes; the convergence
    caches warm up during the first pass, so best-of reports the steady
    state for both paths alike):

    * ``sweep_scalar_s`` / ``sweep_batch_s`` — one vulnerability sweep
      of ``sweep_sample`` attackers, per-attack convergence vs
      chunk-fused ``converge_batch`` (``speedups.sweep_batch``);
    * ``deploy_cold_s`` / ``deploy_batch_s`` — a ``rungs``-deep paper
      deployment ladder, one full sweep per rung vs the warm-started
      journal path (``speedups.deployment_warm``).

    ``derived.outcomes_consistent`` / ``derived.ladder_consistent``
    assert the batched paths reproduce the unbatched outcomes
    item-identically.
    """
    from repro.attacks.lab import HijackLab
    from repro.core.deployment_analysis import compare_strategies
    from repro.defense.strategies import paper_ladder
    from repro.registry.publication import PublicationState
    from repro.topology.generator import GeneratorConfig, generate_topology

    if isinstance(profile, str):
        try:
            profile = BATCH_PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown batch bench profile {profile!r}; "
                f"choices: {sorted(BATCH_PROFILES)}"
            ) from None
    metrics = metrics if metrics is not None else Metrics()
    timings: dict[str, float] = {}
    bench_start = time.perf_counter()

    def timed(key: str):
        return _PhaseTimer(key, timings, metrics)

    with timed("topology_s"):
        graph = generate_topology(
            GeneratorConfig.scaled(profile.as_count, seed=profile.seed)
        )
    scalar_lab = HijackLab(graph, seed=profile.seed, metrics=metrics, backend="array")
    batched_lab = HijackLab(
        graph,
        seed=profile.seed,
        metrics=metrics,
        backend="array",
        batch_origins=profile.batch_origins,
    )
    target = scalar_lab.attacker_pool(transit_only=True)[3]

    def best_of(run) -> tuple[float, object]:
        best = float("inf")
        result = None
        for _ in range(profile.repeats):
            start = time.perf_counter()
            result = run()
            best = min(best, time.perf_counter() - start)
        return best, result

    # -- vulnerability sweep: per-attack vs chunk-fused convergence -------
    with timed("sweep_scalar_total_s"):
        scalar_s, scalar_outcomes = best_of(
            lambda: scalar_lab.sweep_target(
                target, transit_only=True, sample=profile.sweep_sample,
                seed=profile.seed,
            )
        )
    with timed("sweep_batch_total_s"):
        batch_s, batch_outcomes = best_of(
            lambda: batched_lab.sweep_target(
                target, transit_only=True, sample=profile.sweep_sample,
                seed=profile.seed,
            )
        )
    timings["sweep_scalar_s"] = scalar_s
    timings["sweep_batch_s"] = batch_s
    outcomes_consistent = _outcomes_equal(scalar_outcomes, batch_outcomes)

    # -- deployment ladder: cold per-rung sweeps vs warm-started rungs ----
    ladder = paper_ladder(graph, seed=profile.seed)[: profile.rungs]
    authority = PublicationState.full(scalar_lab.plan).table()

    def run_ladder(lab: HijackLab):
        return compare_strategies(
            lab, target, ladder, authority,
            transit_only=True, sample=profile.sweep_sample, seed=profile.seed,
        )

    with timed("deploy_cold_total_s"):
        cold_s, cold_comparison = best_of(lambda: run_ladder(scalar_lab))
    with timed("deploy_batch_total_s"):
        warm_s, warm_comparison = best_of(lambda: run_ladder(batched_lab))
    timings["deploy_cold_s"] = cold_s
    timings["deploy_batch_s"] = warm_s
    ladder_consistent = [
        (evaluation.strategy.name, evaluation.profile.summary.as_dict())
        for evaluation in cold_comparison.evaluations
    ] == [
        (evaluation.strategy.name, evaluation.profile.summary.as_dict())
        for evaluation in warm_comparison.evaluations
    ]

    timings["total_s"] = time.perf_counter() - bench_start
    snapshot = metrics.snapshot()
    payload: dict[str, object] = {
        "schema": SCHEMA,
        "name": f"batch-{profile.name}",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": asdict(profile),
        "env": env_fingerprint(),
        "timings": timings,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "spans": snapshot["spans"],
        "speedups": {
            "sweep_batch": scalar_s / max(batch_s, 1e-9),
            "deployment_warm": cold_s / max(warm_s, 1e-9),
        },
        "derived": {
            "as_count": len(graph),
            "target_asn": target,
            "attackers": len(scalar_outcomes),
            "rungs": len(ladder),
            "batch_origins": profile.batch_origins,
            "outcomes_consistent": outcomes_consistent,
            "ladder_consistent": ladder_consistent,
        },
    }
    path = Path(output) if output is not None else Path("BENCH_batch.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return payload, path


@dataclass(frozen=True)
class ServiceBenchProfile:
    """Scale knobs for ``repro-bgp bench --suite service``.

    The workload is the daemon's steady-state loop measured through the
    synchronous core (no HTTP, no event loop — those are I/O, not work):
    a tenant registers the victim's prefix, a taxonomy-cell attack
    campaign is serialized to JSONL, and every line is pushed through
    ``ingest_line`` + ``poll`` — the arrive→verdict path — once per
    shard count. ``malformed_lines`` garbage lines ride along to keep
    the robustness path (skip + count, never die) inside the measured
    loop. Per shard count the bench records ingest throughput
    (events/sec) and the wall-clock p50/p95 of the arrive→verdict
    latency; verdict sets must agree across shard counts
    (``derived.verdicts_consistent``).
    """

    name: str
    as_count: int
    attacks: int
    shard_counts: tuple[int, ...] = (1, 2, 4)
    malformed_lines: int = 2
    batch_window: float = 0.0
    queue_limit: int = 64
    seed: int = 2014


# tiny: seconds-cheap, used by the unit tests; smoke: the per-PR CI gate
# behind the committed BENCH_service.json baseline (full 13-cell grid);
# default: the longer local trajectory run.
SERVICE_PROFILES: Mapping[str, ServiceBenchProfile] = {
    "tiny": ServiceBenchProfile(
        "tiny", as_count=300, attacks=6, shard_counts=(1, 2)
    ),
    "smoke": ServiceBenchProfile("smoke", as_count=2000, attacks=13),
    "default": ServiceBenchProfile("default", as_count=4270, attacks=26),
}


def run_service_bench(
    profile: ServiceBenchProfile | str,
    *,
    output: str | Path | None = None,
    metrics: Metrics | None = None,
) -> tuple[dict[str, object], Path]:
    """Benchmark the monitoring service and write ``BENCH_service.json``.

    One timed phase per shard count (``service_shard<n>_s``): the same
    serialized JSONL campaign — ``attacks`` attack-grid scenarios
    against one registered tenant, plus ``malformed_lines`` garbage
    lines — ingested line by line with a poll after each, which is the
    daemon's arrive→verdict path. Derived per shard count: events/sec
    and nearest-rank p50/p95 of the wall-clock latency from a line's
    arrival to the poll that returned its verdict. The verdict sets of
    every shard count are compared (``derived.verdicts_consistent``) —
    sharding must change wall-clock only.
    """
    from repro.attacks.lab import HijackLab
    from repro.detection.probes import top_degree_probes
    from repro.detection.taxonomy import grid_cells
    from repro.service.daemon import MonitorService
    from repro.service.tenants import LatencyStats
    from repro.stream.events import compile_scenario, event_to_dict
    from repro.topology.generator import GeneratorConfig, generate_topology
    from repro.util.rng import make_rng

    if isinstance(profile, str):
        try:
            profile = SERVICE_PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown service bench profile {profile!r}; "
                f"choices: {sorted(SERVICE_PROFILES)}"
            ) from None
    metrics = metrics if metrics is not None else Metrics()
    timings: dict[str, float] = {}
    bench_start = time.perf_counter()

    def timed(key: str):
        return _PhaseTimer(key, timings, metrics)

    with timed("topology_s"):
        graph = generate_topology(
            GeneratorConfig.scaled(profile.as_count, seed=profile.seed)
        )
    lab = HijackLab(graph, seed=profile.seed, metrics=metrics)
    probes = top_degree_probes(graph)
    rng = make_rng(profile.seed, "service-bench")
    pool = lab.attacker_pool(transit_only=True)
    target_asn = pool[3]
    target_node = lab.view.node_of(target_asn)
    attackers = [
        asn for asn in rng.sample(pool, len(pool))
        if lab.view.node_of(asn) != target_node
    ]

    # One deterministic JSONL workload shared by every shard count:
    # attack-grid cells cycled over rotating attackers, plus bounded
    # garbage to keep the malformed path inside the measured loop.
    cells = grid_cells()
    events = []
    for index in range(profile.attacks):
        kind, path_kind = cells[index % len(cells)]
        scenario = lab.build_scenario(
            target_asn,
            attackers[index % len(attackers)],
            kind=kind,
            path_kind=path_kind,
        )
        events.extend(
            compile_scenario(scenario, start=float(index * 4), dwell=2.0)
        )
    events.sort(key=lambda event: event.at)
    lines = [
        json.dumps(event_to_dict(event), sort_keys=True, separators=(",", ":"))
        for event in events
    ]
    for garbage_index in range(profile.malformed_lines):
        position = (garbage_index + 1) * len(lines) // (profile.malformed_lines + 1)
        lines.insert(position, f'{{"kind": "announce", "broken": {garbage_index}')

    verdict_sets: list[frozenset[tuple[str, str]]] = []
    per_shard: dict[str, dict[str, object]] = {}
    for shards in profile.shard_counts:
        service = MonitorService(
            lab,
            shards=shards,
            probes=probes,
            batch_window=profile.batch_window,
            queue_limit=profile.queue_limit,
            metrics=metrics,
        )
        service.register("victim", lab.target_prefix(target_asn), target_asn)
        latencies = LatencyStats()
        with timed(f"service_shard{shards}_s"):
            for line in lines:
                arrived = time.perf_counter()
                service.ingest_line(line)
                fresh = service.poll()
                if fresh:
                    latency = time.perf_counter() - arrived
                    for _ in fresh:
                        latencies.add(latency)
        elapsed = timings[f"service_shard{shards}_s"]
        verdict_sets.append(
            frozenset(
                (str(verdict.alarm.prefix), verdict.alarm.verdict)
                for verdict in service.verdicts
            )
        )
        counts = service.plane.counts()
        per_shard[str(shards)] = {
            "events_per_s": counts["ingested"] / max(elapsed, 1e-9),
            "verdicts": len(service.verdicts),
            "malformed": counts["malformed"],
            "latency_p50_s": latencies.percentile(0.50),
            "latency_p95_s": latencies.percentile(0.95),
        }
        metrics.gauge(
            f"service.bench.shard{shards}.events_per_s",
            counts["ingested"] / max(elapsed, 1e-9),
        )
    verdicts_consistent = len(set(verdict_sets)) == 1

    timings["total_s"] = time.perf_counter() - bench_start
    snapshot = metrics.snapshot()
    first = profile.shard_counts[0]
    most = max(profile.shard_counts)
    payload: dict[str, object] = {
        "schema": SCHEMA,
        "name": f"service-{profile.name}",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": asdict(profile),
        "env": env_fingerprint(),
        "timings": timings,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "spans": snapshot["spans"],
        "speedups": {
            "shard_scaling": timings[f"service_shard{first}_s"]
            / max(timings[f"service_shard{most}_s"], 1e-9),
        },
        "derived": {
            "as_count": len(graph),
            "attacks": profile.attacks,
            "lines": len(lines),
            "malformed_lines": profile.malformed_lines,
            "shards": per_shard,
            "verdicts_consistent": verdicts_consistent,
        },
    }
    path = Path(output) if output is not None else Path("BENCH_service.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return payload, path


@dataclass(frozen=True)
class IngestBenchProfile:
    """Scale knobs for ``repro-bgp bench --suite ingest``.

    The workload is the real-trace path at RIB scale: a synthetic
    MRT-like trace — a RIB dump of ``rib_entries`` records (every
    prefix reported by ``peers`` collector peers) plus ``updates``
    announce/withdraw churn records with monotone timestamps and a few
    garbage lines — is written to disk, then (a) stream-parsed end to
    end and (b) pushed through the chunked ingest pipeline into the
    incremental per-prefix ledgers. Peak-RSS growth across the whole
    run must stay under ``rss_budget_mb`` — the bench *asserts* the
    chunk-streamed property instead of trusting it: materializing the
    multi-hundred-MB record stream would blow the budget immediately.
    """

    name: str
    as_count: int
    rib_entries: int
    updates: int
    peers: int = 4
    malformed_lines: int = 5
    rss_budget_mb: int = 512
    queue_limit: int = 256
    seed: int = 2014


# tiny: seconds-cheap, the CI ingest-smoke gate; smoke: a minutes-cheap
# local sanity run; default: the committed-baseline run pushing >= 1M
# update records through the incremental ledger.
INGEST_PROFILES: Mapping[str, IngestBenchProfile] = {
    "tiny": IngestBenchProfile(
        "tiny", as_count=300, rib_entries=200, updates=20_000,
        rss_budget_mb=384,
    ),
    "smoke": IngestBenchProfile(
        "smoke", as_count=300, rib_entries=400, updates=200_000,
        rss_budget_mb=512,
    ),
    "default": IngestBenchProfile(
        "default", as_count=300, rib_entries=600, updates=1_000_000,
        rss_budget_mb=768,
    ),
}


def _maxrss_kb() -> float:
    """Peak RSS of this process in kB (Linux reports kB, Darwin bytes)."""
    import resource
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak / 1024.0 if sys.platform == "darwin" else float(peak)


def _synthesize_trace(
    profile: IngestBenchProfile, lab, directory: Path
) -> tuple[Path, Path, int]:
    """Write the deterministic RIB + update trace files; returns sizes.

    Lines are formatted directly (key-sorted, compact — byte-identical
    to ``format_record``) because a million ``json.dumps`` calls would
    put serializer overhead, not ingest, on the clock.
    """
    from repro.util.rng import make_rng

    rng = make_rng(profile.seed, "ingest-bench")
    pool = sorted(lab.attacker_pool())
    prefix_count = max(1, min(profile.rib_entries // max(1, profile.peers),
                              len(pool)))
    origins = [pool[i % len(pool)] for i in range(prefix_count)]
    prefixes = [str(lab.plan.primary_prefix(asn)) for asn in origins]
    peers = pool[: profile.peers]

    rib_path = directory / "bench_rib.jsonl"
    with rib_path.open("w", encoding="utf-8") as handle:
        entry = 0
        for index, prefix in enumerate(prefixes):
            origin = origins[index]
            for peer in peers:
                if entry >= profile.rib_entries:
                    break
                handle.write(
                    f'{{"path":[{peer},{origin}],"peer":{peer},'
                    f'"prefix":"{prefix}","ts":0.0,"type":"rib"}}\n'
                )
                entry += 1

    updates_path = directory / "bench_updates.jsonl"
    garbage_every = (
        profile.updates // (profile.malformed_lines + 1)
        if profile.malformed_lines else 0
    )
    # Announce/withdraw-newest churn: the journal-rewind fast path the
    # incremental ledger was built for, exercised across every prefix.
    stacks: list[list[int]] = [[] for _ in prefixes]
    garbage_left = profile.malformed_lines
    with updates_path.open("w", encoding="utf-8") as handle:
        for index in range(profile.updates):
            ts = round(1.0 + index * 0.001, 3)
            slot = rng.randrange(prefix_count)
            prefix = prefixes[slot]
            stack = stacks[slot]
            if stack and rng.random() < 0.5:
                origin = stack.pop()
                handle.write(
                    f'{{"path":[{origin}],"peer":{origin},'
                    f'"prefix":"{prefix}","ts":{ts},"type":"withdraw"}}\n'
                )
            else:
                origin = pool[rng.randrange(len(pool))]
                stack.append(origin)
                handle.write(
                    f'{{"path":[{origin}],"peer":{origin},'
                    f'"prefix":"{prefix}","ts":{ts},"type":"announce"}}\n'
                )
            if garbage_every and garbage_left and (index + 1) % garbage_every == 0:
                handle.write("this line is garbage\n")
                garbage_left -= 1
    trace_bytes = rib_path.stat().st_size + updates_path.stat().st_size
    return rib_path, updates_path, trace_bytes


def run_ingest_bench(
    profile: IngestBenchProfile | str,
    *,
    output: str | Path | None = None,
    metrics: Metrics | None = None,
) -> tuple[dict[str, object], Path]:
    """Benchmark the trace-ingestion path and write ``BENCH_ingest.json``.

    Three timed phases after topology build: ``synthesize_s`` (write
    the trace to disk), ``parse_s`` (chunk-streamed record parsing of
    the update feed, nothing applied) and ``ingest_s`` (the full
    pipeline — RIB baseline compile, announce wave, every update
    through the incremental per-prefix ledgers). Derived throughputs
    plus the RSS bound: ``derived.rss_bounded`` must hold or the bench
    raises — a regression to whole-file materialization is an error,
    not a slow result.
    """
    import tempfile

    from repro.attacks.lab import HijackLab
    from repro.ingest.pipeline import TracePipeline, run_ingest
    from repro.ingest.records import TraceReader
    from repro.topology.generator import GeneratorConfig, generate_topology

    if isinstance(profile, str):
        try:
            profile = INGEST_PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown ingest bench profile {profile!r}; "
                f"choices: {sorted(INGEST_PROFILES)}"
            ) from None
    metrics = metrics if metrics is not None else Metrics()
    timings: dict[str, float] = {}
    bench_start = time.perf_counter()
    rss_before_kb = _maxrss_kb()

    def timed(key: str):
        return _PhaseTimer(key, timings, metrics)

    with timed("topology_s"):
        graph = generate_topology(
            GeneratorConfig.scaled(profile.as_count, seed=profile.seed)
        )
        lab = HijackLab(graph, seed=profile.seed, metrics=metrics)

    with tempfile.TemporaryDirectory(prefix="repro-ingest-bench-") as tmp:
        directory = Path(tmp)
        with timed("synthesize_s"):
            rib_path, updates_path, trace_bytes = _synthesize_trace(
                profile, lab, directory
            )

        with timed("parse_s"):
            reader = TraceReader(updates_path, metrics=metrics)
            parsed = sum(1 for _record in reader)

        with timed("ingest_s"):
            pipeline = TracePipeline(
                rib_path=rib_path, updates_path=updates_path, metrics=metrics
            )
            result = run_ingest(
                lab, pipeline, queue_limit=profile.queue_limit, metrics=metrics
            )

        rss_after_kb = _maxrss_kb()
        report = result.report

    rss_growth_kb = rss_after_kb - rss_before_kb
    rss_bounded = rss_growth_kb <= profile.rss_budget_mb * 1024
    metrics.gauge("ingest.bench.rss_peak_kb", rss_after_kb)
    metrics.gauge("ingest.bench.rss_growth_kb", rss_growth_kb)
    metrics.gauge("ingest.bench.trace_bytes", float(trace_bytes))

    timings["total_s"] = time.perf_counter() - bench_start
    snapshot = metrics.snapshot()
    parse_per_s = parsed / max(timings["parse_s"], 1e-9)
    ingest_per_s = report.events_submitted / max(timings["ingest_s"], 1e-9)
    payload: dict[str, object] = {
        "schema": SCHEMA,
        "name": f"ingest-{profile.name}",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": asdict(profile),
        "env": env_fingerprint(),
        "timings": timings,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "spans": snapshot["spans"],
        "speedups": {
            # How much faster pure parsing runs than the full pipeline —
            # i.e. how far the ledger, not the reader, is the bottleneck.
            "parse_headroom": parse_per_s / max(ingest_per_s, 1e-9),
        },
        "derived": {
            "as_count": len(graph),
            "updates": parsed,
            "rib_entries": profile.rib_entries,
            "trace_bytes": trace_bytes,
            "malformed": reader.malformed,
            "events_submitted": report.events_submitted,
            "events_applied": report.events_applied,
            "parse_records_per_s": parse_per_s,
            "ingest_events_per_s": ingest_per_s,
            "rss_peak_kb": rss_after_kb,
            "rss_growth_kb": rss_growth_kb,
            "rss_budget_mb": profile.rss_budget_mb,
            "rss_bounded": rss_bounded,
        },
    }
    path = Path(output) if output is not None else Path("BENCH_ingest.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    if parsed < profile.updates:
        raise RuntimeError(
            f"ingest bench parsed {parsed} update records, "
            f"expected >= {profile.updates}"
        )
    if not rss_bounded:
        raise RuntimeError(
            f"ingest bench peak-RSS growth {rss_growth_kb / 1024:.0f} MB "
            f"exceeded the {profile.rss_budget_mb} MB chunk-streaming budget"
        )
    return payload, path


class _PhaseTimer:
    """Times one phase into both the timings dict and the metrics sink."""

    def __init__(self, key: str, timings: dict[str, float], metrics: Metrics) -> None:
        self.key = key
        self.timings = timings
        self.metrics = metrics

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        self.timings[self.key] = elapsed
        self.metrics.observe(f"bench.{self.key.removesuffix('_s')}", elapsed)
