"""Runtime observability: metrics, benchmark profiles, regression gates.

A zero-dependency layer threaded through the simulation hot paths:

* :mod:`repro.obs.metrics` — counters, gauges and wall-clock spans, with
  a no-op :data:`NULL_METRICS` default so uninstrumented runs pay
  (almost) nothing;
* :mod:`repro.obs.bench` — scale-knobbed benchmark profiles behind
  ``repro-bgp bench``, emitting schema-versioned ``BENCH_<name>.json``;
* :mod:`repro.obs.compare` — the diff/gate over two BENCH files that
  CI's ``bench-smoke`` workflow enforces.

See ``docs/performance.md`` for the BENCH schema and the CI gate.
"""

from repro.obs.bench import (
    BATCH_PROFILES,
    PROFILES,
    SCALE_PROFILES,
    SCHEMA,
    STREAM_PROFILES,
    BatchBenchProfile,
    BenchProfile,
    ScaleBenchProfile,
    StreamBenchProfile,
    env_fingerprint,
    run_batch_bench,
    run_bench,
    run_scale_bench,
    run_stream_bench,
)
from repro.obs.metrics import NULL_METRICS, Metrics, NullMetrics, SpanStats

# The compare symbols are re-exported lazily: eagerly importing the
# submodule here would make ``python -m repro.obs.compare`` (the CI gate
# entrypoint) warn about the module already sitting in sys.modules before
# runpy executes it. The :func:`compare` *function* is deliberately not
# re-exported — the name would collide with the ``repro.obs.compare``
# submodule itself; import it from the submodule.
_COMPARE_EXPORTS = frozenset({"BenchComparison", "TimingDelta", "load_bench"})


def __getattr__(name: str):
    if name in _COMPARE_EXPORTS:
        import importlib

        return getattr(importlib.import_module("repro.obs.compare"), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BATCH_PROFILES",
    "BatchBenchProfile",
    "BenchComparison",
    "BenchProfile",
    "Metrics",
    "NULL_METRICS",
    "NullMetrics",
    "PROFILES",
    "SCALE_PROFILES",
    "SCHEMA",
    "STREAM_PROFILES",
    "ScaleBenchProfile",
    "SpanStats",
    "StreamBenchProfile",
    "TimingDelta",
    "env_fingerprint",
    "load_bench",
    "run_batch_bench",
    "run_bench",
    "run_scale_bench",
    "run_stream_bench",
]
