"""Counters, gauges and wall-clock spans for the simulation hot paths.

One :class:`Metrics` instance accumulates everything a run wants to
report — how many routes the engine installed, how long each sweep phase
took, how well the worker pool was utilized — and renders it as one
JSON-friendly :meth:`snapshot`. The design constraints, in order:

* **zero dependencies** — stdlib only, importable everywhere;
* **near-zero cost when off** — every instrumented component defaults to
  the shared :data:`NULL_METRICS` sink, whose methods are no-ops and
  whose ``enabled`` flag lets hot loops skip even the bookkeeping that
  would feed it (the engine counts locally and emits once per
  convergence, so the *enabled* path stays well under the 3% overhead
  budget recorded by ``repro-bgp bench``);
* **fork-aware** — a forked worker inherits a copy-on-write copy of the
  parent's metrics, so worker-side increments are invisible to the
  parent. Components that fan out (the sweep executor) therefore ship
  their measurements back with the results and account for them in the
  parent; everything else records only what happens in-process.

Names are dotted paths (``engine.routes_installed``,
``executor.utilization``) so snapshots group naturally by component.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from contextlib import contextmanager

__all__ = ["Metrics", "NullMetrics", "NULL_METRICS", "SpanStats"]


@dataclass
class SpanStats:
    """Aggregate of the duration samples recorded under one span name."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class Metrics:
    """An in-process sink for counters, gauges and timing spans.

    ``count`` accumulates, ``gauge`` overwrites (last value wins),
    ``observe`` records one duration sample, and ``span`` is the
    context-manager form of ``observe``::

        metrics = Metrics()
        with metrics.span("lab.sweep"):
            lab.sweep_target(target)
        metrics.count("engine.convergences", 3)
        metrics.snapshot()["spans"]["lab.sweep"]["total_s"]

    Instances are deliberately not thread-safe: each simulation process
    is single-threaded, and cross-process aggregation goes through
    explicit result plumbing (see the module docstring).
    """

    enabled = True

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.spans: dict[str, SpanStats] = {}

    # -- recording -----------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats()
        stats.add(seconds)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            self.observe(name, self._clock() - start)

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, object]]:
        """One JSON-serializable view of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {name: stats.as_dict() for name, stats in self.spans.items()},
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True), encoding="utf-8"
        )
        return path

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.spans.clear()


class _NullSpan:
    """A reusable no-op context manager (one shared instance, no allocs)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullMetrics(Metrics):
    """The do-nothing sink every instrumented component defaults to.

    Hot paths may additionally branch on ``metrics.enabled`` to skip
    even the local bookkeeping that would feed the sink.
    """

    enabled = False

    def count(self, name: str, value: float = 1) -> None:  # noqa: ARG002
        return None

    def gauge(self, name: str, value: float) -> None:  # noqa: ARG002
        return None

    def observe(self, name: str, seconds: float) -> None:  # noqa: ARG002
        return None

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]  # noqa: ARG002
        return _NULL_SPAN


NULL_METRICS = NullMetrics()
