"""Diff two ``BENCH_*.json`` files and flag wall-clock regressions.

The perf-regression gate: given a committed baseline and a freshly
produced candidate, every shared phase timing is compared and any
candidate phase slower than ``baseline * (1 + threshold)`` is a
regression. Usable as a library (:func:`compare`) or as the CI
entrypoint::

    python -m repro.obs.compare benchmarks/baselines/BENCH_smoke.json \\
        BENCH_smoke.json --threshold 0.25

Exit codes: 0 — no regression; 1 — at least one phase regressed;
2 — unreadable/incompatible input (wrong schema, mismatched profiles).

Comparing absolute wall-clock across different machines is inherently
noisy, which is why the default threshold is a generous 25% and why the
report always prints the env fingerprints side by side — a "regression"
on wildly different hardware is a prompt to refresh the baseline, not
necessarily to revert the PR (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["BenchComparison", "TimingDelta", "compare", "load_bench", "main"]

# Phases whose wall-clock the gate enforces. ``total_s`` is deliberately
# excluded: it double-counts every enforced phase and adds setup noise.
DEFAULT_KEYS = (
    "sweep_sequential_s",
    "sweep_parallel_s",
    "random_cold_s",
    "random_warm_s",
)


class BenchFormatError(ValueError):
    """The file is not a compatible ``BENCH_*.json``."""


def load_bench(path: str | Path) -> dict:
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise BenchFormatError(f"{path}: unreadable BENCH file ({error})") from error
    schema = payload.get("schema") if isinstance(payload, dict) else None
    if not isinstance(schema, str) or not schema.startswith("repro-bench/"):
        raise BenchFormatError(f"{path}: missing/unknown schema {schema!r}")
    if not isinstance(payload.get("timings"), dict):
        raise BenchFormatError(f"{path}: no timings section")
    return payload


@dataclass(frozen=True)
class TimingDelta:
    """One phase's baseline-vs-candidate wall-clock comparison."""

    key: str
    baseline_s: float
    candidate_s: float

    @property
    def ratio(self) -> float:
        return self.candidate_s / self.baseline_s if self.baseline_s > 0 else 1.0

    def regressed(self, threshold: float) -> bool:
        return self.ratio > 1.0 + threshold


@dataclass
class BenchComparison:
    """Every comparable phase, plus the verdict helpers."""

    baseline_name: str
    candidate_name: str
    deltas: list[TimingDelta]
    threshold: float

    def regressions(self) -> list[TimingDelta]:
        return [delta for delta in self.deltas if delta.regressed(self.threshold)]

    @property
    def ok(self) -> bool:
        return not self.regressions()

    def report(self) -> str:
        lines = [
            f"BENCH compare: {self.baseline_name} (baseline) vs "
            f"{self.candidate_name} (candidate), threshold +{self.threshold:.0%}"
        ]
        for delta in self.deltas:
            verdict = (
                "REGRESSED"
                if delta.regressed(self.threshold)
                else ("improved" if delta.ratio < 1.0 else "ok")
            )
            lines.append(
                f"  {delta.key:<22} {delta.baseline_s:>10.4f}s -> "
                f"{delta.candidate_s:>10.4f}s  ({delta.ratio:5.2f}x)  {verdict}"
            )
        failed = self.regressions()
        lines.append(
            f"verdict: {'FAIL' if failed else 'PASS'}"
            + (f" ({len(failed)} phase(s) regressed)" if failed else "")
        )
        return "\n".join(lines)


def compare(
    baseline: dict,
    candidate: dict,
    *,
    threshold: float = 0.25,
    keys: tuple[str, ...] = DEFAULT_KEYS,
) -> BenchComparison:
    """Compare the shared timing keys of two loaded BENCH payloads.

    Only profiles with matching names are comparable — a smoke file
    diffed against a default-profile file measures different workloads.
    """
    if baseline.get("name") != candidate.get("name"):
        raise BenchFormatError(
            f"profile mismatch: baseline is {baseline.get('name')!r}, "
            f"candidate is {candidate.get('name')!r}"
        )
    base_timings = baseline["timings"]
    cand_timings = candidate["timings"]
    deltas = [
        TimingDelta(key, float(base_timings[key]), float(cand_timings[key]))
        for key in keys
        if key in base_timings and key in cand_timings
    ]
    if not deltas:
        raise BenchFormatError("no shared timing keys to compare")
    return BenchComparison(
        baseline_name=str(baseline.get("name")),
        candidate_name=str(candidate.get("name")),
        deltas=deltas,
        threshold=threshold,
    )


def _env_line(payload: dict) -> str:
    env = payload.get("env") or {}
    return (
        f"python {env.get('python', '?')} on {env.get('platform', '?')} "
        f"({env.get('cpu_count', '?')} cores)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.compare",
        description="Diff two BENCH_*.json files; exit 1 on a wall-clock regression.",
    )
    parser.add_argument("baseline", type=Path, help="committed baseline BENCH file")
    parser.add_argument("candidate", type=Path, help="freshly produced BENCH file")
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed slowdown fraction before failing (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--keys", nargs="+", default=list(DEFAULT_KEYS),
        help="timing keys to enforce (default: the sweep/cache phases)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_bench(args.baseline)
        candidate = load_bench(args.candidate)
        comparison = compare(
            baseline, candidate,
            threshold=args.threshold, keys=tuple(args.keys),
        )
    except BenchFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"baseline env:  {_env_line(baseline)}")
    print(f"candidate env: {_env_line(candidate)}")
    print(comparison.report())
    return 0 if comparison.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
