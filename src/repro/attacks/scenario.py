"""Hijack scenarios and their outcomes.

A scenario names the players, the announced bogus prefix, and — new with
the ARTEMIS-grade taxonomy — the *claimed AS path*. The paper's primary
workload is the **origin hijack** — the attacker announces exactly the
target's prefix, and routers choose between two origins for the same
NLRI. The **sub-prefix hijack** (mentioned throughout Sections VI–VIII)
has the attacker announce a more-specific slice; it propagates as a
fresh prefix with no legitimate competitor and steals traffic via
longest-prefix match, which is why only validation-based defenses can
stop it.

The taxonomy adds two orthogonal axes (see ``docs/attacks.md``):

* the **prefix axis** (:class:`HijackKind`) gains ``SQUAT`` — the
  attacker announces allocated-but-unrouted space — and ``ROUTE_LEAK``
  — the attacker re-exports a legitimately learned route in violation
  of valley-free export policy (no forged data at all);
* the **path axis** (:class:`PathKind`) says what AS path the bogus
  announcement *claims*: ``TYPE_0`` forges only the origin (the
  classic MOAS event), ``TYPE_1`` prepends the real origin behind the
  attacker (forged first hop — the cell ROV provably cannot catch),
  ``TYPE_N`` forges a path of depth N, and ``TYPE_U`` replays an
  existing path completely unmodified.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.prefixes.prefix import Prefix

__all__ = [
    "AttackOutcome",
    "HijackKind",
    "HijackScenario",
    "PathKind",
    "SYNTHETIC_ASN_BASE",
    "synthetic_forged_path",
]

#: First ASN used for fabricated intermediate hops in deep type-N paths
#: (the private-use range — guaranteed absent from generated topologies).
SYNTHETIC_ASN_BASE = 64512


class HijackKind(enum.Enum):
    ORIGIN = "origin"
    SUBPREFIX = "subprefix"
    SQUAT = "squat"
    ROUTE_LEAK = "route-leak"


class PathKind(enum.Enum):
    """What AS path the bogus announcement claims (ARTEMIS's type axis)."""

    TYPE_0 = "type-0"  #: forged origin only — the classic MOAS hijack
    TYPE_1 = "type-1"  #: attacker claims adjacency to the legitimate origin
    TYPE_N = "type-n"  #: forged path of depth N behind the attacker
    TYPE_U = "type-u"  #: existing path replayed unmodified


def synthetic_forged_path(
    attacker_asn: int, target_asn: int, depth: int
) -> tuple[int, ...]:
    """A depth-*depth* forged path padded with private-use ASNs.

    ``depth=1`` is exactly the type-1 path ``(attacker, target)``;
    deeper paths insert fabricated hops ``64512, 64513, …`` between the
    attacker and the claimed origin.
    """
    if depth < 1:
        raise ValueError(f"forged path depth must be >= 1, got {depth}")
    hops = tuple(SYNTHETIC_ASN_BASE + i for i in range(depth - 1))
    return (attacker_asn, *hops, target_asn)


@dataclass(frozen=True)
class HijackScenario:
    """One attack: *attacker_asn* announces *prefix* owned by *target_asn*.

    ``path_kind`` and ``forged_path`` default to the type-0 origin forgery
    so every pre-taxonomy scenario — including pickled sweep cache keys —
    hashes and compares exactly as before.
    """

    target_asn: int
    attacker_asn: int
    prefix: Prefix
    kind: HijackKind = HijackKind.ORIGIN
    path_kind: PathKind = PathKind.TYPE_0
    forged_path: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.target_asn == self.attacker_asn:
            raise ValueError("attacker and target must differ")
        if not isinstance(self.forged_path, tuple):
            object.__setattr__(self, "forged_path", tuple(self.forged_path))
        if self.kind is HijackKind.ROUTE_LEAK:
            if self.forged_path:
                raise ValueError(
                    "a route leak re-exports a real path; forged_path must be empty"
                )
            if self.path_kind not in (PathKind.TYPE_0, PathKind.TYPE_U):
                raise ValueError(
                    "a route leak carries the unmodified learned path; "
                    f"path_kind {self.path_kind.value} is contradictory"
                )
            # Normalize: the leaked path is genuine, i.e. type-U.
            object.__setattr__(self, "path_kind", PathKind.TYPE_U)
            return
        if self.path_kind is PathKind.TYPE_1 and not self.forged_path:
            # The canonical forged first hop: attacker claims to neighbor
            # the legitimate origin.
            object.__setattr__(
                self, "forged_path", (self.attacker_asn, self.target_asn)
            )
        if self.path_kind in (PathKind.TYPE_0, PathKind.TYPE_U):
            if self.forged_path:
                raise ValueError(
                    f"path_kind {self.path_kind.value} forges no path; "
                    "forged_path must be empty"
                )
            return
        # TYPE_1 / TYPE_N: the forged path must be a plausible claim.
        if len(self.forged_path) < 2:
            raise ValueError(
                f"path_kind {self.path_kind.value} needs a forged path of "
                f"depth >= 1 (attacker plus at least the claimed origin), "
                f"got {self.forged_path!r}"
            )
        if self.forged_path[0] != self.attacker_asn:
            raise ValueError(
                "the attacker must appear first in its own forged path: "
                f"expected AS{self.attacker_asn} at forged_path[0], "
                f"got {self.forged_path!r}"
            )
        if self.forged_path[-1] != self.target_asn:
            raise ValueError(
                "a forged path must claim the legitimate origin last: "
                f"expected AS{self.target_asn} at forged_path[-1], "
                f"got {self.forged_path!r}"
            )
        if self.path_kind is PathKind.TYPE_1 and len(self.forged_path) != 2:
            raise ValueError(
                "type-1 forges exactly the first hop "
                f"(attacker, origin); got depth {len(self.forged_path) - 1}"
            )

    # -- derived path semantics -------------------------------------------

    @property
    def forged_depth(self) -> int:
        """Forged hops between the attacker and the claimed origin
        (0 for type-0/type-U — nothing behind the attacker is forged)."""
        return max(0, len(self.forged_path) - 1)

    @property
    def static_claimed_path(self) -> tuple[int, ...] | None:
        """The claimed AS path when it does not depend on routing state.

        Returns the path attribute of the bogus announcement, claimed
        origin **last**. ``None`` means the claim is *dynamic* — a type-U
        replay or a route leak reuses whatever path the attacker actually
        learned, which only :meth:`HijackLab.claimed_path` can resolve.
        """
        if self.path_kind in (PathKind.TYPE_1, PathKind.TYPE_N):
            return self.forged_path
        if self.path_kind is PathKind.TYPE_0:
            return (self.attacker_asn,)
        # TYPE_U: squatted space has no existing route to replay — the
        # "unmodified" announcement degenerates to an honest origination
        # by the attacker (ARTEMIS files most squatting under type-U).
        if self.kind is HijackKind.SQUAT:
            return (self.attacker_asn,)
        return None

    @property
    def needs_baseline(self) -> bool:
        """Does simulating this scenario require the target's legitimate
        routing state first?  True when the bogus route competes with the
        real one (exact-prefix and leaks) or when the claimed path itself
        is read off the legitimate state (type-U replay)."""
        if self.kind in (HijackKind.ORIGIN, HijackKind.ROUTE_LEAK):
            return True
        return (
            self.path_kind is PathKind.TYPE_U
            and self.kind is not HijackKind.SQUAT
        )


@dataclass(frozen=True)
class AttackOutcome:
    """Result of simulating one scenario.

    ``polluted_asns`` holds every AS whose RIB ends up pointing at the
    attacker (the attacker itself excluded). ``address_fraction`` is the
    share of allocated address space originated by polluted ASes — the
    paper's "% of the internet address space" headline metric — and is
    ``None`` when the lab has no address plan. ``claimed_path`` is the
    AS path the bogus announcement carried (claimed origin last);
    ``None`` means the attack never launched — a type-U replay or leak
    by an attacker that had no route to reuse.
    """

    scenario: HijackScenario
    polluted_asns: frozenset[int]
    blocked_asns: frozenset[int]
    address_fraction: float | None = None
    claimed_path: tuple[int, ...] | None = None

    @property
    def pollution_count(self) -> int:
        return len(self.polluted_asns)

    @property
    def succeeded(self) -> bool:
        """Did the hijack pollute anyone at all?"""
        return bool(self.polluted_asns)

    def polluted_within(self, asns: frozenset[int]) -> int:
        """Polluted count restricted to a region (Section VII's metric)."""
        return len(self.polluted_asns & asns)
