"""Hijack scenarios and their outcomes.

A scenario names the players and the announced bogus prefix. The paper's
primary workload is the **origin hijack** — the attacker announces exactly
the target's prefix, and routers choose between two origins for the same
NLRI. The **sub-prefix hijack** (mentioned throughout Sections VI–VIII) has
the attacker announce a more-specific slice; it propagates as a fresh
prefix with no legitimate competitor and steals traffic via longest-prefix
match, which is why only validation-based defenses can stop it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.prefixes.prefix import Prefix

__all__ = ["HijackKind", "HijackScenario", "AttackOutcome"]


class HijackKind(enum.Enum):
    ORIGIN = "origin"
    SUBPREFIX = "subprefix"


@dataclass(frozen=True)
class HijackScenario:
    """One attack: *attacker_asn* announces *prefix* owned by *target_asn*."""

    target_asn: int
    attacker_asn: int
    prefix: Prefix
    kind: HijackKind = HijackKind.ORIGIN

    def __post_init__(self) -> None:
        if self.target_asn == self.attacker_asn:
            raise ValueError("attacker and target must differ")


@dataclass(frozen=True)
class AttackOutcome:
    """Result of simulating one scenario.

    ``polluted_asns`` holds every AS whose RIB ends up pointing at the
    attacker (the attacker itself excluded). ``address_fraction`` is the
    share of allocated address space originated by polluted ASes — the
    paper's "% of the internet address space" headline metric — and is
    ``None`` when the lab has no address plan.
    """

    scenario: HijackScenario
    polluted_asns: frozenset[int]
    blocked_asns: frozenset[int]
    address_fraction: float | None = None

    @property
    def pollution_count(self) -> int:
        return len(self.polluted_asns)

    @property
    def succeeded(self) -> bool:
        """Did the hijack pollute anyone at all?"""
        return bool(self.polluted_asns)

    def polluted_within(self, asns: frozenset[int]) -> int:
        """Polluted count restricted to a region (Section VII's metric)."""
        return len(self.polluted_asns & asns)
