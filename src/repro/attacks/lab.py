"""The hijack laboratory: one facade over topology, routing and defense.

:class:`HijackLab` is the main entry point of the library. It compiles a
topology once, caches legitimate routing states per target (they are
attacker-independent, which is what makes the paper's 42,696-attacker
sweeps tractable), applies a :class:`~repro.defense.Defense`, and returns
:class:`~repro.attacks.scenario.AttackOutcome` objects ready for the
analysis layer.

    lab = HijackLab(generate_topology())
    outcome = lab.origin_hijack(target_asn=4000, attacker_asn=23)
    print(outcome.pollution_count)

Sweeps parallelize across a fork-based process pool: construct the lab
with ``workers=N`` (or ``workers=0`` for every available core) or pass
``workers=`` to an individual sweep call. Results are bit-identical to
the sequential path in the same order; see ``docs/performance.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.attacks.scenario import (
    AttackOutcome,
    HijackKind,
    HijackScenario,
    PathKind,
    synthetic_forged_path,
)
from repro.bgp.engine import RouteState, RoutingEngine
from repro.bgp.policy import PolicyConfig
from repro.bgp.simulator import BGPSimulator, PropagationReport
from repro.defense.deployment import Defense
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.parallel.cache import ConvergenceCache
from repro.parallel.executor import SweepExecutor
from repro.prefixes.addressing import AddressPlan
from repro.prefixes.prefix import Prefix
from repro.topology.asgraph import ASGraph
from repro.topology.classify import transit_asns
from repro.topology.generator import default_address_plan
from repro.topology.view import RoutingView
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.defense.strategies import DeploymentStrategy
    from repro.registry.roa import OriginAuthority

__all__ = ["HijackLab"]


class HijackLab:
    """Runs hijack scenarios against one topology under one defense."""

    def __init__(
        self,
        graph: ASGraph,
        *,
        plan: AddressPlan | None = None,
        policy: PolicyConfig | None = None,
        defense: Defense | None = None,
        seed: int = 0,
        workers: int = 1,
        cache: ConvergenceCache | None = None,
        validate: bool = False,
        metrics: Metrics | None = None,
        backend: str = "reference",
        batch_origins: int = 1,
    ) -> None:
        if batch_origins < 1:
            raise ValueError("batch_origins must be >= 1")
        self.graph = graph
        self.plan = plan if plan is not None else default_address_plan(graph, seed=seed)
        self.policy = policy or PolicyConfig()
        self.defense = defense or Defense()
        self.seed = seed
        self.workers = workers
        self.validate = validate
        self.backend = backend
        # Scenarios per fused converge_batch call (docs/performance.md,
        # "Batched multi-origin convergence"). 1 = the scalar per-scenario
        # path, byte-identical outcomes either way.
        self.batch_origins = batch_origins
        # One metrics sink flows through everything the lab drives —
        # engine convergences, cache lookups, executor runs, sweep spans
        # (see docs/performance.md); the default NULL_METRICS is a no-op.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.view = RoutingView.from_graph(graph)
        # validate=True turns on the runtime invariant checker after every
        # convergence and per-hit cache verification (see docs/testing.md);
        # the default path is unchanged.
        self.engine = RoutingEngine(
            self.view,
            self.policy,
            validate=validate,
            metrics=self.metrics,
            backend=backend,
        )
        self.cache = (
            cache
            if cache is not None
            else ConvergenceCache(verify=validate, metrics=self.metrics)
        )

    # -- configuration -----------------------------------------------------------

    def with_defense(self, defense: Defense) -> "HijackLab":
        """A lab sharing this one's topology/plan but a different defense.

        The convergence cache is shared state-free (legit routing does
        not depend on the defense, which only drops *bogus* routes), so the
        clone re-uses it — a deployment-ladder comparison converges each
        baseline exactly once across every rung.
        """
        clone = HijackLab.__new__(HijackLab)
        clone.graph = self.graph
        clone.plan = self.plan
        clone.policy = self.policy
        clone.defense = defense
        clone.seed = self.seed
        clone.workers = self.workers
        clone.validate = self.validate
        clone.backend = self.backend
        clone.batch_origins = self.batch_origins
        clone.metrics = self.metrics
        clone.view = self.view
        clone.engine = self.engine
        clone.cache = self.cache
        return clone

    # -- internals -----------------------------------------------------------------

    def _legitimate_state(self, target_node: int) -> RouteState:
        # A batched lab keys every baseline in the cache's *batched* key
        # space (cache entries computed by converge_batch never alias the
        # scalar ones — see docs/performance.md), so single lookups and
        # batched prewarms stay coherent within one lab.
        if self.batch_origins > 1:
            return self.cache.baseline_batch(self.engine, (target_node,))[0]
        return self.cache.baseline(self.engine, target_node)

    def _executor(self, workers: int | None) -> SweepExecutor:
        return SweepExecutor(
            self, workers=self.workers if workers is None else workers
        )

    def _first_hop_filtered(self, attacker_asn: int) -> bool:
        """Defensive stub filters stop a *stub* attacker's announcements to
        its providers (the attack can still leak through peer links)."""
        return self.defense.stub_filter and not self.graph.customers(attacker_asn)

    def claimed_path(self, scenario: HijackScenario) -> tuple[int, ...] | None:
        """The AS path the bogus announcement carries, claimed origin last.

        Forged claims (type-0/1/N) are static properties of the scenario.
        A type-U replay and a route leak reuse the path the attacker
        *actually learned* — resolved here against the target's cached
        legitimate state: the replayed tail is the attacker's received
        AS path (the attacker itself absent, as on the wire), and a leak
        is that same path with the leaker prepended. Returns ``None``
        when the attacker holds no route to reuse — the attack never
        launches.
        """
        static = scenario.static_claimed_path
        if static is not None:
            return static
        view = self.view
        target_node = view.node_of(scenario.target_asn)
        attacker_node = view.node_of(scenario.attacker_asn)
        legit = self._legitimate_state(target_node)
        if not legit.has_route(attacker_node):
            return None
        chain = legit.path_from(attacker_node)
        tail = tuple(
            scenario.target_asn if node == target_node else view.asn_of(node)
            for node in chain
        )
        if scenario.kind is HijackKind.ROUTE_LEAK:
            return (scenario.attacker_asn, *tail)
        return tail

    def run_scenario(self, scenario: HijackScenario) -> AttackOutcome:
        """Execute one scenario synchronously in this process.

        This is the unit of work the parallel executor distributes; it
        reads only immutable lab state plus the (shared, frozen)
        convergence cache, so concurrent execution is safe.
        """
        view = self.view
        target_node = view.node_of(scenario.target_asn)
        attacker_node = view.node_of(scenario.attacker_asn)
        if target_node == attacker_node:
            raise ValueError(
                "attacker and target collapse into one routing node "
                f"(sibling group) for AS{scenario.attacker_asn}/AS{scenario.target_asn}"
            )
        claimed = self.claimed_path(scenario)
        if claimed is None:
            # Nothing to replay/leak: the attack fizzles before launch.
            empty: frozenset[int] = frozenset()
            return AttackOutcome(
                scenario=scenario,
                polluted_asns=empty,
                blocked_asns=empty,
                address_fraction=self.plan.fraction_owned(empty),
                claimed_path=None,
            )
        blocked = self.defense.blocking_nodes(
            view, scenario.prefix, scenario.attacker_asn, claimed_path=claimed
        )
        first_hop = self._first_hop_filtered(scenario.attacker_asn)
        if scenario.kind in (HijackKind.ORIGIN, HijackKind.ROUTE_LEAK):
            # The bogus announcement competes with the legitimate route
            # for the same NLRI.
            base = self._legitimate_state(target_node)
        else:
            # A sub-prefix or squatted block is a brand-new NLRI: no
            # legitimate competitor exists, so the bogus announcement
            # converges on a clean state and wins everywhere it reaches.
            # Only blocking can contain it.
            base = None
        state = self.engine.converge(
            attacker_node,
            base=base,
            blocked=blocked,
            filter_first_hop_providers=first_hop,
            origin_length=len(claimed) - 1,
        )
        polluted_nodes = state.holders_of(attacker_node)
        polluted_asns = view.expand(polluted_nodes) - {scenario.attacker_asn}
        return AttackOutcome(
            scenario=scenario,
            polluted_asns=polluted_asns,
            blocked_asns=view.expand(blocked),
            address_fraction=self.plan.fraction_owned(polluted_asns),
            claimed_path=claimed,
        )

    def run_scenarios(
        self,
        scenarios: Iterable[HijackScenario],
        *,
        workers: int | None = None,
    ) -> list[AttackOutcome]:
        """Execute a batch of scenarios, optionally across worker processes.

        The returned list matches the input order exactly, for every
        ``workers`` value — parallel execution is an implementation detail,
        not an observable one.
        """
        return self._executor(workers).run(list(scenarios))

    def run_scenario_batch(
        self, scenarios: Sequence[HijackScenario]
    ) -> list[AttackOutcome]:
        """Execute a batch of scenarios through fused convergence passes.

        Outcome-identical to ``[run_scenario(s) for s in scenarios]`` in
        the same order — batching is a wall-clock knob, never a result
        knob. Scenarios sharing a base state (same target's legitimate
        baseline for origin/leak attacks, the clean state for
        sub-prefix/squat) are grouped and converged ``batch_origins`` at
        a time via :meth:`RoutingEngine.converge_batch
        <repro.bgp.engine.RoutingEngine.converge_batch>`. With
        ``batch_origins=1`` (the default lab) or a single scenario this
        is exactly the scalar loop.
        """
        scenarios = list(scenarios)
        if self.batch_origins <= 1 or len(scenarios) <= 1:
            return [self.run_scenario(scenario) for scenario in scenarios]
        view = self.view
        outcomes: list[AttackOutcome | None] = [None] * len(scenarios)
        # (index, scenario, attacker node, claimed path, blocked, first-hop)
        prepared: list[tuple[int, HijackScenario, int, tuple[int, ...], frozenset[int], bool]] = []
        groups: dict[int | None, list[int]] = {}
        for index, scenario in enumerate(scenarios):
            target_node = view.node_of(scenario.target_asn)
            attacker_node = view.node_of(scenario.attacker_asn)
            if target_node == attacker_node:
                raise ValueError(
                    "attacker and target collapse into one routing node "
                    f"(sibling group) for AS{scenario.attacker_asn}/AS{scenario.target_asn}"
                )
            claimed = self.claimed_path(scenario)
            if claimed is None:
                empty: frozenset[int] = frozenset()
                outcomes[index] = AttackOutcome(
                    scenario=scenario,
                    polluted_asns=empty,
                    blocked_asns=empty,
                    address_fraction=self.plan.fraction_owned(empty),
                    claimed_path=None,
                )
                continue
            blocked = self.defense.blocking_nodes(
                view, scenario.prefix, scenario.attacker_asn, claimed_path=claimed
            )
            first_hop = self._first_hop_filtered(scenario.attacker_asn)
            base_node = (
                target_node
                if scenario.kind in (HijackKind.ORIGIN, HijackKind.ROUTE_LEAK)
                else None
            )
            groups.setdefault(base_node, []).append(len(prepared))
            prepared.append(
                (index, scenario, attacker_node, claimed, blocked, first_hop)
            )
        for base_node, members in groups.items():
            base = self._legitimate_state(base_node) if base_node is not None else None
            for start in range(0, len(members), self.batch_origins):
                chunk = [prepared[member] for member in members[start:start + self.batch_origins]]
                states = self.engine.converge_batch(
                    [entry[2] for entry in chunk],
                    base=base,
                    blocked_sets=[entry[4] for entry in chunk],
                    first_hop_flags=[entry[5] for entry in chunk],
                    origin_lengths=[len(entry[3]) - 1 for entry in chunk],
                )
                for (index, scenario, attacker_node, claimed, blocked, _), state in zip(
                    chunk, states
                ):
                    polluted_nodes = state.holders_of(attacker_node)
                    polluted_asns = view.expand(polluted_nodes) - {scenario.attacker_asn}
                    outcomes[index] = AttackOutcome(
                        scenario=scenario,
                        polluted_asns=polluted_asns,
                        blocked_asns=view.expand(blocked),
                        address_fraction=self.plan.fraction_owned(polluted_asns),
                        claimed_path=claimed,
                    )
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    # -- single attacks ---------------------------------------------------------------

    def target_prefix(self, target_asn: int) -> Prefix:
        """The target's primary (largest) allocated prefix."""
        return self.plan.primary_prefix(target_asn)

    def attack_prefix(self, target_asn: int, kind: HijackKind) -> Prefix:
        """The prefix a *kind* attack on *target_asn* announces.

        Exact-prefix kinds (origin, route-leak) use the primary prefix;
        a sub-prefix hijack announces its first half; a squat announces
        the *last* half — modelling the allocated-but-unrouted slice the
        target never originates (ARTEMIS's squatting definition).
        """
        parent = self.target_prefix(target_asn)
        if kind in (HijackKind.ORIGIN, HijackKind.ROUTE_LEAK):
            return parent
        if parent.length + 1 > 32:
            raise ValueError(f"cannot split /{parent.length} for a {kind.value}")
        halves = list(parent.subnets(parent.length + 1))
        return halves[0] if kind is HijackKind.SUBPREFIX else halves[-1]

    def build_scenario(
        self,
        target_asn: int,
        attacker_asn: int,
        *,
        kind: HijackKind = HijackKind.ORIGIN,
        path_kind: PathKind = PathKind.TYPE_0,
        forged_depth: int = 1,
        forged_path: tuple[int, ...] | None = None,
        prefix: Prefix | None = None,
    ) -> HijackScenario:
        """Assemble one grid-cell scenario with the lab's address plan.

        For type-N without an explicit *forged_path* the claim is padded
        with private-use ASNs to *forged_depth* hops
        (:func:`~repro.attacks.scenario.synthetic_forged_path`).
        """
        if forged_path is None and path_kind is PathKind.TYPE_N:
            forged_path = synthetic_forged_path(
                attacker_asn, target_asn, forged_depth
            )
        return HijackScenario(
            target_asn=target_asn,
            attacker_asn=attacker_asn,
            prefix=prefix if prefix is not None else self.attack_prefix(target_asn, kind),
            kind=kind,
            path_kind=path_kind,
            forged_path=forged_path if forged_path is not None else (),
        )

    def origin_hijack(
        self, target_asn: int, attacker_asn: int, *, prefix: Prefix | None = None
    ) -> AttackOutcome:
        """Simulate the attacker announcing the target's own prefix."""
        scenario = HijackScenario(
            target_asn=target_asn,
            attacker_asn=attacker_asn,
            prefix=prefix if prefix is not None else self.target_prefix(target_asn),
            kind=HijackKind.ORIGIN,
        )
        return self.run_scenario(scenario)

    def subprefix_hijack(
        self,
        target_asn: int,
        attacker_asn: int,
        *,
        extra_bits: int = 1,
    ) -> AttackOutcome:
        """Simulate a more-specific hijack of the target's primary prefix."""
        parent = self.target_prefix(target_asn)
        if parent.length + extra_bits > 32:
            raise ValueError(f"cannot split /{parent.length} by {extra_bits} bits")
        subprefix = next(parent.subnets(parent.length + extra_bits))
        scenario = HijackScenario(
            target_asn=target_asn,
            attacker_asn=attacker_asn,
            prefix=subprefix,
            kind=HijackKind.SUBPREFIX,
        )
        return self.run_scenario(scenario)

    def squat_hijack(self, target_asn: int, attacker_asn: int) -> AttackOutcome:
        """Simulate the attacker squatting the target's unrouted slice."""
        return self.run_scenario(
            self.build_scenario(target_asn, attacker_asn, kind=HijackKind.SQUAT)
        )

    def route_leak(self, target_asn: int, attacker_asn: int) -> AttackOutcome:
        """Simulate the attacker leaking its learned route to the target."""
        return self.run_scenario(
            self.build_scenario(
                target_asn, attacker_asn, kind=HijackKind.ROUTE_LEAK
            )
        )

    def forged_path_hijack(
        self,
        target_asn: int,
        attacker_asn: int,
        *,
        kind: HijackKind = HijackKind.ORIGIN,
        depth: int = 1,
        forged_path: tuple[int, ...] | None = None,
    ) -> AttackOutcome:
        """Simulate a path-forgery attack (type-1 at depth 1, else type-N)."""
        path_kind = PathKind.TYPE_1 if depth == 1 and forged_path is None else PathKind.TYPE_N
        return self.run_scenario(
            self.build_scenario(
                target_asn,
                attacker_asn,
                kind=kind,
                path_kind=path_kind,
                forged_depth=depth,
                forged_path=forged_path,
            )
        )

    # -- sweeps -------------------------------------------------------------------------

    def attacker_pool(self, *, transit_only: bool = False) -> tuple[int, ...]:
        """Candidate attackers: everyone, or the paper's optimistic
        transit-only pool ("attacks now originate only from the transit
        ASes", Section IV)."""
        pool = transit_asns(self.graph) if transit_only else frozenset(self.graph.asns())
        return tuple(sorted(pool))

    def sweep_target(
        self,
        target_asn: int,
        *,
        attackers: Iterable[int] | None = None,
        transit_only: bool = False,
        sample: int | None = None,
        seed: int | None = None,
        workers: int | None = None,
        kind: HijackKind = HijackKind.ORIGIN,
        path_kind: PathKind = PathKind.TYPE_0,
        forged_depth: int = 1,
    ) -> dict[int, AttackOutcome]:
        """Attack one target from many attackers; the Fig. 2–6 workload.

        By default every other AS attacks once (the paper's worst-case
        sweep). ``sample`` draws a deterministic random subset — the
        benchmark harness uses it to keep wall-clock in check at identical
        curve shapes. ``workers`` overrides the lab's worker count for this
        sweep; outcome values are identical either way, keyed and ordered
        by attacker ASN. ``kind``/``path_kind``/``forged_depth`` select
        the attack-grid cell to sweep (default: the paper's type-0 origin
        hijack, byte-identical to the pre-taxonomy sweep).
        """
        if attackers is None:
            pool: Sequence[int] = self.attacker_pool(transit_only=transit_only)
        else:
            pool = tuple(sorted(set(attackers)))
        pool = tuple(
            asn
            for asn in pool
            if asn != target_asn
            and self.view.node_of(asn) != self.view.node_of(target_asn)
        )
        if sample is not None and sample < len(pool):
            rng = make_rng(self.seed if seed is None else seed, "sweep", target_asn)
            pool = tuple(sorted(rng.sample(pool, sample)))
        prefix = self.attack_prefix(target_asn, kind)
        scenarios = [
            self.build_scenario(
                target_asn,
                attacker_asn,
                kind=kind,
                path_kind=path_kind,
                forged_depth=forged_depth,
                prefix=prefix,
            )
            for attacker_asn in pool
        ]
        self.metrics.count("lab.sweeps")
        with self.metrics.span("lab.sweep_target"):
            results = self._executor(workers).run(scenarios)
        return {
            scenario.attacker_asn: outcome
            for scenario, outcome in zip(scenarios, results)
        }

    def sweep_deployments(
        self,
        target_asn: int,
        strategies: Sequence["DeploymentStrategy"],
        authority: "OriginAuthority | None",
        *,
        transit_only: bool = True,
        sample: int | None = None,
        seed: int | None = None,
    ) -> list[dict[int, AttackOutcome]]:
        """Sweep one target across a whole deployment ladder, warm-started.

        The Fig. 5/6 workload — one type-0 origin-hijack sweep per
        deployment rung — without a cold convergence per (attacker, rung)
        point: each attacker's state is copied from the target's
        legitimate baseline *once*, then every rung applies its blocked
        set in place via :meth:`RoutingEngine.converge_delta_batch
        <repro.bgp.engine.RoutingEngine.converge_delta_batch>` and is
        rewound through the undo journal before the next rung (adjacent
        deployment sets differ by a handful of ASes, so re-announcing
        over the reverted state is the whole warm start). Attacker pool
        and sampling are exactly :meth:`sweep_target`'s, so rung *i*'s
        outcome dict is item-identical to
        ``with_defense(Defense(strategy=strategies[i], authority=authority))
        .sweep_target(target_asn, ...)``.
        """
        pool: Sequence[int] = self.attacker_pool(transit_only=transit_only)
        target_node = self.view.node_of(target_asn)
        pool = tuple(
            asn
            for asn in pool
            if asn != target_asn and self.view.node_of(asn) != target_node
        )
        if sample is not None and sample < len(pool):
            rng = make_rng(self.seed if seed is None else seed, "sweep", target_asn)
            pool = tuple(sorted(rng.sample(pool, sample)))
        prefix = self.attack_prefix(target_asn, HijackKind.ORIGIN)
        defenses = [
            Defense(strategy=strategy, authority=authority)
            for strategy in strategies
        ]
        view = self.view
        legit = self._legitimate_state(target_node)
        results: list[dict[int, AttackOutcome]] = [{} for _ in defenses]
        batch = max(1, self.batch_origins)
        self.metrics.count("lab.deployment_sweeps")
        with self.metrics.span("lab.sweep_deployments"):
            for start in range(0, len(pool), batch):
                attackers = pool[start:start + batch]
                nodes = [view.node_of(asn) for asn in attackers]
                scenarios = [
                    self.build_scenario(target_asn, asn, prefix=prefix)
                    for asn in attackers
                ]
                states = [legit.copy_for(node) for node in nodes]
                for rung, defense in enumerate(defenses):
                    blocked_sets = [
                        defense.blocking_nodes(
                            view, prefix, asn, claimed_path=(asn,)
                        )
                        for asn in attackers
                    ]
                    first_hop_flags = [
                        defense.stub_filter and not self.graph.customers(asn)
                        for asn in attackers
                    ]
                    deltas = self.engine.converge_delta_batch(
                        states,
                        nodes,
                        blocked_sets=blocked_sets,
                        first_hop_flags=first_hop_flags,
                    )
                    for scenario, node, state, blocked in zip(
                        scenarios, nodes, states, blocked_sets
                    ):
                        polluted_asns = (
                            view.expand(state.holders_of(node))
                            - {scenario.attacker_asn}
                        )
                        results[rung][scenario.attacker_asn] = AttackOutcome(
                            scenario=scenario,
                            polluted_asns=polluted_asns,
                            blocked_asns=view.expand(blocked),
                            address_fraction=self.plan.fraction_owned(polluted_asns),
                            claimed_path=(scenario.attacker_asn,),
                        )
                    for state, delta in zip(states, deltas):
                        delta.revert(state)
        return results

    def random_attacks(
        self,
        count: int,
        *,
        transit_only: bool = True,
        seed: int | None = None,
        workers: int | None = None,
    ) -> list[AttackOutcome]:
        """Random attacker/target pairs: the Fig. 7 detection workload
        ("8000 random simulated IP hijacks… chosen from the transit ASes").

        Pair generation is purely RNG-driven (it never looks at routing
        outcomes), so the drawn workload — and the returned outcome list —
        is identical for every ``workers`` setting.
        """
        pool = self.attacker_pool(transit_only=transit_only)
        rng = make_rng(self.seed if seed is None else seed, "random-attacks", count)
        scenarios: list[HijackScenario] = []
        while len(scenarios) < count:
            target_asn, attacker_asn = rng.sample(pool, 2)
            if self.view.node_of(target_asn) == self.view.node_of(attacker_asn):
                continue
            scenarios.append(
                HijackScenario(
                    target_asn=target_asn,
                    attacker_asn=attacker_asn,
                    prefix=self.target_prefix(target_asn),
                    kind=HijackKind.ORIGIN,
                )
            )
        self.metrics.count("lab.random_attack_batches")
        with self.metrics.span("lab.random_attacks"):
            return self._executor(workers).run(scenarios)

    # -- observable propagation (Fig. 1) ---------------------------------------------

    def animate(
        self, target_asn: int, attacker_asn: int
    ) -> tuple[PropagationReport, PropagationReport]:
        """Run the message simulator with event recording for both phases.

        Returns the legitimate and attack propagation reports whose
        per-generation events drive the polar visualisation.
        """
        prefix = self.target_prefix(target_asn)
        simulator = BGPSimulator(
            self.view,
            self.policy,
            validator=self.defense.validator(self.view, self.plan),
            metrics=self.metrics,
        )
        legit = simulator.announce(
            self.view.node_of(target_asn), prefix, record_events=True
        )
        attack = simulator.announce(
            self.view.node_of(attacker_asn), prefix, record_events=True
        )
        return legit, attack
