"""The hijack laboratory: one facade over topology, routing and defense.

:class:`HijackLab` is the main entry point of the library. It compiles a
topology once, caches legitimate routing states per target (they are
attacker-independent, which is what makes the paper's 42,696-attacker
sweeps tractable), applies a :class:`~repro.defense.Defense`, and returns
:class:`~repro.attacks.scenario.AttackOutcome` objects ready for the
analysis layer.

    lab = HijackLab(generate_topology())
    outcome = lab.origin_hijack(target_asn=4000, attacker_asn=23)
    print(outcome.pollution_count)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from repro.attacks.scenario import AttackOutcome, HijackKind, HijackScenario
from repro.bgp.engine import RouteState, RoutingEngine
from repro.bgp.policy import PolicyConfig
from repro.bgp.simulator import BGPSimulator, PropagationReport
from repro.defense.deployment import Defense
from repro.prefixes.addressing import AddressPlan
from repro.prefixes.prefix import Prefix
from repro.topology.asgraph import ASGraph
from repro.topology.classify import transit_asns
from repro.topology.generator import default_address_plan
from repro.topology.view import RoutingView
from repro.util.rng import make_rng

__all__ = ["HijackLab"]

_LEGIT_CACHE_SIZE = 64


class HijackLab:
    """Runs hijack scenarios against one topology under one defense."""

    def __init__(
        self,
        graph: ASGraph,
        *,
        plan: AddressPlan | None = None,
        policy: PolicyConfig | None = None,
        defense: Defense | None = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.plan = plan if plan is not None else default_address_plan(graph, seed=seed)
        self.policy = policy or PolicyConfig()
        self.defense = defense or Defense()
        self.seed = seed
        self.view = RoutingView.from_graph(graph)
        self.engine = RoutingEngine(self.view, self.policy)
        self._legit_cache: OrderedDict[int, RouteState] = OrderedDict()

    # -- configuration -----------------------------------------------------------

    def with_defense(self, defense: Defense) -> "HijackLab":
        """A lab sharing this one's topology/plan but a different defense.

        The legitimate-state cache is shared state-free (legit routing does
        not depend on the defense, which only drops *bogus* routes), so the
        clone re-uses it.
        """
        clone = HijackLab.__new__(HijackLab)
        clone.graph = self.graph
        clone.plan = self.plan
        clone.policy = self.policy
        clone.defense = defense
        clone.seed = self.seed
        clone.view = self.view
        clone.engine = self.engine
        clone._legit_cache = self._legit_cache
        return clone

    # -- internals -----------------------------------------------------------------

    def _legitimate_state(self, target_node: int) -> RouteState:
        cached = self._legit_cache.get(target_node)
        if cached is not None:
            self._legit_cache.move_to_end(target_node)
            return cached
        state = self.engine.converge(target_node)
        self._legit_cache[target_node] = state
        if len(self._legit_cache) > _LEGIT_CACHE_SIZE:
            self._legit_cache.popitem(last=False)
        return state

    def _first_hop_filtered(self, attacker_asn: int) -> bool:
        """Defensive stub filters stop a *stub* attacker's announcements to
        its providers (the attack can still leak through peer links)."""
        return self.defense.stub_filter and not self.graph.customers(attacker_asn)

    def _run(self, scenario: HijackScenario) -> AttackOutcome:
        view = self.view
        target_node = view.node_of(scenario.target_asn)
        attacker_node = view.node_of(scenario.attacker_asn)
        if target_node == attacker_node:
            raise ValueError(
                "attacker and target collapse into one routing node "
                f"(sibling group) for AS{scenario.attacker_asn}/AS{scenario.target_asn}"
            )
        blocked = self.defense.blocking_nodes(
            view, scenario.prefix, scenario.attacker_asn
        )
        first_hop = self._first_hop_filtered(scenario.attacker_asn)
        if scenario.kind is HijackKind.ORIGIN:
            result = self.engine.hijack(
                target_node,
                attacker_node,
                legitimate=self._legitimate_state(target_node),
                blocked=blocked,
                filter_first_hop_providers=first_hop,
            )
            polluted_nodes = result.polluted_nodes
        else:
            # A sub-prefix is a brand-new NLRI: no legitimate competitor
            # exists, so the bogus announcement converges on a clean state
            # and wins everywhere it reaches. Only blocking can contain it.
            state = self.engine.converge(
                attacker_node,
                blocked=blocked,
                filter_first_hop_providers=first_hop,
            )
            polluted_nodes = state.holders_of(attacker_node)
        polluted_asns = view.expand(polluted_nodes) - {scenario.attacker_asn}
        return AttackOutcome(
            scenario=scenario,
            polluted_asns=polluted_asns,
            blocked_asns=view.expand(blocked),
            address_fraction=self.plan.fraction_owned(polluted_asns),
        )

    # -- single attacks ---------------------------------------------------------------

    def target_prefix(self, target_asn: int) -> Prefix:
        """The target's primary (largest) allocated prefix."""
        return self.plan.primary_prefix(target_asn)

    def origin_hijack(
        self, target_asn: int, attacker_asn: int, *, prefix: Prefix | None = None
    ) -> AttackOutcome:
        """Simulate the attacker announcing the target's own prefix."""
        scenario = HijackScenario(
            target_asn=target_asn,
            attacker_asn=attacker_asn,
            prefix=prefix if prefix is not None else self.target_prefix(target_asn),
            kind=HijackKind.ORIGIN,
        )
        return self._run(scenario)

    def subprefix_hijack(
        self,
        target_asn: int,
        attacker_asn: int,
        *,
        extra_bits: int = 1,
    ) -> AttackOutcome:
        """Simulate a more-specific hijack of the target's primary prefix."""
        parent = self.target_prefix(target_asn)
        if parent.length + extra_bits > 32:
            raise ValueError(f"cannot split /{parent.length} by {extra_bits} bits")
        subprefix = next(parent.subnets(parent.length + extra_bits))
        scenario = HijackScenario(
            target_asn=target_asn,
            attacker_asn=attacker_asn,
            prefix=subprefix,
            kind=HijackKind.SUBPREFIX,
        )
        return self._run(scenario)

    # -- sweeps -------------------------------------------------------------------------

    def attacker_pool(self, *, transit_only: bool = False) -> tuple[int, ...]:
        """Candidate attackers: everyone, or the paper's optimistic
        transit-only pool ("attacks now originate only from the transit
        ASes", Section IV)."""
        pool = transit_asns(self.graph) if transit_only else frozenset(self.graph.asns())
        return tuple(sorted(pool))

    def sweep_target(
        self,
        target_asn: int,
        *,
        attackers: Iterable[int] | None = None,
        transit_only: bool = False,
        sample: int | None = None,
        seed: int | None = None,
    ) -> dict[int, AttackOutcome]:
        """Attack one target from many attackers; the Fig. 2–6 workload.

        By default every other AS attacks once (the paper's worst-case
        sweep). ``sample`` draws a deterministic random subset — the
        benchmark harness uses it to keep wall-clock in check at identical
        curve shapes.
        """
        if attackers is None:
            pool: Sequence[int] = self.attacker_pool(transit_only=transit_only)
        else:
            pool = tuple(sorted(set(attackers)))
        pool = tuple(
            asn
            for asn in pool
            if asn != target_asn
            and self.view.node_of(asn) != self.view.node_of(target_asn)
        )
        if sample is not None and sample < len(pool):
            rng = make_rng(self.seed if seed is None else seed, "sweep", target_asn)
            pool = tuple(sorted(rng.sample(pool, sample)))
        prefix = self.target_prefix(target_asn)
        outcomes: dict[int, AttackOutcome] = {}
        for attacker_asn in pool:
            outcomes[attacker_asn] = self.origin_hijack(
                target_asn, attacker_asn, prefix=prefix
            )
        return outcomes

    def random_attacks(
        self,
        count: int,
        *,
        transit_only: bool = True,
        seed: int | None = None,
    ) -> list[AttackOutcome]:
        """Random attacker/target pairs: the Fig. 7 detection workload
        ("8000 random simulated IP hijacks… chosen from the transit ASes")."""
        pool = self.attacker_pool(transit_only=transit_only)
        rng = make_rng(self.seed if seed is None else seed, "random-attacks", count)
        outcomes: list[AttackOutcome] = []
        while len(outcomes) < count:
            target_asn, attacker_asn = rng.sample(pool, 2)
            if self.view.node_of(target_asn) == self.view.node_of(attacker_asn):
                continue
            outcomes.append(self.origin_hijack(target_asn, attacker_asn))
        return outcomes

    # -- observable propagation (Fig. 1) ---------------------------------------------

    def animate(
        self, target_asn: int, attacker_asn: int
    ) -> tuple[PropagationReport, PropagationReport]:
        """Run the message simulator with event recording for both phases.

        Returns the legitimate and attack propagation reports whose
        per-generation events drive the polar visualisation.
        """
        prefix = self.target_prefix(target_asn)
        simulator = BGPSimulator(
            self.view,
            self.policy,
            validator=self.defense.validator(self.view, self.plan),
        )
        legit = simulator.announce(
            self.view.node_of(target_asn), prefix, record_events=True
        )
        attack = simulator.announce(
            self.view.node_of(attacker_asn), prefix, record_events=True
        )
        return legit, attack
