"""Hijack scenarios, outcomes, the hijack laboratory and data-plane traces."""

from repro.attacks.dataplane import (
    DataplaneReport,
    Fate,
    ForwardingTrace,
    dataplane_capture,
    trace_forwarding,
)
from repro.attacks.lab import HijackLab
from repro.attacks.scenario import (
    AttackOutcome,
    HijackKind,
    HijackScenario,
    PathKind,
    synthetic_forged_path,
)

__all__ = [
    "AttackOutcome",
    "DataplaneReport",
    "Fate",
    "ForwardingTrace",
    "HijackKind",
    "HijackLab",
    "HijackScenario",
    "PathKind",
    "dataplane_capture",
    "synthetic_forged_path",
    "trace_forwarding",
]
