"""Hijack scenarios, outcomes, the hijack laboratory and data-plane traces."""

from repro.attacks.dataplane import (
    DataplaneReport,
    Fate,
    ForwardingTrace,
    dataplane_capture,
    trace_forwarding,
)
from repro.attacks.lab import HijackLab
from repro.attacks.scenario import AttackOutcome, HijackKind, HijackScenario

__all__ = [
    "AttackOutcome",
    "DataplaneReport",
    "Fate",
    "ForwardingTrace",
    "HijackKind",
    "HijackLab",
    "HijackScenario",
    "dataplane_capture",
    "trace_forwarding",
]
