"""Data-plane capture: where does the traffic actually go?

The paper counts *control-plane* pollution — ASes whose RIB holds the
bogus route. The data plane can be worse: an AS may keep its legitimate
RIB entry while its next-hop (or a later hop) was polluted, so its packets
still end up at the hijacker. In the announce-only model this genuinely
happens (entries go stale when upstreams switch after exporting), and
real-world hijack post-mortems measure exactly this "traffic capture".

:func:`trace_forwarding` walks the forwarding chain hop by hop, and
:func:`dataplane_capture` classifies every AS's traffic toward the
hijacked prefix as DELIVERED (reaches the rightful origin), CAPTURED
(reaches the attacker), or LOOPING/STUCK (a casualty of inconsistent
state). Control-plane-polluted ASes forward into the polluted mesh and
(loops aside) terminate at the attacker; the interesting readout is the
*hidden* capture — ASes whose RIB still looks clean but whose packets are
captured anyway, damage an RIB-based pollution count misses entirely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.bgp.engine import HijackResult

__all__ = ["Fate", "ForwardingTrace", "trace_forwarding", "DataplaneReport", "dataplane_capture"]


class Fate(enum.Enum):
    DELIVERED = "delivered"  # reaches the legitimate origin
    CAPTURED = "captured"  # reaches the attacker
    LOOPING = "looping"  # forwarding loop (inconsistent stale state)
    STUCK = "stuck"  # no route at some hop


@dataclass(frozen=True)
class ForwardingTrace:
    """One AS's forwarding path toward the contested prefix."""

    source: int
    fate: Fate
    hops: tuple[int, ...]

    @property
    def hop_count(self) -> int:
        return len(self.hops)


def trace_forwarding(result: HijackResult, source: int) -> ForwardingTrace:
    """Follow final-state next-hops from *source* until a terminal.

    Each hop forwards per its own (possibly stale) RIB entry; the trace
    terminates at the attacker, the legitimate origin, a routeless hop, or
    when a node repeats (loop).
    """
    state = result.final
    hops: list[int] = []
    seen = {source}
    current = source
    while True:
        if current == result.attacker:
            return ForwardingTrace(source, Fate.CAPTURED, tuple(hops))
        if current == result.target:
            return ForwardingTrace(source, Fate.DELIVERED, tuple(hops))
        if not state.has_route(current):
            return ForwardingTrace(source, Fate.STUCK, tuple(hops))
        next_hop = state.parent[current]
        if next_hop < 0:
            # An origin-class entry at a non-origin node cannot happen;
            # defensive: treat as stuck.
            return ForwardingTrace(source, Fate.STUCK, tuple(hops))
        if next_hop in seen:
            return ForwardingTrace(source, Fate.LOOPING, (*hops, next_hop))
        seen.add(next_hop)
        hops.append(next_hop)
        current = next_hop


@dataclass(frozen=True)
class DataplaneReport:
    """Fates of every AS's traffic toward the hijacked prefix."""

    target: int
    attacker: int
    delivered: frozenset[int]
    captured: frozenset[int]
    looping: frozenset[int]
    stuck: frozenset[int]
    control_plane_polluted: frozenset[int]

    @property
    def captured_count(self) -> int:
        return len(self.captured)

    @property
    def hidden_capture(self) -> frozenset[int]:
        """ASes whose RIB still looks legitimate but whose traffic lands at
        the attacker anyway — invisible to control-plane pollution counts."""
        return self.captured - self.control_plane_polluted

    def capture_inflation(self) -> float:
        """Data-plane capture relative to control-plane pollution (≥ 1)."""
        polluted = len(self.control_plane_polluted)
        if polluted == 0:
            return 1.0 if not self.captured else float("inf")
        return len(self.captured) / polluted


def dataplane_capture(result: HijackResult) -> DataplaneReport:
    """Trace every node and aggregate traffic fates for one hijack."""
    buckets: dict[Fate, set[int]] = {fate: set() for fate in Fate}
    node_count = len(result.final.cls)
    for node in range(node_count):
        if node in (result.attacker, result.target):
            continue
        trace = trace_forwarding(result, node)
        buckets[trace.fate].add(node)
    return DataplaneReport(
        target=result.target,
        attacker=result.attacker,
        delivered=frozenset(buckets[Fate.DELIVERED]),
        captured=frozenset(buckets[Fate.CAPTURED]),
        looping=frozenset(buckets[Fate.LOOPING]),
        stuck=frozenset(buckets[Fate.STUCK]),
        control_plane_polluted=result.polluted_nodes,
    )
