"""The parallel attack-sweep executor.

Shards a batch of :class:`~repro.attacks.scenario.HijackScenario` across a
fork-based process pool. The design leans on three facts:

* the expensive inputs — the compiled :class:`RoutingView`, the
  :class:`RoutingEngine`, the address plan and any pre-warmed baseline
  states — are **immutable during a sweep**, so ``fork`` shares them with
  every worker through copy-on-write memory: nothing is pickled per task
  except the scenario tuples going in and the outcomes coming back;
* each scenario is computed independently by pure-function machinery, so
  results are **bit-identical to the sequential path** and the output
  order is simply the input order, regardless of worker count or chunk
  boundaries (enforced by ``tests/integration/test_engine_equivalence.py``);
* clean-baseline convergence is attacker-independent, so the parent
  **pre-warms the convergence cache** once per distinct target before
  forking — workers inherit the baselines instead of each re-converging
  them.

When ``workers <= 1``, the platform lacks ``fork`` (e.g. Windows/macOS
spawn-only configurations), or the batch is trivially small, the executor
transparently degrades to the in-process sequential loop — same results,
no pool overhead.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import TYPE_CHECKING, Sequence

from repro.obs.metrics import NULL_METRICS, Metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (lab imports us)
    from repro.attacks.lab import HijackLab
    from repro.attacks.scenario import AttackOutcome, HijackScenario

__all__ = ["SweepExecutor", "fork_available", "resolve_workers"]

# Minimum batch size before a pool is worth its setup cost.
_MIN_PARALLEL_SCENARIOS = 8

# Set in the parent immediately before forking the pool; workers inherit
# it (with the warm caches it carries) through copy-on-write memory.
_WORKER_LAB: "HijackLab | None" = None


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` request: ``None``/1 → sequential, 0 → all
    available cores, otherwise the requested count."""
    if workers is None:
        return 1
    if workers == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _run_chunk(
    chunk: tuple[HijackScenario, ...],
) -> tuple[float, list[AttackOutcome]]:
    """Execute one chunk in a worker; ships its busy time back with the
    results so the parent can account for work done across the fork
    boundary (worker-side metrics objects are copy-on-write copies whose
    increments the parent never sees)."""
    lab = _WORKER_LAB
    assert lab is not None, "worker forked without a lab installed"
    start = time.perf_counter()
    # run_scenario_batch degrades to the scalar per-scenario loop unless
    # the lab was built with batch_origins > 1 — outcomes are identical
    # either way, so workers and the sequential path share one call site.
    outcomes = lab.run_scenario_batch(chunk)
    return time.perf_counter() - start, outcomes


class SweepExecutor:
    """Runs scenario batches for one lab, in-process or across a pool.

    ``metrics`` (default: the lab's sink) receives ``executor.*``
    counters and spans — tasks/chunks executed, per-chunk busy time,
    mean task latency, and pool utilization (busy-time ÷ wall-clock ×
    workers) for parallel runs.
    """

    def __init__(
        self,
        lab: "HijackLab",
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self.lab = lab
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        if metrics is None:
            metrics = getattr(lab, "metrics", None)
        self.metrics = metrics if metrics is not None else NULL_METRICS

    # -- internals ---------------------------------------------------------

    def _chunks(
        self, scenarios: Sequence[HijackScenario], workers: int
    ) -> list[tuple[HijackScenario, ...]]:
        if self.chunk_size is not None:
            size = max(1, self.chunk_size)
        else:
            # Small enough to keep per-result memory bounded and the pool
            # load-balanced, large enough to amortize pickling.
            size = max(1, min(64, -(-len(scenarios) // (workers * 8))))
        return [
            tuple(scenarios[start : start + size])
            for start in range(0, len(scenarios), size)
        ]

    def _prewarm(self, scenarios: Sequence[HijackScenario]) -> None:
        """Converge each baseline-needing target once, in the parent.

        Baselines land frozen in the lab's convergence cache, which forked
        workers then share copy-on-write. Bounded by the cache capacity:
        past that, extra pre-warming would only evict what was just
        computed, so late targets are left for the workers. A scenario
        needs the target baseline when its bogus route competes with the
        legitimate one (exact-prefix, route leaks) or when its claimed
        path is read off the legitimate state (type-U replays) — the
        scenario's ``needs_baseline`` property.
        """
        budget = self.lab.cache.capacity
        seen: set[int] = set()
        for scenario in scenarios:
            if not scenario.needs_baseline:
                continue
            node = self.lab.view.node_of(scenario.target_asn)
            if node in seen:
                continue
            if len(seen) >= budget:
                break
            seen.add(node)
            self.lab._legitimate_state(node)

    # -- public API --------------------------------------------------------

    def run(self, scenarios: Sequence[HijackScenario]) -> list[AttackOutcome]:
        """Execute every scenario; results are returned in input order."""
        metrics = self.metrics
        workers = min(self.workers, len(scenarios))
        metrics.count("executor.runs")
        metrics.count("executor.tasks", len(scenarios))
        if (
            workers <= 1
            or not fork_available()
            or len(scenarios) < _MIN_PARALLEL_SCENARIOS
        ):
            metrics.gauge("executor.workers", 1)
            with metrics.span("executor.run"):
                return self.lab.run_scenario_batch(list(scenarios))

        global _WORKER_LAB
        start = time.perf_counter()
        with metrics.span("executor.prewarm"):
            self._prewarm(scenarios)
        chunks = self._chunks(scenarios, workers)
        context = multiprocessing.get_context("fork")
        _WORKER_LAB = self.lab
        busy_total = 0.0
        try:
            with context.Pool(processes=workers) as pool:
                outcomes: list[AttackOutcome] = []
                # imap (not imap_unordered) preserves submission order, and
                # only `workers` chunks are in flight at a time, so peak
                # memory stays bounded by outcomes + a few chunks.
                for busy_s, chunk_outcomes in pool.imap(_run_chunk, chunks):
                    busy_total += busy_s
                    metrics.observe("executor.chunk", busy_s)
                    outcomes.extend(chunk_outcomes)
        finally:
            _WORKER_LAB = None
        wall_s = time.perf_counter() - start
        metrics.observe("executor.run", wall_s)
        if metrics.enabled:
            metrics.count("executor.chunks", len(chunks))
            metrics.gauge("executor.workers", workers)
            metrics.gauge("executor.task_latency_s", busy_total / len(scenarios))
            if wall_s > 0:
                metrics.gauge(
                    "executor.utilization",
                    min(1.0, busy_total / (wall_s * workers)),
                )
        return outcomes
