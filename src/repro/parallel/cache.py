"""Memoized clean-baseline convergence.

Every origin hijack is two convergences: the legitimate origin over a
clean network, then the attacker on top of that state. The legitimate
half depends only on *(topology, policy, origin)* — never on the
attacker, the defense, or the prefix — so across the paper's workloads
(42,696-attacker sweeps, 8,000 random detection attacks, a sweep per
deployment rung) the same baselines recur constantly.

:class:`ConvergenceCache` memoizes those baselines under a key that is
*content-derived*: a BLAKE2 digest of the compiled
:class:`~repro.topology.view.RoutingView` adjacency plus the
:class:`~repro.bgp.policy.PolicyConfig` fields. Handing the same cache to
labs over different topologies or policies is therefore always safe —
entries can never be confused, only evicted. Cached states are
:meth:`frozen <repro.bgp.engine.RouteState.freeze>` on insert, so a buggy
caller that tries to write into a shared baseline fails loudly, and an
optional ``verify`` mode re-checksums entries on every hit as a belt-and-
braces mutation detector.

The cache is fork-friendly by design: a parent process that pre-warms it
before creating a worker pool shares every baseline with the workers
through copy-on-write memory, which is what makes the parallel sweep
executor cheap (see :mod:`repro.parallel.executor`).
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Sequence

from repro.bgp.engine import RouteState, RoutingEngine
from repro.bgp.policy import PolicyConfig
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.topology.view import RoutingView

__all__ = ["CacheStats", "ConvergenceCache", "context_digest"]

# Digest memo keyed by object id (RoutingView holds a dict, so it is not
# hashable); a weakref callback evicts entries when the view is collected,
# which also guards against id reuse.
_VIEW_DIGESTS: dict[int, tuple["weakref.ref[RoutingView]", str]] = {}


def _view_digest(view: RoutingView) -> str:
    """Content digest of the compiled adjacency (memoized per object)."""
    key = id(view)
    entry = _VIEW_DIGESTS.get(key)
    if entry is not None and entry[0]() is view:
        return entry[1]
    digest = hashlib.blake2b(digest_size=16)
    for adjacency in (view.customers, view.peers, view.providers, view.members):
        digest.update(b"#")
        for neighbors in adjacency:
            digest.update(",".join(map(str, neighbors)).encode())
            digest.update(b";")
    digest.update("".join("1" if flag else "0" for flag in view.is_tier1).encode())
    value = digest.hexdigest()
    _VIEW_DIGESTS[key] = (
        weakref.ref(view, lambda _ref, key=key: _VIEW_DIGESTS.pop(key, None)),
        value,
    )
    return value


def _policy_digest(policy: PolicyConfig) -> str:
    parts = [
        f"{field.name}={getattr(policy, field.name)!r}" for field in fields(policy)
    ]
    return hashlib.blake2b("|".join(parts).encode(), digest_size=8).hexdigest()


def context_digest(
    view: RoutingView,
    policy: PolicyConfig,
    backend: str = "reference",
    batched: bool = False,
) -> str:
    """The cache-key prefix identifying one (topology, policy, backend,
    batch-shape) context.

    The backend is part of the key even though both kernels are
    checksum-identical by contract: a cached state must always be
    attributable to the engine configuration that produced it, so a
    backend regression can never hide behind a warm cache (a backend
    switch is a cold start, by design — see the regression test in
    ``tests/test_parallel_cache.py``). ``batched`` extends the same rule
    to the convergence *shape*: states computed through
    :meth:`RoutingEngine.converge_batch
    <repro.bgp.engine.RoutingEngine.converge_batch>` live in their own
    key space and can never alias scalar single-origin entries (nor vice
    versa), so a batched-kernel regression is equally unable to hide.
    The key records the shape *class*, not the batch width — the set of
    origins a batched miss converges together depends on transient cache
    state, so an exact-K key could never be reproduced at lookup time.
    """
    shape = ":batched" if batched else ""
    return f"{_view_digest(view)}:{_policy_digest(policy)}:{backend}{shape}"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class ConvergenceCache:
    """LRU cache of clean converged baselines, keyed by content digest.

    ``capacity`` bounds the number of retained states (each is four
    arrays of topology size, so the default keeps a 4,270-AS topology's
    cache around ~70 MB at the very worst). ``verify=True`` re-checksums
    each entry on every hit and raises if a cached baseline was mutated
    since insertion — cheap insurance for long-running services, off by
    default because :meth:`RouteState.freeze` already blocks in-place
    writes. ``metrics`` mirrors hit/miss/insert/eviction counts into a
    :class:`repro.obs.Metrics` sink (``cache.*`` counters) alongside the
    always-on local :class:`CacheStats`.
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        verify: bool = False,
        metrics: Metrics | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.verify = verify
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple[str, int], tuple[RouteState, str | None]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def entries(self) -> list[tuple[tuple[str, int], tuple[RouteState, str | None]]]:
        """Snapshot of ``((context, origin), (state, checksum))`` pairs.

        The read surface for coherence audits
        (:func:`repro.oracle.invariants.check_cache_coherence`); the
        checksum is the content digest recorded at insert time.
        """
        return list(self._entries.items())

    def verify_coherence(self) -> None:
        """Audit every cached baseline: frozen and unmutated since insert.

        Raises :class:`repro.oracle.invariants.InvariantViolation` on the
        first incoherent entry. Unlike ``verify=True`` (which re-checks
        one entry per hit), this sweeps the whole cache — the right tool
        after a parallel sweep or before persisting results.
        """
        from repro.oracle.invariants import check_cache_coherence

        check_cache_coherence(self)

    def contains(
        self, engine: RoutingEngine, origin: int, *, batched: bool = False
    ) -> bool:
        return (
            context_digest(engine.view, engine.policy, engine.backend, batched),
            origin,
        ) in self._entries

    def baseline(self, engine: RoutingEngine, origin: int) -> RouteState:
        """The clean converged state for *origin* under *engine*'s context.

        Computes and memoizes on first use; returned states are frozen and
        must be treated as immutable (run hijack passes *on top of* them
        via ``converge(..., base=state)``, which copies).
        """
        key = (context_digest(engine.view, engine.policy, engine.backend), origin)
        entry = self._entries.get(key)
        if entry is not None:
            state, inserted_checksum = entry
            if self.verify and inserted_checksum != state.checksum():
                raise RuntimeError(
                    f"cached baseline for origin {origin} was mutated in place"
                )
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.metrics.count("cache.hits")
            return state
        self.stats.misses += 1
        self.metrics.count("cache.misses")
        state = engine.converge(origin).freeze()
        # The checksum is always recorded (one digest per distinct origin
        # is noise next to the convergence itself); ``verify`` only
        # controls whether every *hit* re-checks it.
        self._entries[key] = (state, state.checksum())
        self.metrics.count("cache.inserts")
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self.metrics.count("cache.evictions")
        return state

    def baseline_batch(
        self, engine: RoutingEngine, origins: "Sequence[int]"
    ) -> list[RouteState]:
        """Clean converged states for several origins, one fused miss pass.

        The batched analogue of :meth:`baseline`: hits are served from
        the cache's *batched* key space
        (``context_digest(..., batched=True)`` — scalar entries never
        alias, see :func:`context_digest`), and every miss in the request
        is converged in a single :meth:`RoutingEngine.converge_batch
        <repro.bgp.engine.RoutingEngine.converge_batch>` call before
        being frozen and inserted. Returns the states in request order;
        duplicate origins share one entry.
        """
        context = context_digest(engine.view, engine.policy, engine.backend, True)
        found: dict[int, RouteState] = {}
        missing: list[int] = []
        for origin in origins:
            if origin in found or origin in missing:
                continue
            key = (context, origin)
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                self.metrics.count("cache.misses")
                missing.append(origin)
                continue
            state, inserted_checksum = entry
            if self.verify and inserted_checksum != state.checksum():
                raise RuntimeError(
                    f"cached baseline for origin {origin} was mutated in place"
                )
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.metrics.count("cache.hits")
            found[origin] = state
        if missing:
            for origin, state in zip(missing, engine.converge_batch(missing)):
                state.freeze()
                self._entries[(context, origin)] = (state, state.checksum())
                self.metrics.count("cache.inserts")
                found[origin] = state
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                self.metrics.count("cache.evictions")
        return [found[origin] for origin in origins]
