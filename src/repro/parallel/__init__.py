"""Parallel sweep execution and convergence caching.

The paper's experiments are embarrassingly parallel — every attack in a
sweep is independent — and half of every attack (the legitimate
baseline convergence) is shared across attacks. This package exploits
both: :class:`ConvergenceCache` memoizes clean baselines per
(topology digest, policy, origin), and :class:`SweepExecutor` fans
scenario batches across a fork-based process pool with deterministic
result ordering. ``docs/performance.md`` describes the design and its
guarantees.
"""

from repro.parallel.cache import CacheStats, ConvergenceCache, context_digest
from repro.parallel.executor import SweepExecutor, fork_available, resolve_workers

__all__ = [
    "CacheStats",
    "ConvergenceCache",
    "SweepExecutor",
    "context_digest",
    "fork_available",
    "resolve_workers",
]
