"""Detector-deployment comparison (Section VI, Fig. 7 and its tables).

Runs the paper's detection experiment end to end: generate a shared
workload of random transit-pair hijacks, evaluate each probe
configuration against it, and package the Fig. 7 histograms, the
miss-rate summaries and the "top undetected attacks" tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.attacks.lab import HijackLab
from repro.attacks.scenario import AttackOutcome
from repro.detection.analysis import DetectionStudy
from repro.detection.detector import HijackDetector
from repro.detection.probes import (
    ProbeSet,
    bgpmon_like_probes,
    tier1_probes,
    top_degree_probes,
)
from repro.registry.roa import OriginAuthority

__all__ = ["DetectorComparison", "paper_probe_sets", "compare_detectors"]


def paper_probe_sets(lab: HijackLab, *, seed: int = 0) -> list[ProbeSet]:
    """The three Fig. 7 configurations: 17 tier-1s, 24 BGPmon-like
    peers, and the 62 highest-degree ASes."""
    graph = lab.graph
    return [
        tier1_probes(graph),
        bgpmon_like_probes(graph, count=24, seed=seed),
        top_degree_probes(graph, count=62),
    ]


@dataclass(frozen=True)
class DetectorComparison:
    """Studies of several configurations over one shared workload."""

    studies: tuple[DetectionStudy, ...]
    workload_size: int

    def miss_rates(self) -> dict[str, float]:
        return {
            study.detector.probes.name: study.miss_rate()
            for study in self.studies
        }

    def best(self) -> DetectionStudy:
        return min(self.studies, key=lambda study: study.miss_rate())

    def worst(self) -> DetectionStudy:
        return max(self.studies, key=lambda study: study.miss_rate())


def compare_detectors(
    lab: HijackLab,
    probe_sets: Sequence[ProbeSet] | None = None,
    *,
    attack_count: int = 8000,
    authority: OriginAuthority | None = None,
    seed: int = 0,
    workload: Sequence[AttackOutcome] | None = None,
    workers: int | None = None,
) -> DetectorComparison:
    """The Fig. 7 experiment: one random-attack workload, many detectors.

    The paper uses 8,000 random attacks with attacker and target "chosen
    from the 6,318 transit ASes"; pass ``attack_count`` (or a precomputed
    ``workload``) to scale. ``workers`` parallelizes the workload
    simulation (detection evaluation itself is cheap and stays in-process).
    """
    if probe_sets is None:
        probe_sets = paper_probe_sets(lab, seed=seed)
    if workload is None:
        workload = lab.random_attacks(
            attack_count, transit_only=True, seed=seed, workers=workers
        )
    studies = tuple(
        DetectionStudy.run(HijackDetector(probes, authority), workload)
        for probes in probe_sets
    )
    return DetectorComparison(studies=studies, workload_size=len(workload))
