"""Incremental-defense analysis (Section V, Figs. 5–6 and the tables).

Evaluates a ladder of deployment strategies against one target and
quantifies the paper's headline finding: "there is a non-linear threshold
in which small security improvements shift into large security gains when
high-degree ASes are added incrementally into the mix" — random deployment
barely moves the baseline, tier-1-only helps but not enough, and the
top-degree core flips the curve's concavity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.attacks.lab import HijackLab
from repro.core.vulnerability import VulnerabilityProfile
from repro.defense.deployment import Defense
from repro.defense.strategies import DeploymentStrategy
from repro.registry.roa import OriginAuthority
from repro.topology.classify import effective_depth

__all__ = [
    "StrategyEvaluation",
    "DeploymentComparison",
    "PotentAttack",
    "compare_strategies",
    "top_potent_attacks",
]


@dataclass(frozen=True)
class StrategyEvaluation:
    """One strategy's vulnerability profile for the studied target."""

    strategy: DeploymentStrategy
    profile: VulnerabilityProfile

    @property
    def mean_successful_pollution(self) -> float:
        return self.profile.summary.mean_successful


@dataclass(frozen=True)
class DeploymentComparison:
    """A Fig. 5/6-style comparison across a strategy ladder."""

    target_asn: int
    evaluations: tuple[StrategyEvaluation, ...]

    @property
    def baseline(self) -> StrategyEvaluation:
        return self.evaluations[0]

    def improvement_factors(self) -> dict[str, float]:
        """Baseline mean pollution divided by each strategy's."""
        base = max(self.baseline.mean_successful_pollution, 1e-9)
        return {
            evaluation.strategy.name: base
            / max(evaluation.mean_successful_pollution, 1e-9)
            for evaluation in self.evaluations
        }

    def crossover(self, *, factor: float = 5.0) -> StrategyEvaluation | None:
        """The first strategy achieving ≥ *factor*× improvement — the
        paper's non-linear threshold where "small security improvements
        shift into large security gains"."""
        base = self.baseline.mean_successful_pollution
        for evaluation in self.evaluations[1:]:
            mean = evaluation.mean_successful_pollution
            if mean <= 0 or base / max(mean, 1e-9) >= factor:
                return evaluation
        return None

    def is_monotone_improving(self, *, tolerance: float = 0.05) -> bool:
        """Do larger deployments keep reducing mean pollution? (Random
        strategies are exempt — the paper shows they can be useless.)"""
        ordered = [
            evaluation
            for evaluation in self.evaluations
            if not evaluation.strategy.name.startswith("random")
        ]
        for before, after in zip(ordered, ordered[1:]):
            slack = tolerance * max(before.mean_successful_pollution, 1.0)
            if after.mean_successful_pollution > before.mean_successful_pollution + slack:
                return False
        return True


def compare_strategies(
    lab: HijackLab,
    target_asn: int,
    strategies: Sequence[DeploymentStrategy],
    authority: OriginAuthority,
    *,
    transit_only: bool = True,
    sample: int | None = None,
    seed: int | None = None,
    workers: int | None = None,
) -> DeploymentComparison:
    """Sweep the target once per strategy (Fig. 5/6 workload).

    ``transit_only=True`` mirrors the paper, which runs Section V under
    the optimistic stub-filtered scenario. Every rung shares the lab's
    convergence cache, so the target's baseline converges once for the
    whole ladder; ``workers`` parallelizes each rung's sweep.

    A lab built with ``batch_origins > 1`` takes the warm-started path
    instead (:meth:`HijackLab.sweep_deployments`): attacker states are
    copied from the baseline once and every rung is applied and rewound
    through the ``converge_delta`` undo journal, batch-fused across
    attackers — item-identical outcomes per rung, a fraction of the
    wall-clock (see ``docs/performance.md``).
    """
    if lab.batch_origins > 1:
        per_rung = lab.sweep_deployments(
            target_asn, strategies, authority,
            transit_only=transit_only, sample=sample, seed=seed,
        )
        return DeploymentComparison(
            target_asn=target_asn,
            evaluations=tuple(
                StrategyEvaluation(
                    strategy=strategy,
                    profile=VulnerabilityProfile.from_outcomes(
                        target_asn, outcomes.values(), label=strategy.name
                    ),
                )
                for strategy, outcomes in zip(strategies, per_rung)
            ),
        )
    evaluations: list[StrategyEvaluation] = []
    for strategy in strategies:
        defended = lab.with_defense(Defense(strategy=strategy, authority=authority))
        outcomes = defended.sweep_target(
            target_asn, transit_only=transit_only, sample=sample, seed=seed,
            workers=workers,
        )
        profile = VulnerabilityProfile.from_outcomes(
            target_asn, outcomes.values(), label=strategy.name
        )
        evaluations.append(StrategyEvaluation(strategy=strategy, profile=profile))
    return DeploymentComparison(
        target_asn=target_asn, evaluations=tuple(evaluations)
    )


@dataclass(frozen=True)
class PotentAttack:
    """A row of the Section V "top still-potent attacks" tables:
    attacker ASN, pollution achieved, attacker degree and depth."""

    attacker_asn: int
    pollution_count: int
    degree: int
    depth: int


def top_potent_attacks(
    lab: HijackLab,
    target_asn: int,
    strategy: DeploymentStrategy,
    authority: OriginAuthority,
    *,
    count: int = 5,
    transit_only: bool = True,
    sample: int | None = None,
    seed: int | None = None,
    workers: int | None = None,
) -> list[PotentAttack]:
    """The attacks that still get through a deployment — "an attacker armed
    with the same tools… can plot the viability and value of a specific
    attack" (Section V)."""
    defended = lab.with_defense(Defense(strategy=strategy, authority=authority))
    outcomes = defended.sweep_target(
        target_asn, transit_only=transit_only, sample=sample, seed=seed,
        workers=workers,
    )
    depth = effective_depth(lab.graph)
    ranked = sorted(
        outcomes.values(), key=lambda outcome: -outcome.pollution_count
    )[:count]
    return [
        PotentAttack(
            attacker_asn=outcome.scenario.attacker_asn,
            pollution_count=outcome.pollution_count,
            degree=lab.graph.degree(outcome.scenario.attacker_asn),
            depth=depth.get(outcome.scenario.attacker_asn, -1),
        )
        for outcome in ranked
    ]
