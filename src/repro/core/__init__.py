"""The paper's analyses: vulnerability, deployment, detection, self-interest."""

from repro.core.deployment_analysis import (
    DeploymentComparison,
    PotentAttack,
    StrategyEvaluation,
    compare_strategies,
    top_potent_attacks,
)
from repro.core.detection_analysis import (
    DetectorComparison,
    compare_detectors,
    paper_probe_sets,
)
from repro.core.churn import (
    ChurnImpact,
    TransferEvent,
    sample_transfers,
    stale_history_study,
)
from repro.core.holes import AttackHole, HoleKind, HoleReport, analyze_holes
from repro.core.probe_scaling import ProbeScalingCurve, probe_scaling_study
from repro.core.roles import RoleCatalog, resolve_roles
from repro.core.selfinterest import (
    ActionPlan,
    RegionalAssessment,
    RegionalImpact,
    RehomeVsDeployment,
    RehomingPlan,
    SelfInterestPlanner,
    apply_rehoming,
    assess_region,
    compare_rehoming_vs_deployment,
    plan_rehoming,
    regional_attack_study,
)
from repro.core.vulnerability import (
    AggressivenessRecord,
    MetricCorrelations,
    VulnerabilityProfile,
    attacker_aggressiveness,
    correlate_target_metrics,
    profile_target,
)

__all__ = [
    "ActionPlan",
    "AggressivenessRecord",
    "AttackHole",
    "ChurnImpact",
    "HoleKind",
    "HoleReport",
    "ProbeScalingCurve",
    "TransferEvent",
    "analyze_holes",
    "probe_scaling_study",
    "sample_transfers",
    "stale_history_study",
    "DeploymentComparison",
    "DetectorComparison",
    "MetricCorrelations",
    "PotentAttack",
    "RegionalAssessment",
    "RegionalImpact",
    "RehomeVsDeployment",
    "RehomingPlan",
    "RoleCatalog",
    "SelfInterestPlanner",
    "StrategyEvaluation",
    "VulnerabilityProfile",
    "apply_rehoming",
    "assess_region",
    "attacker_aggressiveness",
    "compare_detectors",
    "compare_rehoming_vs_deployment",
    "compare_strategies",
    "correlate_target_metrics",
    "paper_probe_sets",
    "plan_rehoming",
    "profile_target",
    "regional_attack_study",
    "resolve_roles",
    "top_potent_attacks",
]
