"""Residual-attack ("holes") analysis — the paper's future-work section.

"Future work is required to understand the behavior of the internet
topology with respect to the holes still present in an incremental
deployment. Some origin and sub-prefix attacks will still get through…
An analysis is desirable to understand these attacks, to determine how
they remain invisible" (Section VIII).

This module implements that analysis: for a deployed defense and a target,
it finds every attack that still succeeds, extracts a *witness path* — a
concrete chain of adopting ASes from a polluted AS back to the attacker
that never touches a deployer — and classifies why the hole exists:

* ``UNPUBLISHED``   — the target never published origins, so validators
  saw NOT_FOUND and could not block at all;
* ``NO_COVERAGE``   — the bogus route spread entirely through ASes outside
  the deployment (the deployment simply isn't on the attack's paths);
* ``PERIMETER_LEAK`` — deployers sat adjacent to the propagation tree and
  dropped the route themselves, but undefended neighbors carried it past
  them (adding those neighbors would close the hole).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.attacks.lab import HijackLab
from repro.attacks.scenario import AttackOutcome

__all__ = ["HoleKind", "AttackHole", "HoleReport", "analyze_holes"]


class HoleKind(enum.Enum):
    UNPUBLISHED = "target-unpublished"
    NO_COVERAGE = "deployment-not-on-path"
    PERIMETER_LEAK = "leaked-past-deployers"


@dataclass(frozen=True)
class AttackHole:
    """One attack that survived the deployment, with its explanation."""

    attacker_asn: int
    pollution_count: int
    kind: HoleKind
    witness_path: tuple[int, ...]
    adjacent_deployers: tuple[int, ...]

    def describe(self) -> str:
        path = " -> ".join(f"AS{asn}" for asn in self.witness_path)
        text = (
            f"AS{self.attacker_asn} still pollutes {self.pollution_count} "
            f"ASes ({self.kind.value}); witness: {path}"
        )
        if self.adjacent_deployers:
            text += (
                "; deployers one hop away: "
                + ", ".join(f"AS{asn}" for asn in self.adjacent_deployers)
            )
        return text


@dataclass(frozen=True)
class HoleReport:
    """All residual attacks against one target under one defense."""

    target_asn: int
    attacks_run: int
    holes: tuple[AttackHole, ...]

    @property
    def residual_rate(self) -> float:
        return len(self.holes) / self.attacks_run if self.attacks_run else 0.0

    def by_kind(self) -> dict[HoleKind, int]:
        counts: dict[HoleKind, int] = {}
        for hole in self.holes:
            counts[hole.kind] = counts.get(hole.kind, 0) + 1
        return counts

    def worst(self, count: int = 5) -> tuple[AttackHole, ...]:
        return tuple(
            sorted(self.holes, key=lambda hole: -hole.pollution_count)[:count]
        )

    def recommended_reinforcements(self, count: int = 5) -> tuple[int, ...]:
        """ASes that would close the most perimeter leaks if they deployed:
        the undefended witness-path members ranked by how many holes they
        carry."""
        scores: dict[int, int] = {}
        for hole in self.holes:
            for asn in hole.witness_path[1:-1]:
                scores[asn] = scores.get(asn, 0) + 1
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return tuple(asn for asn, _count in ranked[:count])


def _witness_path(lab: HijackLab, outcome: AttackOutcome) -> tuple[int, ...]:
    """A concrete adopted-route chain: largest polluted AS → attacker.

    Follows the final-state parents of the attack routes; every hop is an
    AS that accepted and re-exported the bogus announcement, so the chain
    is a real propagation witness that provably avoided every blocker.
    """
    view = lab.view
    attacker_asn = outcome.scenario.attacker_asn
    attacker_node = view.node_of(attacker_asn)
    first_hop = lab.defense.stub_filter and not lab.graph.customers(attacker_asn)
    result = lab.engine.hijack(
        view.node_of(outcome.scenario.target_asn),
        attacker_node,
        blocked=view.nodes_of(
            asn for asn in outcome.blocked_asns if view.has_asn(asn)
        ),
        filter_first_hop_providers=first_hop,
    )
    polluted = result.polluted_nodes
    if not polluted:
        return ()
    # Deepest pollution: the node farthest from the attacker.
    far = max(polluted, key=lambda node: (result.final.length[node], node))
    chain = [far]
    current = far
    while current != attacker_node:
        current = result.final.parent[current]
        if current < 0 or len(chain) > len(view):
            break
        chain.append(current)
    return tuple(view.asn_of(node) for node in chain)


def analyze_holes(
    lab: HijackLab,
    target_asn: int,
    *,
    attackers: Sequence[int] | None = None,
    transit_only: bool = True,
    sample: int | None = None,
    seed: int | None = None,
) -> HoleReport:
    """Sweep the target under the lab's defense and explain every survivor."""
    outcomes = lab.sweep_target(
        target_asn,
        attackers=attackers,
        transit_only=transit_only,
        sample=sample,
        seed=seed,
    )
    deployers = frozenset(lab.defense.strategy.deployers) | frozenset(
        rule.filtering_asn for rule in lab.defense.manual_filters
    )
    holes: list[AttackHole] = []
    for outcome in outcomes.values():
        if not outcome.succeeded:
            continue
        witness = _witness_path(lab, outcome)
        if not outcome.blocked_asns:
            kind = HoleKind.UNPUBLISHED if deployers else HoleKind.NO_COVERAGE
        else:
            # Blockers existed for this announcement; did the spread pass
            # right next to any of them?
            neighborhood: set[int] = set()
            for asn in witness:
                neighborhood.update(lab.graph.neighbors(asn))
            kind = (
                HoleKind.PERIMETER_LEAK
                if neighborhood & outcome.blocked_asns
                else HoleKind.NO_COVERAGE
            )
        adjacent = tuple(
            sorted(
                {
                    blocker
                    for asn in witness
                    for blocker in lab.graph.neighbors(asn)
                    if blocker in outcome.blocked_asns
                }
            )
        )
        holes.append(
            AttackHole(
                attacker_asn=outcome.scenario.attacker_asn,
                pollution_count=outcome.pollution_count,
                kind=kind,
                witness_path=witness,
                adjacent_deployers=adjacent,
            )
        )
    return HoleReport(
        target_asn=target_asn,
        attacks_run=len(outcomes),
        holes=tuple(holes),
    )
