"""Resolving the paper's named ASes to topological roles.

The paper anchors its curves to specific ASNs — AS98 (depth-1, multihomed,
attack-resistant), AS35 (depth-1, single-homed), AS55857 (depth-5, very
vulnerable), AS4 (aggressive attacker) — but chose them *as representatives
of topological classes* ("The ASes in figure 2 were chosen because they
were all isolated within a tier-1 hierarchy. Each AS graphed is at a
different depth"). On a synthetic topology the faithful reproduction is to
resolve the class, not the number: this module finds a concrete AS for
each role the experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.asgraph import ASGraph
from repro.topology.classify import (
    effective_depth,
    find_tier1,
    find_tier2,
    transit_asns,
)

__all__ = ["RoleCatalog", "resolve_roles"]


class RoleResolutionError(LookupError):
    """No AS in the topology matches a required role."""


@dataclass(frozen=True)
class RoleCatalog:
    """Concrete ASNs standing in for the paper's named ASes.

    Fig. 2 targets (tier-1 hierarchy): ``tier1_target``,
    ``depth1_multi_stub`` (the AS98 analogue), ``depth1_single_stub``
    (AS35), ``depth2_stub``, ``deep_target`` (the AS55857 analogue —
    the deepest stub available, depth ≥ 4).

    Fig. 3 targets (tier-2 hierarchy): ``tier2_target`` and
    ``tier2_depth1_stub``.

    ``aggressive_attacker`` is the AS4 analogue: a low-depth transit whose
    providers/peers fan out widely.
    """

    tier1_target: int
    depth1_single_stub: int
    depth1_multi_stub: int
    depth2_stub: int
    deep_target: int
    deep_target_depth: int
    tier2_target: int
    tier2_depth1_stub: int
    aggressive_attacker: int

    def fig2_targets(self) -> dict[str, int]:
        return {
            "tier-1": self.tier1_target,
            "depth-1 single-homed stub": self.depth1_single_stub,
            "depth-1 multi-homed stub": self.depth1_multi_stub,
            "depth-2 stub": self.depth2_stub,
            f"depth-{self.deep_target_depth} AS": self.deep_target,
        }

    def fig3_targets(self) -> dict[str, int]:
        return {
            "tier-2": self.tier2_target,
            "tier-2 depth-1 stub": self.tier2_depth1_stub,
            "depth-2 stub": self.depth2_stub,
            f"depth-{self.deep_target_depth} AS": self.deep_target,
        }


def resolve_roles(graph: ASGraph) -> RoleCatalog:
    """Find a representative AS for every experiment role."""
    tier1 = find_tier1(graph)
    tier2 = find_tier2(graph, tier1)
    depth = effective_depth(graph, tier1, tier2)
    transit = transit_asns(graph)
    stubs = [asn for asn in graph.asns() if asn not in transit]

    def pick(candidates, describe: str) -> int:
        for asn in candidates:
            return asn
        raise RoleResolutionError(f"no AS matches role: {describe}")

    def stub_at_depth(target_depth: int, *, providers: int | None = None,
                      under_tier1: bool | None = None):
        for asn in stubs:
            if depth.get(asn) != target_depth:
                continue
            if providers is not None and len(graph.providers(asn)) != providers:
                continue
            if under_tier1 is not None:
                direct_tier1 = bool(graph.providers(asn) & tier1)
                if direct_tier1 != under_tier1:
                    continue
            yield asn

    tier1_target = min(tier1)
    depth1_single = pick(
        stub_at_depth(1, providers=1, under_tier1=True),
        "single-homed stub directly under a tier-1",
    )
    depth1_multi = pick(
        stub_at_depth(1, providers=2, under_tier1=True),
        "multi-homed stub directly under tier-1s",
    )
    depth2_stub = pick(stub_at_depth(2), "stub at depth 2")

    deepest = max((d for asn, d in depth.items() if asn in stubs), default=0)
    if deepest < 4:
        raise RoleResolutionError(
            f"topology has no deep stubs (max stub depth {deepest}); "
            "increase the generator's chain_length"
        )
    deep_target = pick(
        (asn for asn in stubs if depth.get(asn) == deepest),
        f"stub at depth {deepest}",
    )

    tier2_target = (
        max(tier2, key=lambda asn: (graph.degree(asn), -asn))
        if tier2
        else pick(iter(()), "tier-2 AS")
    )
    # The paper's Fig. 3 roles sit under *large* tier-2 carriers; among
    # qualifying stubs prefer the one whose providers fan out the widest.
    tier2_stub_candidates = [
        asn
        for asn in stubs
        if depth.get(asn) == 1
        and graph.providers(asn) & tier2
        and not graph.providers(asn) & tier1
    ]
    if not tier2_stub_candidates:
        raise RoleResolutionError(
            "no stub directly under a tier-2 (and not under a tier-1)"
        )
    tier2_depth1_stub = max(
        tier2_stub_candidates,
        key=lambda asn: (
            sum(graph.degree(p) for p in graph.providers(asn)),
            -asn,
        ),
    )

    # The AS4 analogue: among depth<=1 transit ASes, maximize the peering
    # fan-out of the AS and its providers — the paper attributes attacker
    # aggressiveness to short paths plus providers that "peer to thousands
    # or hundreds of other ASes".
    def fanout(asn: int) -> int:
        total = len(graph.peers(asn))
        for provider in graph.providers(asn):
            total += len(graph.peers(provider))
        return total

    candidates = [
        asn for asn in transit if depth.get(asn, 99) <= 1 and asn not in tier1
    ]
    aggressive = max(candidates, key=lambda asn: (fanout(asn), -asn))

    return RoleCatalog(
        tier1_target=tier1_target,
        depth1_single_stub=depth1_single,
        depth1_multi_stub=depth1_multi,
        depth2_stub=depth2_stub,
        deep_target=deep_target,
        deep_target_depth=deepest,
        tier2_target=tier2_target,
        tier2_depth1_stub=tier2_depth1_stub,
        aggressive_attacker=aggressive,
    )
