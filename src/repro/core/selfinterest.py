"""The Section VII playbook: pragmatic self-interest actions.

"Rather than sit and wait, responsible organizations can start to take
pro-active actions immediately." The paper proposes five steps — analyze
the relevant AS topology, reduce vulnerability (re-home / multi-home),
publish route origins, incorporate filters, use detection — and validates
them on a ~187-AS regional slice (New Zealand) around the very vulnerable
AS55857: re-homing the target up two levels cut average regional pollution
from 60% to 25% (regional attackers) and 15% to 6% (external attackers);
a single prefix filter at the regional hub cut regional attacks to 40%.

:class:`SelfInterestPlanner` executes those steps against a lab and
*measures* each recommendation's impact rather than merely suggesting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.attacks.lab import HijackLab
from repro.defense.deployment import Defense, FilterRule
from repro.detection.analysis import DetectionStudy, greedy_probe_placement
from repro.detection.detector import HijackDetector
from repro.detection.probes import ProbeSet
from repro.topology.asgraph import ASGraph
from repro.topology.classify import customer_cone, effective_depth, transit_asns
from repro.util.rng import make_rng

__all__ = [
    "RegionalAssessment",
    "assess_region",
    "RehomingPlan",
    "plan_rehoming",
    "apply_rehoming",
    "RegionalImpact",
    "regional_attack_study",
    "ActionPlan",
    "SelfInterestPlanner",
]


# ---------------------------------------------------------------------------
# Step 1 — analyze the relevant AS topology.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionalAssessment:
    """Depth analysis of one region's ASes (the paper's first step:
    "Start with that region and map the ASes involved. Measure depth to
    assess potential vulnerability")."""

    region: str
    members: frozenset[int]
    depth_of: dict[int, int]
    vulnerable_members: tuple[int, ...]
    hub_asn: int

    @property
    def member_count(self) -> int:
        return len(self.members)

    def deepest(self) -> int:
        """The most vulnerable (deepest) member."""
        if not self.vulnerable_members:
            return max(self.members, key=lambda asn: self.depth_of.get(asn, 0))
        return self.vulnerable_members[0]


def assess_region(
    graph: ASGraph, region: str, *, vulnerable_depth: int = 3
) -> RegionalAssessment:
    """Map a region: member depths, the deep (vulnerable) members, and the
    regional hub — the transit AS whose customer cone covers the most
    regional ASes (the paper's VOCUS analogue)."""
    members = frozenset(graph.regions().get(region, ()))
    if not members:
        raise ValueError(f"unknown or empty region {region!r}")
    depth = effective_depth(graph)
    vulnerable = tuple(
        sorted(
            (asn for asn in members if depth.get(asn, 0) >= vulnerable_depth),
            key=lambda asn: (-depth.get(asn, 0), asn),
        )
    )
    regional_transit = [asn for asn in transit_asns(graph) if asn in members]
    if not regional_transit:
        regional_transit = sorted(members)

    def regional_cone(asn: int) -> int:
        return len(customer_cone(graph, asn) & members)

    hub = max(regional_transit, key=lambda asn: (regional_cone(asn), -asn))
    return RegionalAssessment(
        region=region,
        members=members,
        depth_of={asn: depth.get(asn, 0) for asn in members},
        vulnerable_members=vulnerable,
        hub_asn=hub,
    )


# ---------------------------------------------------------------------------
# Step 2 — reduce vulnerability by re-homing.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RehomingPlan:
    """Replace ``old_provider`` with ``new_provider`` (an ancestor
    ``levels`` hops up the provider chain), reducing the AS's depth."""

    asn: int
    old_provider: int
    new_provider: int
    old_depth: int
    expected_depth: int


def plan_rehoming(
    graph: ASGraph, asn: int, *, levels: int = 2
) -> RehomingPlan | None:
    """The paper's experiment: "re-homed AS55857 up two levels".

    Walks *levels* steps up the shallowest provider chain and re-homes the
    AS to that ancestor. Returns ``None`` when the AS is already as shallow
    as it can get.
    """
    depth = effective_depth(graph)
    providers = sorted(
        graph.providers(asn), key=lambda p: (depth.get(p, 1 << 30), p)
    )
    if not providers:
        return None
    old_provider = providers[0]
    ancestor = old_provider
    climbed = 0
    while climbed < levels:
        above = sorted(
            graph.providers(ancestor), key=lambda p: (depth.get(p, 1 << 30), p)
        )
        if not above:
            break
        ancestor = above[0]
        climbed += 1
    if ancestor == old_provider:
        return None
    return RehomingPlan(
        asn=asn,
        old_provider=old_provider,
        new_provider=ancestor,
        old_depth=depth.get(asn, 0),
        expected_depth=depth.get(ancestor, 0) + 1,
    )


def apply_rehoming(graph: ASGraph, plan: RehomingPlan) -> ASGraph:
    """A copy of the topology with the re-homing applied."""
    modified = graph.copy()
    modified.rehome(plan.asn, plan.old_provider, plan.new_provider)
    return modified


# ---------------------------------------------------------------------------
# Impact measurement (used by steps 2 and 4).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionalImpact:
    """Average regional pollution when one regional target is attacked."""

    target_asn: int
    region: str
    region_size: int
    regional_mean: float
    external_mean: float

    @property
    def regional_fraction(self) -> float:
        return self.regional_mean / self.region_size if self.region_size else 0.0

    @property
    def external_fraction(self) -> float:
        return self.external_mean / self.region_size if self.region_size else 0.0


def regional_attack_study(
    lab: HijackLab,
    target_asn: int,
    region: str,
    *,
    external_sample: int = 200,
    seed: int = 0,
) -> RegionalImpact:
    """The paper's measurement: attack the target from every regional AS
    and from a sample of external ASes; report the average number of
    *regional* ASes compromised."""
    members = frozenset(lab.graph.regions().get(region, ()))
    if target_asn not in members:
        raise ValueError(f"AS{target_asn} is not in region {region!r}")
    target_node = lab.view.node_of(target_asn)
    regional_counts: list[int] = []
    for attacker in sorted(members):
        if attacker == target_asn or lab.view.node_of(attacker) == target_node:
            continue
        outcome = lab.origin_hijack(target_asn, attacker)
        regional_counts.append(outcome.polluted_within(members))
    outside = [asn for asn in lab.graph.asns() if asn not in members]
    rng = make_rng(seed, "regional-external", region, target_asn)
    sampled = sorted(rng.sample(outside, min(external_sample, len(outside))))
    external_counts: list[int] = []
    for attacker in sampled:
        if lab.view.node_of(attacker) == target_node:
            continue
        outcome = lab.origin_hijack(target_asn, attacker)
        external_counts.append(outcome.polluted_within(members))
    return RegionalImpact(
        target_asn=target_asn,
        region=region,
        region_size=len(members),
        regional_mean=sum(regional_counts) / len(regional_counts)
        if regional_counts
        else 0.0,
        external_mean=sum(external_counts) / len(external_counts)
        if external_counts
        else 0.0,
    )


# ---------------------------------------------------------------------------
# Re-homing vs. wider deployment (the Section V cost remark).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RehomeVsDeployment:
    """Mean pollution under three options for a vulnerable target.

    The paper: "it is likely more cost-efficient to change this target AS
    to be less vulnerable by connecting to a lower-depth transit AS than
    it is to add security to an additional, possibly reluctant, 133
    transit ASes" (Section V). This compares exactly those options.
    """

    target_asn: int
    current_mean: float
    rehomed_mean: float
    wider_deployment_mean: float
    extra_deployers: int

    @property
    def rehoming_wins(self) -> bool:
        """Does the self-help option beat recruiting more deployers?"""
        return self.rehomed_mean <= self.wider_deployment_mean


def compare_rehoming_vs_deployment(
    lab: HijackLab,
    target_asn: int,
    current_strategy,
    wider_strategy,
    authority,
    *,
    sample: int | None = 200,
    seed: int = 0,
) -> RehomeVsDeployment:
    """Quantify the paper's cost remark for one target.

    ``current_strategy``/``wider_strategy`` are two rungs of the
    deployment ladder (e.g. core-166 and core-299); the re-homing option
    keeps the *current* deployment but moves the target up two provider
    levels. All three options are measured as mean pollution over the same
    transit-attacker sample.
    """
    from repro.defense.deployment import Defense

    def mean_pollution(active_lab, strategy) -> float:
        defended = active_lab.with_defense(
            Defense(strategy=strategy, authority=authority)
        )
        outcomes = defended.sweep_target(
            target_asn, transit_only=True, sample=sample, seed=seed
        )
        counts = [outcome.pollution_count for outcome in outcomes.values()]
        return sum(counts) / len(counts) if counts else 0.0

    current = mean_pollution(lab, current_strategy)
    wider = mean_pollution(lab, wider_strategy)
    plan = plan_rehoming(lab.graph, target_asn)
    if plan is None:
        rehomed = current
    else:
        rehomed_lab = HijackLab(
            apply_rehoming(lab.graph, plan),
            plan=lab.plan, policy=lab.policy, seed=lab.seed,
            backend=lab.backend,
        )
        rehomed = mean_pollution(rehomed_lab, current_strategy)
    return RehomeVsDeployment(
        target_asn=target_asn,
        current_mean=current,
        rehomed_mean=rehomed,
        wider_deployment_mean=wider,
        extra_deployers=len(wider_strategy) - len(current_strategy),
    )


# ---------------------------------------------------------------------------
# The full playbook.
# ---------------------------------------------------------------------------


@dataclass
class ActionPlan:
    """Everything the planner recommends, with measured impact."""

    assessment: RegionalAssessment
    target_asn: int
    baseline: RegionalImpact
    rehoming: RehomingPlan | None
    rehomed_impact: RegionalImpact | None
    publish_asns: tuple[int, ...] = ()
    filter_rule: FilterRule | None = None
    filtered_impact: RegionalImpact | None = None
    probe_recommendation: ProbeSet | None = None
    detection_miss_rate: float | None = None
    notes: list[str] = field(default_factory=list)

    def report(self) -> str:
        """A human-readable summary of the five steps."""
        lines = [
            f"Self-interest action plan for AS{self.target_asn} "
            f"(region {self.assessment.region}, {self.assessment.member_count} ASes)",
            f"1. ANALYZE: target depth "
            f"{self.assessment.depth_of.get(self.target_asn, '?')}, regional hub "
            f"AS{self.assessment.hub_asn}; baseline regional pollution "
            f"{self.baseline.regional_fraction:.0%} (regional attackers) / "
            f"{self.baseline.external_fraction:.0%} (external).",
        ]
        if self.rehoming and self.rehomed_impact:
            lines.append(
                f"2. REDUCE VULNERABILITY: re-home AS{self.rehoming.asn} from "
                f"AS{self.rehoming.old_provider} to AS{self.rehoming.new_provider} "
                f"(depth {self.rehoming.old_depth}→{self.rehoming.expected_depth}): "
                f"regional pollution {self.rehomed_impact.regional_fraction:.0%} / "
                f"external {self.rehomed_impact.external_fraction:.0%}."
            )
        else:
            lines.append("2. REDUCE VULNERABILITY: already optimally homed.")
        lines.append(
            f"3. PUBLISH: secure route origins for {len(self.publish_asns)} "
            "regional ASes (enables accurate filtering and detection)."
        )
        if self.filter_rule and self.filtered_impact:
            lines.append(
                f"4. FILTER: prefix filter at hub AS{self.filter_rule.filtering_asn} "
                f"for {self.filter_rule.prefix}: regional pollution "
                f"{self.filtered_impact.regional_fraction:.0%} / external "
                f"{self.filtered_impact.external_fraction:.0%}."
            )
        if self.probe_recommendation is not None:
            lines.append(
                f"5. DETECT: recommended probes "
                f"{sorted(self.probe_recommendation.asns)} "
                f"(miss rate {self.detection_miss_rate:.0%} on the regional "
                "attack workload)."
            )
        lines.extend(self.notes)
        return "\n".join(lines)


class SelfInterestPlanner:
    """Executes the Section VII playbook for one region/target."""

    def __init__(self, lab: HijackLab) -> None:
        self.lab = lab

    def plan(
        self,
        region: str,
        *,
        target_asn: int | None = None,
        external_sample: int = 200,
        probe_budget: int = 4,
        seed: int = 0,
    ) -> ActionPlan:
        """Assess, re-home, publish, filter and audit detection — each step
        evaluated by simulation, as the paper's validation experiments do."""
        assessment = assess_region(self.lab.graph, region)
        target = target_asn if target_asn is not None else assessment.deepest()
        baseline = regional_attack_study(
            self.lab, target, region, external_sample=external_sample, seed=seed
        )

        rehoming = plan_rehoming(self.lab.graph, target)
        rehomed_impact = None
        if rehoming is not None:
            rehomed_lab = HijackLab(
                apply_rehoming(self.lab.graph, rehoming),
                plan=self.lab.plan,
                policy=self.lab.policy,
                defense=self.lab.defense,
                seed=self.lab.seed,
                backend=self.lab.backend,
            )
            rehomed_impact = regional_attack_study(
                rehomed_lab, target, region,
                external_sample=external_sample, seed=seed,
            )

        publish = tuple(sorted(assessment.members))
        prefix = self.lab.target_prefix(target)
        rule = FilterRule(
            filtering_asn=assessment.hub_asn,
            prefix=prefix,
            allowed_origins=frozenset({target}),
        )
        filtered_lab = self.lab.with_defense(self.lab.defense.with_filters(rule))
        filtered_impact = regional_attack_study(
            filtered_lab, target, region,
            external_sample=external_sample, seed=seed,
        )

        # Step 5: audit detection over the regional workload and extend the
        # probe set greedily where there are blind spots.
        workload = [
            self.lab.origin_hijack(target, attacker)
            for attacker in sorted(assessment.members)
            if attacker != target
            and self.lab.view.node_of(attacker) != self.lab.view.node_of(target)
        ]
        candidates: Sequence[int] = sorted(transit_asns(self.lab.graph))
        probes = greedy_probe_placement(workload, candidates, count=probe_budget)
        study = DetectionStudy.run(HijackDetector(probes), workload)

        return ActionPlan(
            assessment=assessment,
            target_asn=target,
            baseline=baseline,
            rehoming=rehoming,
            rehomed_impact=rehomed_impact,
            publish_asns=publish,
            filter_rule=rule,
            filtered_impact=filtered_impact,
            probe_recommendation=probes,
            detection_miss_rate=study.miss_rate(),
        )
