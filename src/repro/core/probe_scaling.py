"""Probe-count scaling: how many vantage points does detection need?

The paper's conclusion: "hijack detection can be highly effective, but …
once again a critical mass of probes must be present to avoid blind
spots", and its Section VI advice is to "peer with as many high-degree,
non-overlapping ASes as possible, rather than with random ASes". This
module turns those statements into a measured curve: miss rate as a
function of probe count, for three placement policies —

* **top-degree** — the paper's recommendation,
* **random**    — the organic/ad-hoc growth BGPmon exhibited,
* **greedy**    — coverage-optimal placement trained on a workload
  (the Section VII "determine new probes" step, as an upper bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.attacks.scenario import AttackOutcome
from repro.detection.analysis import DetectionStudy, greedy_probe_placement
from repro.detection.detector import HijackDetector
from repro.detection.probes import random_transit_probes, top_degree_probes
from repro.topology.asgraph import ASGraph
from repro.topology.classify import transit_asns

__all__ = ["ProbeScalingCurve", "probe_scaling_study"]


@dataclass(frozen=True)
class ProbeScalingCurve:
    """Miss rate per probe count for one placement policy."""

    policy: str
    points: tuple[tuple[int, float], ...]  # (probe count, miss rate)

    def miss_rate_at(self, count: int) -> float:
        for probe_count, miss_rate in self.points:
            if probe_count == count:
                return miss_rate
        raise KeyError(f"no measurement at {count} probes")

    def probes_needed(self, target_miss_rate: float) -> int | None:
        """Smallest measured probe count achieving the target miss rate —
        the "critical mass" readout."""
        for probe_count, miss_rate in self.points:
            if miss_rate <= target_miss_rate:
                return probe_count
        return None


def probe_scaling_study(
    graph: ASGraph,
    workload: Sequence[AttackOutcome],
    *,
    counts: Sequence[int] = (4, 8, 16, 32, 62, 124),
    seed: int = 0,
    holdout_fraction: float = 0.5,
) -> dict[str, ProbeScalingCurve]:
    """Measure miss rate vs probe count for the three placement policies.

    The greedy policy is trained on the first part of the workload and
    evaluated (like the others) on the held-out remainder, so its curve is
    an honest generalization estimate rather than training-set coverage.
    """
    if len(workload) < 4:
        raise ValueError("workload too small to split")
    split = max(1, int(len(workload) * holdout_fraction))
    training, evaluation = workload[:split], workload[split:]
    candidates = sorted(transit_asns(graph))

    def miss_rate(probe_set) -> float:
        return DetectionStudy.run(HijackDetector(probe_set), evaluation).miss_rate()

    curves: dict[str, list[tuple[int, float]]] = {
        "top-degree": [], "random": [], "greedy": [],
    }
    for count in counts:
        bounded = min(count, len(candidates))
        curves["top-degree"].append(
            (bounded, miss_rate(top_degree_probes(graph, count=bounded)))
        )
        curves["random"].append(
            (bounded, miss_rate(random_transit_probes(graph, bounded, seed=seed)))
        )
        greedy = greedy_probe_placement(training, candidates, count=bounded)
        curves["greedy"].append((bounded, miss_rate(greedy)))
    return {
        policy: ProbeScalingCurve(policy=policy, points=tuple(points))
        for policy, points in curves.items()
    }
