"""Stale-history churn analysis: the cost of not publishing route origins.

Section VI: "detectors that use historical data can issue false alerts due
to changing AS connectivity. Once again, it is prudent for ASes to
securely publish their route origins so that detectors can have an
accurate source of data."

This module quantifies that warning. An address block is legitimately
*transferred* to a new AS (merger, sale, re-homing); a defense or detector
still operating on the old history now judges the rightful announcement
INVALID. The study measures both failure modes:

* **detection false positive** — the legitimate announcement raises a
  hijack alert;
* **collateral blackholing** — ASes that *block* on the stale verdict drop
  the legitimate route, cutting reachability to the new owner.

A registry-backed authority that the new owner updates (re-publishing
after the transfer, the Section VII discipline) suffers neither.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.attacks.lab import HijackLab
from repro.defense.strategies import DeploymentStrategy
from repro.prefixes.prefix import Prefix
from repro.registry.history import HistoricalAuthority
from repro.registry.roa import OriginAuthority, ValidationState
from repro.util.rng import make_rng

__all__ = ["TransferEvent", "ChurnImpact", "stale_history_study", "sample_transfers"]


@dataclass(frozen=True)
class TransferEvent:
    """A legitimate change of ownership for one allocated block."""

    prefix: Prefix
    old_asn: int
    new_asn: int


@dataclass(frozen=True)
class ChurnImpact:
    """Outcome of announcing transferred space under a stale authority."""

    event: TransferEvent
    verdict: ValidationState
    false_positive: bool
    blackholed_asns: int
    reachable_asns: int

    @property
    def blackholed_fraction(self) -> float:
        total = self.blackholed_asns + self.reachable_asns
        return self.blackholed_asns / total if total else 0.0


def sample_transfers(
    lab: HijackLab, count: int, *, seed: int = 0
) -> list[TransferEvent]:
    """Draw plausible transfer events: blocks moving to another AS in the
    same region (the common merger/re-homing case)."""
    rng = make_rng(seed, "transfers")
    asns = [asn for asn in lab.graph.asns() if lab.plan.prefixes_of(asn)]
    events: list[TransferEvent] = []
    attempts = 0
    while len(events) < count and attempts < count * 20:
        attempts += 1
        old = rng.choice(asns)
        region = lab.graph.region_of(old)
        candidates = [
            asn
            for asn in asns
            if asn != old and lab.graph.region_of(asn) == region
        ] or [asn for asn in asns if asn != old]
        new = rng.choice(candidates)
        if lab.view.node_of(new) == lab.view.node_of(old):
            continue
        events.append(
            TransferEvent(
                prefix=lab.plan.primary_prefix(old), old_asn=old, new_asn=new
            )
        )
    return events


def stale_history_study(
    lab: HijackLab,
    events: Sequence[TransferEvent],
    *,
    blocking_strategy: DeploymentStrategy | None = None,
    authority: OriginAuthority | None = None,
) -> list[ChurnImpact]:
    """Judge each post-transfer legitimate announcement against a stale
    authority and measure alerting plus blocking fallout.

    ``authority`` defaults to a :class:`HistoricalAuthority` bootstrapped
    from the *pre-transfer* plan — the steady-state collector the paper
    warns about. Pass a registry table the new owner has updated to verify
    the published-data path is churn-proof (zero false positives).
    """
    if authority is None:
        authority = HistoricalAuthority.from_plan(lab.plan)
    view = lab.view
    results: list[ChurnImpact] = []
    for event in events:
        verdict = authority.validate(event.prefix, event.new_asn)
        false_positive = verdict is ValidationState.INVALID
        blocked_nodes: frozenset[int] = frozenset()
        if blocking_strategy is not None and false_positive:
            blocked_nodes = frozenset(
                view.node_of(asn)
                for asn in blocking_strategy.deployers
                if view.has_asn(asn)
            )
        state = lab.engine.converge(
            view.node_of(event.new_asn), blocked=blocked_nodes
        )
        reachable = sum(
            view.member_count(node)
            for node in range(len(view))
            if state.has_route(node)
        )
        total = sum(view.member_count(node) for node in range(len(view)))
        results.append(
            ChurnImpact(
                event=event,
                verdict=verdict,
                false_positive=false_positive,
                blackholed_asns=total - reachable,
                reachable_asns=reachable,
            )
        )
    return results
