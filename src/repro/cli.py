"""Command-line interface: ``repro-bgp`` (or ``python -m repro``).

Subcommands cover the everyday workflows:

* ``generate``  — emit a calibrated synthetic topology in CAIDA format
* ``summarize`` — headline statistics of a topology file
* ``attack``    — simulate one attack (any grid cell: ``--kind``
  origin/subprefix/squat/route-leak × ``--path-kind`` type-0/1/n/u)
* ``sweep``     — vulnerability profile of one target (same grid knobs)
* ``figure``    — regenerate a paper figure/table (or ``all``)
* ``plan``      — run the Section VII self-interest playbook for a region
* ``validate``  — run the differential oracle + invariant suite
  (engine vs the slow reference simulator; see docs/testing.md)
* ``bench``     — run a scale-knobbed benchmark profile and write a
  machine-readable ``BENCH_<name>.json`` (see docs/performance.md);
  ``--suite stream`` benchmarks the event-streaming subsystem instead,
  ``--suite scale`` the array vs reference convergence backends at
  CAIDA scale
* ``stream``    — replay a JSONL event stream (or compile one from
  random hijack scenarios) through the incremental-convergence engine
  and the online hijack monitor, emitting a JSON report
  (see docs/streaming.md)
* ``ingest``    — compile an MRT-like trace (RIB dump + update feed)
  into a stream and replay it through the online monitor — the
  real-data path (see docs/ingestion.md)

The global ``--metrics <path>`` flag arms the :mod:`repro.obs` metrics
layer for any subcommand and writes its JSON snapshot (counters, gauges,
spans) to *path* when the command finishes. The global ``--backend``
flag selects the convergence kernel (``reference`` or ``array``) for
every lab- and suite-driving subcommand; both backends are
checksum-identical by contract, so it changes wall-clock only.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.attacks.lab import HijackLab
from repro.core.selfinterest import SelfInterestPlanner
from repro.core.vulnerability import profile_target
from repro.experiments.config import ExperimentConfig
from repro.experiments.store import ResultStore
from repro.experiments.suite import ExperimentSuite
from repro.obs.bench import (
    PROFILES,
    run_batch_bench,
    run_bench,
    run_ingest_bench,
    run_scale_bench,
    run_service_bench,
    run_stream_bench,
)
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.topology.caida import dump_caida, load_caida, load_caida_mmap
from repro.topology.classify import summarize
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.util.tables import render_table

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "tab1", "tab2", "tab3", "tab4", "tab5", "nz_rehoming", "nz_filter",
    "ext_subprefix", "attack_matrix", "service_latency",
)

_KIND_CHOICES = ("origin", "subprefix", "squat", "route-leak")
_PATH_KIND_CHOICES = ("type-0", "type-1", "type-n", "type-u")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bgp",
        description="BGP origin-hijack deployment-strategy simulator (ICDCS 2014 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=2014, help="experiment seed")
    parser.add_argument(
        "--backend", choices=("reference", "array"), default="reference",
        help="convergence kernel (checksum-identical; array is faster at scale)",
    )
    parser.add_argument(
        "--batch-origins", type=int, default=1, metavar="N",
        help="fuse N scenarios per convergence pass on the array backend and "
             "warm-start deployment ladders (outcome-identical; see "
             "docs/performance.md)",
    )
    parser.add_argument(
        "--metrics", type=Path, default=None, metavar="PATH",
        help="record runtime metrics (repro.obs) and write the JSON snapshot here",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic topology")
    generate.add_argument("--as-count", type=int, default=4270)
    generate.add_argument("--regions", type=int, default=None,
                          help="region count (default: scaled to the topology size)")
    generate.add_argument("-o", "--output", type=Path, required=True)

    summarize_cmd = subparsers.add_parser("summarize", help="summarize a topology")
    summarize_cmd.add_argument("-i", "--input", type=Path, help="CAIDA as-rel file (default: generate)")
    summarize_cmd.add_argument("--as-count", type=int, default=4270)

    attack = subparsers.add_parser("attack", help="simulate one origin hijack")
    attack.add_argument("--target", type=int, required=True)
    attack.add_argument("--attacker", type=int, required=True)
    attack.add_argument("-i", "--input", type=Path)
    attack.add_argument("--as-count", type=int, default=4270)
    attack.add_argument("--subprefix", action="store_true",
                        help="announce a more-specific instead (same as --kind subprefix)")
    attack.add_argument("--kind", choices=_KIND_CHOICES, default=None,
                        help="prefix axis of the attack grid (default: origin)")
    attack.add_argument("--path-kind", choices=_PATH_KIND_CHOICES, default="type-0",
                        help="path axis: forged first hop (type-1), deep forgery "
                             "(type-n), unmodified replay (type-u)")
    attack.add_argument("--forged-depth", type=int, default=1,
                        help="forged-path depth for --path-kind type-n")
    attack.add_argument("--validate", action="store_true",
                        help="run the invariant checker on every convergence")

    sweep = subparsers.add_parser("sweep", help="vulnerability profile of a target")
    sweep.add_argument("--target", type=int, required=True)
    sweep.add_argument("-i", "--input", type=Path)
    sweep.add_argument("--as-count", type=int, default=4270)
    sweep.add_argument("--sample", type=int, default=None, help="attacker sample size")
    sweep.add_argument("--transit-only", action="store_true")
    sweep.add_argument("--kind", choices=_KIND_CHOICES, default="origin",
                       help="prefix axis of the attack grid")
    sweep.add_argument("--path-kind", choices=_PATH_KIND_CHOICES, default="type-0",
                       help="path axis of the attack grid")
    sweep.add_argument("--forged-depth", type=int, default=1,
                       help="forged-path depth for --path-kind type-n")
    sweep.add_argument("--validate", action="store_true",
                       help="run the invariant checker on every convergence")

    figure = subparsers.add_parser("figure", help="regenerate a paper figure/table")
    figure.add_argument("name", choices=(*_EXPERIMENTS, "all"))
    figure.add_argument("--output-dir", type=Path, default=Path("results"))
    figure.add_argument("--as-count", type=int, default=4270)
    figure.add_argument("--sample", type=int, default=1200)
    figure.add_argument("--attacks", type=int, default=8000, help="Fig. 7 workload size")
    figure.add_argument("--store", type=Path, help="also record into this sqlite store")
    figure.add_argument("--validate", action="store_true",
                        help="run the invariant checker on every convergence")

    plan = subparsers.add_parser("plan", help="Section VII self-interest plan for a region")
    plan.add_argument("--region", required=True)
    plan.add_argument("--target", type=int, default=None)
    plan.add_argument("-i", "--input", type=Path)
    plan.add_argument("--as-count", type=int, default=4270)

    calibrate_cmd = subparsers.add_parser(
        "calibrate", help="topology/model health report (paper references)"
    )
    calibrate_cmd.add_argument("-i", "--input", type=Path)
    calibrate_cmd.add_argument("--as-count", type=int, default=4270)
    calibrate_cmd.add_argument("--agreement-samples", type=int, default=10)
    calibrate_cmd.add_argument("--path-samples", type=int, default=60)

    validate_cmd = subparsers.add_parser(
        "validate",
        help="differential oracle + invariant health check of the routing core",
    )
    validate_cmd.add_argument("--cases", type=int, default=200,
                              help="random hijack cases for the differential oracle")
    validate_cmd.add_argument("--max-size", type=int, default=28,
                              help="largest random topology (ASes) per case")
    validate_cmd.add_argument("--as-count", type=int, default=900,
                              help="generated-topology size for the invariant sweep")
    validate_cmd.add_argument("--attacks", type=int, default=12,
                              help="random hijacks checked on the generated topology")
    validate_cmd.add_argument("--workers", type=int, default=2,
                              help="worker count for the determinism cross-check")

    bench = subparsers.add_parser(
        "bench",
        help="run a benchmark profile and write machine-readable BENCH_<name>.json",
    )
    bench.add_argument("--profile", choices=sorted(PROFILES), default="smoke")
    bench.add_argument(
        "--suite",
        choices=("core", "stream", "scale", "batch", "service", "ingest"),
        default="core",
        help="core: sweep/cache/overhead benchmark; stream: event-streaming "
             "benchmark; scale: array vs reference backends at CAIDA scale; "
             "batch: batched multi-origin sweeps and warm-started ladders; "
             "service: monitoring-daemon ingest/verdict loop across shard "
             "counts; ingest: synthetic-trace parse + replay through the "
             "incremental ledger with peak-RSS bounding",
    )
    bench.add_argument(
        "-o", "--output", type=Path, default=None,
        help="output path (default: BENCH_<profile>.json in the current directory)",
    )
    bench.add_argument("--workers", type=int, default=None,
                       help="override the profile's pool size (0 = all cores)")

    stream_cmd = subparsers.add_parser(
        "stream",
        help="replay a JSONL event stream through the online hijack monitor",
    )
    stream_cmd.add_argument("-i", "--input", type=Path,
                            help="JSONL event stream (default: compile a campaign)")
    stream_cmd.add_argument("--attacks", type=int, default=5,
                            help="scenarios to compile when no input is given")
    stream_cmd.add_argument("--as-count", type=int, default=4270)
    stream_cmd.add_argument("--topology", type=Path, default=None,
                            help="CAIDA-format topology file "
                                 "(default: generate --as-count ASes)")
    stream_cmd.add_argument("--probes",
                            choices=("tier1", "bgpmon", "top-degree"),
                            default="tier1", help="monitor vantage-point set")
    stream_cmd.add_argument("--batch-window", type=float, default=0.0,
                            help="coalescing window in virtual seconds")
    stream_cmd.add_argument("--queue-limit", type=int, default=64,
                            help="pending events before a backpressure flush")
    stream_cmd.add_argument("--publish-roas", action="store_true",
                            help="publish every target's ROA at stream start")
    stream_cmd.add_argument("--dwell", type=float, default=None,
                            help="withdraw each bogus announcement after this long")
    stream_cmd.add_argument("--compile-only", type=Path, metavar="PATH",
                            help="write the compiled stream as JSONL and exit")
    stream_cmd.add_argument("--report", type=Path, default=None,
                            help="write the JSON report here (default: stdout)")
    stream_cmd.add_argument("--validate", action="store_true",
                            help="run the invariant checker on every convergence")
    stream_cmd.add_argument("--fail-on-hijack", action="store_true",
                            help="exit 1 if any CONFIRMED verdict (hijack / "
                                 "forged-path / route-leak) fires — for CI "
                                 "pipelines")

    ingest = subparsers.add_parser(
        "ingest",
        help="compile an MRT-like trace (RIB dump + update feed) and replay "
             "it through the online hijack monitor (see docs/ingestion.md)",
    )
    ingest.add_argument("--rib", type=Path, default=None,
                        help="RIB-dump trace file (JSONL/TSV; .gz accepted)")
    ingest.add_argument("--updates", type=Path, default=None,
                        help="update-feed trace file (JSONL/TSV; .gz accepted)")
    ingest.add_argument("--as-count", type=int, default=4270)
    ingest.add_argument("--topology", type=Path, default=None,
                        help="CAIDA-format topology file, memory-mapped "
                             "(default: generate --as-count ASes)")
    ingest.add_argument("--probes",
                        choices=("tier1", "bgpmon", "top-degree"),
                        default="tier1", help="monitor vantage-point set")
    ingest.add_argument("--strict", action="store_true",
                        help="raise on the first malformed record, duplicate "
                             "RIB entry or timestamp regression (with "
                             "file:line) instead of counting and continuing")
    ingest.add_argument("--seed-roas", action="store_true",
                        help="publish a ROA for every RIB-legal "
                             "(prefix, origin) before the announce wave")
    ingest.add_argument("--batch-window", type=float, default=0.0,
                        help="coalescing window in virtual seconds")
    ingest.add_argument("--queue-limit", type=int, default=64,
                        help="pending events before a backpressure flush")
    ingest.add_argument("--compile-only", type=Path, metavar="PATH",
                        help="write the compiled stream as JSONL and exit")
    ingest.add_argument("--report", type=Path, default=None,
                        help="write the JSON report here (default: stdout)")
    ingest.add_argument("--fail-on-hijack", action="store_true",
                        help="exit 1 if any CONFIRMED verdict fires")

    serve = subparsers.add_parser(
        "serve",
        help="run the always-on multi-tenant hijack-monitoring daemon "
             "(JSON API; see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8470,
                       help="listen port (0 = pick a free one)")
    serve.add_argument("--shards", type=int, default=2,
                       help="per-prefix ledger shards (worker pipelines)")
    serve.add_argument("--as-count", type=int, default=4270)
    serve.add_argument("--topology", type=Path, default=None,
                       help="CAIDA-format topology file "
                            "(default: generate --as-count ASes)")
    serve.add_argument("--probes",
                       choices=("tier1", "bgpmon", "top-degree"),
                       default="top-degree", help="monitor vantage-point set")
    serve.add_argument("--batch-window", type=float, default=0.0,
                       help="coalescing window in virtual seconds")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="pending events before a backpressure flush")
    serve.add_argument("-i", "--input", type=Path, default=None,
                       help="JSONL event feed to ingest at startup")
    serve.add_argument("--follow", action="store_true",
                       help="keep tailing --input for new lines")
    serve.add_argument("--rib", type=Path, default=None,
                       help="RIB-dump trace: register every legal "
                            "(prefix, origin) as tenant as<origin> with its "
                            "ROA before serving (see docs/ingestion.md)")

    report = subparsers.add_parser(
        "report", help="run every experiment and write EXPERIMENTS.md"
    )
    report.add_argument("--output", type=Path, default=Path("EXPERIMENTS.md"))
    report.add_argument("--output-dir", type=Path, default=Path("results"))
    report.add_argument("--as-count", type=int, default=4270)
    report.add_argument("--sample", type=int, default=1200)
    report.add_argument("--attacks", type=int, default=8000)

    return parser


def _topology(args: argparse.Namespace):
    if getattr(args, "input", None):
        return load_caida(args.input)
    return generate_topology(GeneratorConfig.scaled(args.as_count, seed=args.seed))


def _metrics(args: argparse.Namespace) -> Metrics:
    """The run's metrics sink (armed by ``--metrics``, else a no-op)."""
    return getattr(args, "metrics_sink", NULL_METRICS)


def _cmd_generate(args: argparse.Namespace) -> int:
    overrides = {} if args.regions is None else {"region_count": args.regions}
    graph = generate_topology(
        GeneratorConfig.scaled(args.as_count, seed=args.seed, **overrides)
    )
    dump_caida(graph, args.output)
    print(f"wrote {len(graph)} ASes / {graph.edge_count()} links to {args.output}")
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    graph = _topology(args)
    stats = summarize(graph)
    print(f"ASes: {stats.as_count}   links: {stats.link_count}")
    print(f"tier-1: {len(stats.tier1)}   tier-2: {len(stats.tier2)}")
    print(f"transit: {stats.transit_count} ({stats.transit_fraction:.1%})   stubs: {stats.stub_count}")
    print(f"max depth: {stats.max_depth}")
    print("depth histogram:", dict(sorted(stats.depth_histogram.items())))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks.scenario import HijackKind, PathKind

    lab = HijackLab(
        _topology(args), seed=args.seed, validate=args.validate,
        metrics=_metrics(args), backend=args.backend,
        batch_origins=args.batch_origins,
    )
    kind_name = args.kind or ("subprefix" if args.subprefix else "origin")
    scenario = lab.build_scenario(
        args.target,
        args.attacker,
        kind=HijackKind(kind_name),
        path_kind=PathKind(args.path_kind),
        forged_depth=args.forged_depth,
    )
    outcome = lab.run_scenario(scenario)
    if scenario.kind is HijackKind.ROUTE_LEAK:
        label = "route-leak"
    elif scenario.path_kind is PathKind.TYPE_0:
        label = f"{scenario.kind.value} hijack"
    else:
        label = f"{scenario.kind.value} {scenario.path_kind.value} hijack"
    print(f"{label} of {scenario.prefix} "
          f"(AS{args.target}) by AS{args.attacker}")
    if outcome.claimed_path is None:
        print("attack fizzled: the attacker holds no route to replay")
        return 0
    if len(outcome.claimed_path) > 1:
        print("claimed AS path: " + " ".join(str(asn) for asn in outcome.claimed_path))
    print(f"polluted ASes: {outcome.pollution_count}")
    if outcome.address_fraction is not None:
        print(f"address space polluted: {outcome.address_fraction:.1%}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    lab = HijackLab(
        _topology(args), seed=args.seed, validate=args.validate,
        metrics=_metrics(args), backend=args.backend,
        batch_origins=args.batch_origins,
    )
    from repro.attacks.scenario import HijackKind, PathKind

    profile = profile_target(
        lab, args.target, transit_only=args.transit_only, sample=args.sample,
        kind=HijackKind(args.kind), path_kind=PathKind(args.path_kind),
        forged_depth=args.forged_depth,
    )
    stats = profile.summary
    print(f"target AS{args.target}: {stats.count} {args.kind}/{args.path_kind} "
          f"attacks, {stats.successful} successful")
    print(f"mean pollution {stats.mean:.0f}, mean (successful) "
          f"{stats.mean_successful:.0f}, max {stats.maximum}")
    rows = [(x, y) for x, y in profile.curve.points()][:: max(1, len(profile.curve.points()) // 12)]
    print(render_table(("min polluted", "attackers"), rows, title="CCDF (sampled rows)"))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        topology=GeneratorConfig.scaled(args.as_count, seed=args.seed),
        seed=args.seed,
        output_dir=args.output_dir,
        attacker_sample=args.sample,
        detection_attacks=args.attacks,
        validate=args.validate,
        backend=args.backend,
        batch_origins=args.batch_origins,
    )
    suite = ExperimentSuite(config, metrics=_metrics(args))
    names = _EXPERIMENTS if args.name == "all" else (args.name,)
    store = ResultStore(args.store) if args.store else None
    for name in names:
        result = suite.run(name)
        path = result.save_json(Path(args.output_dir) / "data")
        if store is not None:
            store.record(result, params={"as_count": args.as_count, "seed": args.seed})
        print(f"{name}: wrote {path}" + (
            f" and {len(result.artifacts)} artifact(s)" if result.artifacts else ""
        ))
    if store is not None:
        store.close()
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    lab = HijackLab(
        _topology(args), seed=args.seed, metrics=_metrics(args),
        backend=args.backend, batch_origins=args.batch_origins,
    )
    planner = SelfInterestPlanner(lab)
    action_plan = planner.plan(args.region, target_asn=args.target)
    print(action_plan.report())
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.experiments.calibration import calibrate

    lab = HijackLab(
        _topology(args), seed=args.seed, metrics=_metrics(args),
        backend=args.backend, batch_origins=args.batch_origins,
    )
    report = calibrate(
        lab,
        agreement_samples=args.agreement_samples,
        path_samples=args.path_samples,
        seed=args.seed,
    )
    print(report.render())
    return 0 if report.healthy() else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.oracle.differential import random_hijack_cases, run_differential
    from repro.oracle.invariants import (
        InvariantViolation,
        check_convergence_deterministic,
        check_hijack_result,
    )
    from repro.util.rng import make_rng

    failures = 0

    # 1. Differential oracle: fast engine vs the slow reference simulator
    #    on random topologies with random blocking/policy variants.
    try:
        checked = run_differential(
            random_hijack_cases(args.cases, seed=args.seed, max_size=args.max_size)
        )
        print(f"differential oracle: OK ({checked} random hijack cases)")
    except AssertionError as error:
        failures += 1
        print(f"differential oracle: FAIL\n{error}")

    # 2. Invariant suite + determinism on a generated (calibrated) topology.
    graph = generate_topology(GeneratorConfig.scaled(args.as_count, seed=args.seed))
    lab = HijackLab(
        graph, seed=args.seed, metrics=_metrics(args), backend=args.backend,
        batch_origins=args.batch_origins,
    )
    rng = make_rng(args.seed, "cli-validate")
    pool = lab.attacker_pool(transit_only=True)
    try:
        for _ in range(args.attacks):
            target_asn, attacker_asn = rng.sample(pool, 2)
            target = lab.view.node_of(target_asn)
            attacker = lab.view.node_of(attacker_asn)
            if target == attacker:
                continue
            result = lab.engine.hijack(target, attacker)
            check_hijack_result(lab.view, result, policy=lab.policy)
        check_convergence_deterministic(lab.engine, lab.view.node_of(pool[0]))
        print(f"invariant suite: OK ({args.attacks} hijacks on {args.as_count} ASes)")
    except InvariantViolation as error:
        failures += 1
        print(f"invariant suite: FAIL\n{error}")

    # 3. Worker-permutation determinism + cache coherence: a sweep must be
    #    bit-identical sequentially and pooled, cold and hot cache.
    target_asn = pool[1]
    reference = lab.sweep_target(target_asn, sample=48, seed=args.seed, workers=1)
    divergent = False
    for workers in (1, args.workers):
        for _pass in ("cold", "hot"):
            candidate = lab.sweep_target(
                target_asn, sample=48, seed=args.seed, workers=workers
            )
            if list(candidate) != list(reference) or any(
                candidate[key].polluted_asns != reference[key].polluted_asns
                for key in reference
            ):
                divergent = True
    try:
        lab.cache.verify_coherence()
    except InvariantViolation as error:
        failures += 1
        print(f"cache coherence: FAIL\n{error}")
    else:
        if divergent:
            failures += 1
            print("sweep determinism: FAIL (worker counts disagree)")
        else:
            print(
                f"sweep determinism + cache coherence: OK "
                f"(workers 1/{args.workers}, cold+hot, "
                f"{len(lab.cache)} cached baselines)"
            )

    print("validation " + ("FAILED" if failures else "passed"))
    return 1 if failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # With --metrics the snapshot sink and the bench's sink are one and
    # the same; otherwise the bench records into its own private sink
    # (the BENCH file carries the snapshot either way).
    sink = _metrics(args)
    if args.suite == "stream":
        return _bench_stream(args, sink)
    if args.suite == "scale":
        return _bench_scale(args, sink)
    if args.suite == "batch":
        return _bench_batch(args, sink)
    if args.suite == "service":
        return _bench_service(args, sink)
    if args.suite == "ingest":
        return _bench_ingest(args, sink)
    payload, path = run_bench(
        args.profile,
        output=args.output,
        workers=args.workers,
        metrics=sink if sink.enabled else None,
    )
    timings = payload["timings"]
    speedups = payload["speedups"]
    derived = payload["derived"]
    rows = [(key, round(value, 4)) for key, value in sorted(timings.items())]
    print(render_table(("phase", "seconds"), rows, title=f"bench profile: {args.profile}"))
    print(
        f"speedups: parallel sweep {speedups['sweep_parallel']:.2f}x, "
        f"warm cache {speedups['cache_warm']:.2f}x"
    )
    print(
        f"metrics overhead: {derived['metrics_overhead_fraction']:+.2%} "
        f"(budget < 3%)"
    )
    if not derived["outcomes_consistent"]:
        print("ERROR: parallel sweep outcomes diverged from sequential", file=sys.stderr)
        return 1
    print(f"wrote {path}")
    return 0


def _bench_stream(args: argparse.Namespace, sink: Metrics) -> int:
    payload, path = run_stream_bench(
        args.profile,
        output=args.output,
        metrics=sink if sink.enabled else None,
    )
    timings = payload["timings"]
    derived = payload["derived"]
    rows = [(key, round(value, 4)) for key, value in sorted(timings.items())]
    print(render_table(
        ("phase", "seconds"), rows, title=f"stream bench profile: {args.profile}"
    ))
    print(
        f"incremental vs full re-convergence: "
        f"{payload['speedups']['stream_incremental']:.2f}x over "
        f"{derived['events']} events"
    )
    print(f"replay throughput: {derived['events_per_s']:.0f} events/s, "
          f"{derived['alarms']} alarm(s), "
          f"detection latency {derived['detection_latency_time']} (virtual s)")
    if not derived["checksums_consistent"]:
        print("ERROR: incremental states diverged from full re-convergence",
              file=sys.stderr)
        return 1
    print(f"wrote {path}")
    return 0


def _bench_scale(args: argparse.Namespace, sink: Metrics) -> int:
    payload, path = run_scale_bench(
        args.profile,
        output=args.output,
        metrics=sink if sink.enabled else None,
    )
    timings = payload["timings"]
    derived = payload["derived"]
    rows = [(key, round(value, 4)) for key, value in sorted(timings.items())]
    print(render_table(
        ("phase", "seconds"), rows, title=f"scale bench profile: {args.profile}"
    ))
    print(
        f"single-origin convergence at {derived['as_count']} ASes "
        f"({derived['links']} links): reference "
        f"{derived['reference_origin_s'] * 1000:.1f} ms, array "
        f"{derived['array_origin_s'] * 1000:.1f} ms — "
        f"{payload['speedups']['single_origin']:.2f}x "
        f"(hijack stacking {payload['speedups']['hijack']:.2f}x)"
    )
    print(
        f"multi-origin: {derived['batch_origins_timed']} announcements on a "
        f"shared baseline, fused converge_batch vs the per-origin array "
        f"loop — {payload['speedups']['multi_origin_batch']:.2f}x "
        f"({derived['batch_origin_s'] * 1000:.1f} ms/origin batched)"
    )
    if not derived["checksums_consistent"]:
        print("ERROR: array backend checksums diverged from reference",
              file=sys.stderr)
        return 1
    print(f"wrote {path}")
    return 0


def _bench_batch(args: argparse.Namespace, sink: Metrics) -> int:
    payload, path = run_batch_bench(
        args.profile,
        output=args.output,
        metrics=sink if sink.enabled else None,
    )
    timings = payload["timings"]
    derived = payload["derived"]
    rows = [(key, round(value, 4)) for key, value in sorted(timings.items())]
    print(render_table(
        ("phase", "seconds"), rows, title=f"batch bench profile: {args.profile}"
    ))
    print(
        f"sweep of {derived['attackers']} attackers at {derived['as_count']} "
        f"ASes: batched ({derived['batch_origins']} origins/chunk) "
        f"{payload['speedups']['sweep_batch']:.2f}x over per-attack "
        f"convergence"
    )
    print(
        f"deployment ladder ({derived['rungs']} rungs): warm-started "
        f"journal path {payload['speedups']['deployment_warm']:.2f}x over "
        f"cold per-rung sweeps"
    )
    if not derived["outcomes_consistent"]:
        print("ERROR: batched sweep outcomes diverged from per-attack sweep",
              file=sys.stderr)
        return 1
    if not derived["ladder_consistent"]:
        print("ERROR: warm-started ladder diverged from cold per-rung sweeps",
              file=sys.stderr)
        return 1
    print(f"wrote {path}")
    return 0


def _bench_service(args: argparse.Namespace, sink: Metrics) -> int:
    payload, path = run_service_bench(
        args.profile,
        output=args.output,
        metrics=sink if sink.enabled else None,
    )
    timings = payload["timings"]
    derived = payload["derived"]
    rows = [(key, round(value, 4)) for key, value in sorted(timings.items())]
    print(render_table(
        ("phase", "seconds"), rows, title=f"service bench profile: {args.profile}"
    ))
    for shards, stats in sorted(derived["shards"].items(), key=lambda kv: int(kv[0])):
        p50 = stats["latency_p50_s"]
        p95 = stats["latency_p95_s"]
        print(
            f"shards={shards}: {stats['events_per_s']:.0f} events/s, "
            f"{stats['verdicts']} verdict(s), latency p50 "
            f"{p50 * 1000:.2f} ms / p95 {p95 * 1000:.2f} ms"
            if p50 is not None and p95 is not None
            else f"shards={shards}: {stats['events_per_s']:.0f} events/s, "
                 f"{stats['verdicts']} verdict(s)"
        )
    print(
        f"shard scaling {payload['speedups']['shard_scaling']:.2f}x over "
        f"{derived['lines']} lines ({derived['malformed_lines']} malformed)"
    )
    if not derived["verdicts_consistent"]:
        print("ERROR: verdicts diverged across shard counts", file=sys.stderr)
        return 1
    print(f"wrote {path}")
    return 0


def _bench_ingest(args: argparse.Namespace, sink: Metrics) -> int:
    payload, path = run_ingest_bench(
        args.profile,
        output=args.output,
        metrics=sink if sink.enabled else None,
    )
    timings = payload["timings"]
    derived = payload["derived"]
    rows = [(key, round(value, 4)) for key, value in sorted(timings.items())]
    print(render_table(
        ("phase", "seconds"), rows, title=f"ingest bench profile: {args.profile}"
    ))
    print(
        f"trace: {derived['updates']} update records "
        f"({derived['trace_bytes'] / 1e6:.1f} MB on disk, "
        f"{derived['malformed']} malformed) over {derived['rib_entries']} "
        f"RIB entries at {derived['as_count']} ASes"
    )
    print(
        f"parse {derived['parse_records_per_s']:.0f} records/s, "
        f"full ingest {derived['ingest_events_per_s']:.0f} events/s "
        f"(parse headroom {payload['speedups']['parse_headroom']:.1f}x)"
    )
    print(
        f"peak-RSS growth {derived['rss_growth_kb'] / 1024:.0f} MB "
        f"(budget {derived['rss_budget_mb']} MB) — "
        + ("bounded" if derived["rss_bounded"] else "EXCEEDED")
    )
    if not derived["rss_bounded"]:
        print("ERROR: ingest run exceeded the chunk-streaming RSS budget",
              file=sys.stderr)
        return 1
    print(f"wrote {path}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json

    from repro.detection.probes import (
        bgpmon_like_probes,
        tier1_probes,
        top_degree_probes,
    )
    from repro.ingest import TraceFormatError, TracePipeline, run_ingest
    from repro.stream import write_events

    if args.rib is None and args.updates is None:
        print("ingest needs --rib, --updates, or both", file=sys.stderr)
        return 2
    if args.topology is not None:
        graph = load_caida_mmap(args.topology)
    else:
        graph = generate_topology(
            GeneratorConfig.scaled(args.as_count, seed=args.seed)
        )
    metrics = _metrics(args)
    lab = HijackLab(
        graph, seed=args.seed, metrics=metrics,
        backend=args.backend, batch_origins=args.batch_origins,
    )
    pipeline = TracePipeline(
        rib_path=args.rib,
        updates_path=args.updates,
        strict=args.strict,
        seed_roas=args.seed_roas,
        metrics=metrics,
    )
    try:
        if args.compile_only is not None:
            # Streaming write: the compiled events go straight to disk,
            # so a multi-million-record trace re-emits in bounded memory.
            path = write_events(args.compile_only, pipeline.events())
            stats = pipeline.stats()
            print(f"wrote compiled stream to {path}")
            print(json.dumps(stats, indent=2, sort_keys=True), file=sys.stderr)
            return 0
        probe_sets = {
            "tier1": tier1_probes,
            "bgpmon": bgpmon_like_probes,
            "top-degree": top_degree_probes,
        }
        result = run_ingest(
            lab,
            pipeline,
            probes=probe_sets[args.probes](graph),
            batch_window=args.batch_window,
            queue_limit=args.queue_limit,
            metrics=metrics,
        )
    except TraceFormatError as error:
        print(f"trace error: {error}", file=sys.stderr)
        return 1
    payload = result.as_dict()
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.report}")
    else:
        print(text)
    report = result.report
    monitor = report.monitor
    assert monitor is not None
    latency = monitor.detection_latency_time
    print(
        f"ingested {report.events_submitted} events over "
        f"{len(report.prefixes)} prefix(es); {len(monitor.alarms)} alarm(s)"
        + (f", first at latency {latency} virtual s" if latency is not None else ""),
        file=sys.stderr,
    )
    if args.fail_on_hijack:
        from repro.service.daemon import CONFIRMED_VERDICTS

        confirmed = [
            alarm for alarm in monitor.alarms
            if alarm.verdict in CONFIRMED_VERDICTS
        ]
        if confirmed:
            print(
                f"fail-on-hijack: {len(confirmed)} CONFIRMED verdict(s)",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.detection.probes import (
        bgpmon_like_probes,
        tier1_probes,
        top_degree_probes,
    )
    from repro.service import MonitorService, ServiceDaemon

    if args.topology is not None:
        graph = load_caida_mmap(args.topology)
    else:
        graph = generate_topology(
            GeneratorConfig.scaled(args.as_count, seed=args.seed)
        )
    metrics = _metrics(args)
    lab = HijackLab(
        graph, seed=args.seed, metrics=metrics,
        backend=args.backend, batch_origins=args.batch_origins,
    )
    probe_sets = {
        "tier1": tier1_probes,
        "bgpmon": bgpmon_like_probes,
        "top-degree": top_degree_probes,
    }
    service = MonitorService(
        lab,
        shards=args.shards,
        probes=probe_sets[args.probes](graph),
        batch_window=args.batch_window,
        queue_limit=args.queue_limit,
        metrics=metrics,
    )
    if args.rib is not None:
        from repro.ingest import TraceReader, compile_rib

        baseline = compile_rib(
            TraceReader(args.rib, metrics=metrics), metrics=metrics
        )
        seeded = skipped = 0
        for prefix, legal in baseline.origins.items():
            for origin in sorted(legal):
                try:
                    service.register(f"as{origin}", prefix, origin)
                except ValueError:
                    skipped += 1  # origin absent from this topology
                else:
                    seeded += 1
        print(
            f"seeded {seeded} registration(s) from {args.rib}"
            + (f" ({skipped} origin(s) not in topology)" if skipped else ""),
            flush=True,
        )
    daemon = ServiceDaemon(service, host=args.host, port=args.port)

    async def _run() -> None:
        await daemon.start()
        print(
            f"service listening on http://{daemon.host}:{daemon.port} "
            f"({args.shards} shard(s), probes {service.plane.probes.name})",
            flush=True,
        )
        if args.input is not None:
            daemon.feed_file(args.input, follow=args.follow)
        await daemon.wait_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    health = service.health()
    print(
        f"served {health['events']['ingested']} events "
        f"({health['events']['malformed']} malformed) for "
        f"{health['tenants']} tenant(s): {health['verdicts']} verdict(s), "
        f"{health['mitigations']} mitigation(s)",
        file=sys.stderr,
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json

    from repro.attacks.scenario import HijackScenario
    from repro.detection.detector import HijackDetector
    from repro.detection.probes import (
        bgpmon_like_probes,
        tier1_probes,
        top_degree_probes,
    )
    from repro.stream import (
        OnlineMonitor,
        StreamReplayer,
        compile_campaign,
        read_events,
        write_events,
    )
    from repro.util.rng import make_rng

    # ``-i`` is the *event stream* here (unlike the batch commands, where
    # it is the topology file) — the topology comes from ``--topology``.
    if args.topology is not None:
        graph = load_caida(args.topology)
    else:
        graph = generate_topology(
            GeneratorConfig.scaled(args.as_count, seed=args.seed)
        )
    metrics = _metrics(args)
    lab = HijackLab(
        graph, seed=args.seed, validate=args.validate, metrics=metrics,
        backend=args.backend, batch_origins=args.batch_origins,
    )
    events = None
    if args.input is not None:
        if args.compile_only is not None:
            # Re-emitting a stream is tooling, not monitoring: strict
            # parsing (any malformed line is an error) is the right call.
            events = read_events(args.input)
    else:
        rng = make_rng(args.seed, "cli-stream")
        pool = lab.attacker_pool()
        scenarios: list[HijackScenario] = []
        while len(scenarios) < args.attacks:
            target_asn, attacker_asn = rng.sample(pool, 2)
            if lab.view.node_of(target_asn) == lab.view.node_of(attacker_asn):
                continue
            scenarios.append(
                HijackScenario(
                    target_asn=target_asn,
                    attacker_asn=attacker_asn,
                    prefix=lab.plan.primary_prefix(target_asn),
                )
            )
        events = compile_campaign(
            scenarios, publish_roas=args.publish_roas, dwell=args.dwell
        )
    if args.compile_only is not None:
        assert events is not None
        path = write_events(args.compile_only, events)
        print(f"wrote {len(events)} events to {path}")
        return 0
    probe_sets = {
        "tier1": tier1_probes,
        "bgpmon": bgpmon_like_probes,
        "top-degree": top_degree_probes,
    }
    probes = probe_sets[args.probes](graph)
    replayer = StreamReplayer(
        lab,
        batch_window=args.batch_window,
        queue_limit=args.queue_limit,
        metrics=metrics,
    )
    detector = HijackDetector(probes, authority=replayer.authority)
    replayer.monitor = OnlineMonitor(lab.view, detector, metrics=metrics)
    if events is None:
        # Replaying a feed file: parse line by line through the replay
        # engine's tolerant path, so one malformed line is skipped and
        # counted (events.malformed in the report) instead of killing
        # the whole run.
        assert args.input is not None
        with args.input.open("r", encoding="utf-8") as handle:
            replayer.submit_lines(handle)
        report = replayer.finish()
    else:
        report = replayer.run(events)
    payload = report.as_dict()
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.report}")
    else:
        print(text)
    monitor = report.monitor
    assert monitor is not None
    latency = monitor.detection_latency_time
    print(
        f"replayed {report.events_submitted} events "
        f"({report.events_coalesced} coalesced, {report.events_malformed} "
        f"malformed, {len(report.errors)} errors) over {len(report.prefixes)} "
        f"prefix(es); {len(monitor.alarms)} alarm(s)"
        + (f", first at latency {latency} virtual s" if latency is not None else ""),
        file=sys.stderr,
    )
    if args.fail_on_hijack:
        from repro.service.daemon import CONFIRMED_VERDICTS

        confirmed = [
            alarm for alarm in monitor.alarms
            if alarm.verdict in CONFIRMED_VERDICTS
        ]
        if confirmed:
            print(
                f"fail-on-hijack: {len(confirmed)} CONFIRMED verdict(s)",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.reportgen import render_experiments_markdown

    config = ExperimentConfig(
        topology=GeneratorConfig.scaled(args.as_count, seed=args.seed),
        seed=args.seed,
        output_dir=args.output_dir,
        attacker_sample=args.sample,
        detection_attacks=args.attacks,
        backend=args.backend,
        batch_origins=args.batch_origins,
    )
    suite = ExperimentSuite(config, metrics=_metrics(args))
    results = []
    for name in _EXPERIMENTS:
        print(f"running {name}…", flush=True)
        result = suite.run(name)
        result.save_json(Path(args.output_dir) / "data")
        results.append(result)
    text = render_experiments_markdown(
        results,
        context={
            "as_count": args.as_count,
            "attacker_sample": args.sample,
            "detection_attacks": args.attacks,
            "seed": args.seed,
        },
    )
    args.output.write_text(text, encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "summarize": _cmd_summarize,
    "attack": _cmd_attack,
    "sweep": _cmd_sweep,
    "figure": _cmd_figure,
    "plan": _cmd_plan,
    "calibrate": _cmd_calibrate,
    "validate": _cmd_validate,
    "bench": _cmd_bench,
    "stream": _cmd_stream,
    "ingest": _cmd_ingest,
    "serve": _cmd_serve,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    args.metrics_sink = Metrics() if args.metrics else NULL_METRICS
    status = _HANDLERS[args.command](args)
    if args.metrics:
        path = args.metrics_sink.write_json(args.metrics)
        print(f"wrote metrics snapshot to {path}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
