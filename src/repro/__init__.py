"""repro — reproduction of "Incremental Deployment Strategies for Effective
Detection and Prevention of BGP Origin Hijacks" (Gersch, Massey,
Papadopoulos; ICDCS 2014).

The package layers:

* :mod:`repro.prefixes` — IPv4 prefixes, longest-prefix matching, address plans
* :mod:`repro.topology` — AS graph, CAIDA I/O, synthetic generator, metrics
* :mod:`repro.bgp` — policy model, message-passing simulator, fast engine
* :mod:`repro.attacks` — hijack scenarios and attacker sweeps
* :mod:`repro.parallel` — process-pool sweep execution + convergence cache
* :mod:`repro.obs` — runtime metrics, benchmark profiles (``BENCH_*.json``),
  perf-regression comparison
* :mod:`repro.registry` — RPKI and ROVER route-origin publication
* :mod:`repro.defense` — filtering / origin-validation deployment
* :mod:`repro.detection` — hijack-detector probe analysis
* :mod:`repro.core` — the paper's analyses (vulnerability, deployment,
  detection, self-interest planning)
* :mod:`repro.viz` — polar propagation graphs and SVG charts
* :mod:`repro.experiments` — figure/table drivers and the result store
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
