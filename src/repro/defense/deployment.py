"""The deployed defense: who blocks which bogus announcements.

A :class:`Defense` bundles the three blocking mechanisms the paper
evaluates and turns them into the engine/simulator inputs:

* **origin validation** at a set of deploying ASes, judged against a
  registry (:class:`~repro.registry.roa.OriginAuthority` — RPKI, ROVER, or
  a plain ROA table). Only INVALID announcements are dropped; unpublished
  (NOT_FOUND) space cannot be protected.
* **manual prefix filters** — Section VII's "build prefix filters" step:
  an individual AS lists allowed origins for specific blocks (e.g. the
  single filter installed at the New-Zealand hub in the paper's
  experiment).
* **defensive stub filters** — Section IV's optimistic scenario: transit
  providers drop bogus announcements arriving directly from their stub
  customers, which reduces the effective attacker pool to transit ASes.

Blocking is *receiver-side*: a blocked AS neither installs nor propagates
the announcement, exactly the "bogus route blocking" of Section V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bgp.routes import Route
from repro.defense.strategies import DeploymentStrategy, no_deployment
from repro.prefixes.addressing import AddressPlan
from repro.prefixes.prefix import Prefix
from repro.registry.neighbors import NeighborRegistry
from repro.registry.roa import OriginAuthority, ValidationState
from repro.topology.view import RoutingView

__all__ = ["FilterRule", "Defense"]


@dataclass(frozen=True)
class FilterRule:
    """A manual prefix filter at one AS: inside *prefix*, only
    *allowed_origins* may originate."""

    filtering_asn: int
    prefix: Prefix
    allowed_origins: frozenset[int]

    def rejects(self, announced: Prefix, origin_asn: int) -> bool:
        return self.prefix.contains(announced) and origin_asn not in self.allowed_origins


@dataclass
class Defense:
    """A complete defensive configuration for hijack experiments.

    ``neighbors`` plus ``path_check=True`` arms deployers with
    ARTEMIS-style first-hop verification: an announcement whose claimed
    path ends in a hop the origin's published neighbor set rules out is
    dropped at every deployer — the filter that closes ROV's type-1
    blind spot (see ``docs/attacks.md``).
    """

    strategy: DeploymentStrategy = field(default_factory=no_deployment)
    authority: OriginAuthority | None = None
    manual_filters: tuple[FilterRule, ...] = ()
    stub_filter: bool = False
    neighbors: NeighborRegistry | None = None
    path_check: bool = False

    def with_filters(self, *rules: FilterRule) -> "Defense":
        return Defense(
            strategy=self.strategy,
            authority=self.authority,
            manual_filters=(*self.manual_filters, *rules),
            stub_filter=self.stub_filter,
            neighbors=self.neighbors,
            path_check=self.path_check,
        )

    # -- scenario-level blocking decisions -------------------------------------

    def is_blockable(self, prefix: Prefix, origin_asn: int) -> bool:
        """Would origin validation drop this announcement at a deployer?"""
        if self.authority is None:
            return False
        return self.authority.validate(prefix, origin_asn) is ValidationState.INVALID

    def blocking_asns(
        self,
        prefix: Prefix,
        origin_asn: int,
        *,
        claimed_path: tuple[int, ...] | None = None,
    ) -> frozenset[int]:
        """Every AS that drops the announcement for (*prefix*, *origin*).

        Validation judges the *claimed* origin when a ``claimed_path``
        (claimed origin last) is given — a type-1/type-N forgery names
        the legitimate origin precisely so ROV validates it; without a
        path the announcer *is* the claimed origin, the pre-taxonomy
        behavior.
        """
        claimed_origin = claimed_path[-1] if claimed_path else origin_asn
        blockers: set[int] = set()
        if self.is_blockable(prefix, claimed_origin):
            blockers.update(self.strategy.deployers)
        if (
            self.path_check
            and self.neighbors is not None
            and claimed_path is not None
            and self.neighbors.first_hop_forged(claimed_path)
        ):
            blockers.update(self.strategy.deployers)
        for rule in self.manual_filters:
            if rule.rejects(prefix, claimed_origin):
                blockers.add(rule.filtering_asn)
        return frozenset(blockers)

    def blocking_nodes(
        self,
        view: RoutingView,
        prefix: Prefix,
        origin_asn: int,
        *,
        claimed_path: tuple[int, ...] | None = None,
    ) -> frozenset[int]:
        """The same set, as routing-node indices for the fast engine."""
        return frozenset(
            view.node_of(asn)
            for asn in self.blocking_asns(
                prefix, origin_asn, claimed_path=claimed_path
            )
            if view.has_asn(asn)
        )

    # -- simulator integration --------------------------------------------------

    def validator(
        self, view: RoutingView, plan: AddressPlan | None = None
    ) -> Callable[[int, Route], bool]:
        """A per-announcement validator for :class:`BGPSimulator`.

        The returned callable re-derives the blocking decision from each
        candidate route's own (prefix, origin), so legitimate and bogus
        announcements through the same simulator are treated correctly.
        With ``stub_filter`` set and an address *plan* supplied, providers
        additionally drop first-hop announcements from stub customers that
        do not own the announced space (Section IV's optimistic scenario).
        """
        deployers = frozenset(
            view.node_of(asn)
            for asn in self.strategy.deployers
            if view.has_asn(asn)
        )
        rules_by_node: dict[int, list[FilterRule]] = {}
        for rule in self.manual_filters:
            if view.has_asn(rule.filtering_asn):
                node = view.node_of(rule.filtering_asn)
                rules_by_node.setdefault(node, []).append(rule)
        verdict_cache: dict[tuple[Prefix, int], bool] = {}

        def rejects(node: int, route: Route) -> bool:
            origin_asn = view.asn_of(route.origin)
            if (
                self.stub_filter
                and plan is not None
                and route.length == 1
                and not view.customers[route.origin]
                and route.origin in view.customers[node]
                and plan.origin_of(route.prefix) != origin_asn
            ):
                return True
            if node in deployers and self.authority is not None:
                key = (route.prefix, origin_asn)
                invalid = verdict_cache.get(key)
                if invalid is None:
                    invalid = (
                        self.authority.validate(route.prefix, origin_asn)
                        is ValidationState.INVALID
                    )
                    verdict_cache[key] = invalid
                if invalid:
                    return True
            for rule in rules_by_node.get(node, ()):
                if rule.rejects(route.prefix, origin_asn):
                    return True
            return False

        return rejects
