"""Incremental deployment strategies from Section V.

Each strategy answers "which ASes run origin validation / filtering?" and
returns a set of ASNs. The paper's ladder:

* **random-k** — "various random ASes are motivated to deploy BGP security
  on their own" (k = 100 and 500 of the transit ASes in the paper);
* **tier-1** — the 17 tier-1 ASes act alone;
* **degree tiers** — all ASes above a degree threshold: 62 ASes with
  degree ≥ 500, then 124 (≥300), 166 (≥200) and 299 (≥100).

Because the synthetic topology is ~1/10 the CAIDA snapshot, degree-tier
strategies are expressed primarily as *top-k by degree* with the paper's
counts, which selects the structurally analogous core sets; an absolute
``min_degree`` form is also provided for use with real CAIDA data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.topology.asgraph import ASGraph
from repro.topology.classify import find_tier1, transit_asns
from repro.util.rng import make_rng

__all__ = [
    "DeploymentStrategy",
    "no_deployment",
    "random_deployment",
    "tier1_deployment",
    "top_degree_deployment",
    "degree_threshold_deployment",
    "custom_deployment",
    "paper_ladder",
]


@dataclass(frozen=True)
class DeploymentStrategy:
    """A named set of deploying ASes."""

    name: str
    deployers: frozenset[int]

    def __len__(self) -> int:
        return len(self.deployers)

    def __contains__(self, asn: int) -> bool:
        return asn in self.deployers


def no_deployment() -> DeploymentStrategy:
    """The baseline: nobody blocks anything."""
    return DeploymentStrategy("baseline", frozenset())


def random_deployment(
    graph: ASGraph, count: int, *, seed: int = 0, transit_only: bool = True
) -> DeploymentStrategy:
    """*count* ASes picked uniformly at random (from the transit pool by
    default, matching the paper's random-100/random-500 runs)."""
    pool: Sequence[int] = sorted(transit_asns(graph) if transit_only else graph.asns())
    if count > len(pool):
        raise ValueError(f"cannot pick {count} from a pool of {len(pool)}")
    rng = make_rng(seed, "random-deployment", count)
    return DeploymentStrategy(
        f"random-{count}", frozenset(rng.sample(pool, count))
    )


def tier1_deployment(graph: ASGraph) -> DeploymentStrategy:
    """The tier-1 clique acting on its own."""
    tier1 = find_tier1(graph)
    return DeploymentStrategy(f"tier1-{len(tier1)}", tier1)


def top_degree_deployment(graph: ASGraph, count: int) -> DeploymentStrategy:
    """The *count* highest-degree ASes (the scaled form of the paper's
    degree-threshold tiers). Ties broken by ASN for determinism."""
    ranked = sorted(graph.asns(), key=lambda asn: (-graph.degree(asn), asn))
    return DeploymentStrategy(f"top-degree-{count}", frozenset(ranked[:count]))


def degree_threshold_deployment(graph: ASGraph, min_degree: int) -> DeploymentStrategy:
    """All ASes with degree ≥ *min_degree* (the paper's literal form, for
    full-scale CAIDA runs)."""
    chosen = frozenset(
        asn for asn in graph.asns() if graph.degree(asn) >= min_degree
    )
    return DeploymentStrategy(f"degree>={min_degree}", chosen)


def custom_deployment(name: str, asns: Iterable[int]) -> DeploymentStrategy:
    return DeploymentStrategy(name, frozenset(asns))


def paper_ladder(graph: ASGraph, *, seed: int = 0) -> list[DeploymentStrategy]:
    """The exact strategy sequence of Figs. 5 and 6.

    Baseline, random-100, random-500 (scaled to the transit pool when it is
    smaller than the paper's 6,318), tier-1, then the four degree tiers by
    the paper's counts: 62, 124, 166 and 299 ASes.
    """
    transit_pool = len(transit_asns(graph))
    scale = min(1.0, transit_pool / 6318)
    random_counts = [max(1, round(100 * scale) or 1), max(2, round(500 * scale))]
    ladder = [no_deployment()]
    for count in random_counts:
        ladder.append(random_deployment(graph, count, seed=seed))
    ladder.append(tier1_deployment(graph))
    for count in (62, 124, 166, 299):
        ladder.append(
            DeploymentStrategy(
                f"core-{count}",
                top_degree_deployment(graph, min(count, len(graph))).deployers,
            )
        )
    return ladder
