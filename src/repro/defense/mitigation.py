"""Reactive mitigation: what the victim does *after* detection fires.

The paper's taxonomy has three classes of defense — detection, **reactive
mitigation**, and proactive prevention (Section II, citing route
purge/promote). This module implements the two classic reactive moves so
the full taxonomy is exercisable:

* **purge** — alerted ASes (the detector's subscribers) drop the bogus
  route and refuse to re-accept it; the network re-converges with those
  ASes acting as blockers. Effectiveness depends entirely on *who*
  responds — the same critical-mass story as proactive deployment, minus
  the luxury of time.
* **deaggregation** ("promote") — the victim re-announces more-specifics
  of its own space, winning traffic back through longest-prefix match
  (the counter actually used in famous hijack incidents). Its limits are
  faithful too: recovery covers only the deaggregated span, and an
  attacker can escalate by announcing the same more-specifics, where the
  usual tie rules apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.prefixes.prefix import Prefix

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.attacks.lab import HijackLab
    from repro.attacks.scenario import AttackOutcome

__all__ = [
    "PurgeResult",
    "purge_response",
    "DeaggregationResult",
    "deaggregation_response",
]


@dataclass(frozen=True)
class PurgeResult:
    """Pollution before and after alerted ASes purge the bogus route."""

    outcome_before: AttackOutcome
    outcome_after: AttackOutcome
    responders: frozenset[int]

    @property
    def recovered_asns(self) -> frozenset[int]:
        return self.outcome_before.polluted_asns - self.outcome_after.polluted_asns

    @property
    def residual_pollution(self) -> int:
        return self.outcome_after.pollution_count

    def effectiveness(self) -> float:
        before = self.outcome_before.pollution_count
        return len(self.recovered_asns) / before if before else 0.0


def purge_response(
    lab: HijackLab,
    outcome: AttackOutcome,
    responders: Iterable[int],
) -> PurgeResult:
    """Re-converge the attack with *responders* rejecting the bogus route.

    Models the steady state after a purge: responding ASes drop the
    hijacked path and ignore re-announcements (operationally: a manual
    filter installed on alert). Non-responders keep believing whatever
    still reaches them.
    """
    from repro.defense.deployment import FilterRule

    scenario = outcome.scenario
    rules = tuple(
        FilterRule(
            filtering_asn=asn,
            prefix=scenario.prefix,
            allowed_origins=frozenset({scenario.target_asn}),
        )
        for asn in sorted(set(responders))
    )
    responding_lab = lab.with_defense(lab.defense.with_filters(*rules))
    after = responding_lab.origin_hijack(
        scenario.target_asn, scenario.attacker_asn, prefix=scenario.prefix
    )
    return PurgeResult(
        outcome_before=outcome,
        outcome_after=after,
        responders=frozenset(rule.filtering_asn for rule in rules),
    )


@dataclass(frozen=True)
class DeaggregationResult:
    """Outcome of the victim's more-specific counter-announcement."""

    parent_outcome: AttackOutcome
    announced: tuple[Prefix, ...]
    recovered_asns: frozenset[int]
    contested_asns: frozenset[int]

    @property
    def recovery_fraction(self) -> float:
        """Share of the originally polluted set won back by LPM."""
        polluted = self.parent_outcome.polluted_asns
        return len(self.recovered_asns & polluted) / len(polluted) if polluted else 0.0


def deaggregation_response(
    lab: HijackLab,
    outcome: AttackOutcome,
    *,
    extra_bits: int = 1,
    attacker_escalates: bool = False,
) -> DeaggregationResult:
    """The victim announces more-specifics of the hijacked prefix.

    Each more-specific is a fresh NLRI with no competitor, so every AS the
    announcement reaches routes the deaggregated span back to the victim —
    regardless of its (still bogus) route for the parent prefix. With
    ``attacker_escalates`` the hijacker announces the same more-specifics
    and the contest replays per sub-prefix (victim first, as the incumbent
    defender re-announcing its own space).
    """
    scenario = outcome.scenario
    parent = scenario.prefix
    if parent.length + extra_bits > 32:
        raise ValueError(f"cannot deaggregate /{parent.length} by {extra_bits} bits")
    view = lab.view
    target_node = view.node_of(scenario.target_asn)
    attacker_node = view.node_of(scenario.attacker_asn)
    subprefixes: Sequence[Prefix] = tuple(parent.subnets(parent.length + extra_bits))

    recovered: set[int] | None = None
    contested: set[int] = set()
    for subprefix in subprefixes:
        blocked = lab.defense.blocking_nodes(view, subprefix, scenario.attacker_asn)
        victim_state = lab.engine.converge(target_node)
        if attacker_escalates:
            final = lab.engine.converge(
                attacker_node,
                base=victim_state,
                blocked=blocked,
                filter_first_hop_providers=(
                    lab.defense.stub_filter
                    and not lab.graph.customers(scenario.attacker_asn)
                ),
            )
            winners = view.expand(final.holders_of(target_node))
            contested |= set(view.expand(final.holders_of(attacker_node)))
        else:
            winners = view.expand(victim_state.holders_of(target_node))
        recovered = set(winners) if recovered is None else recovered & set(winners)
    return DeaggregationResult(
        parent_outcome=outcome,
        announced=tuple(subprefixes),
        recovered_asns=frozenset(recovered or set()),
        contested_asns=frozenset(contested),
    )
