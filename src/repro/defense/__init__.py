"""Defensive deployments: strategies, origin validation, prefix filters."""

from repro.defense.deployment import Defense, FilterRule
from repro.defense.mitigation import (
    DeaggregationResult,
    PurgeResult,
    deaggregation_response,
    purge_response,
)
from repro.defense.strategies import (
    DeploymentStrategy,
    custom_deployment,
    degree_threshold_deployment,
    no_deployment,
    paper_ladder,
    random_deployment,
    tier1_deployment,
    top_degree_deployment,
)

__all__ = [
    "DeaggregationResult",
    "Defense",
    "DeploymentStrategy",
    "FilterRule",
    "PurgeResult",
    "deaggregation_response",
    "purge_response",
    "custom_deployment",
    "degree_threshold_deployment",
    "no_deployment",
    "paper_ladder",
    "random_deployment",
    "tier1_deployment",
    "top_degree_deployment",
]
