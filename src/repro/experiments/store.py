"""Persistence of experiment results ("Resulting statistics are written
into a database", Section III).

:class:`ResultStore` is a small sqlite3 wrapper: one ``runs`` table of
experiment executions (with JSON summaries and parameters) plus a
``points`` table holding every curve point, so past runs remain queryable
— comparing a defense rollout before/after a topology change is a SQL
query away.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.config import ExperimentResult

__all__ = ["ResultStore", "StoredRun"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment_id TEXT NOT NULL,
    title TEXT NOT NULL,
    params TEXT NOT NULL,
    summary TEXT NOT NULL,
    created_at TEXT NOT NULL DEFAULT (datetime('now'))
);
CREATE TABLE IF NOT EXISTS points (
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    series TEXT NOT NULL,
    x REAL NOT NULL,
    y REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS table_rows (
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    name TEXT NOT NULL,
    row TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_experiment ON runs(experiment_id);
CREATE INDEX IF NOT EXISTS idx_points_run ON points(run_id, series);
"""


@dataclass(frozen=True)
class StoredRun:
    """A persisted experiment execution."""

    run_id: int
    experiment_id: str
    title: str
    params: dict
    summary: dict
    created_at: str


class ResultStore:
    """Sqlite-backed storage for :class:`ExperimentResult` objects."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        if path != ":memory:":
            Path(path).parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(str(path))
        self._connection.executescript(_SCHEMA)

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing -----------------------------------------------------------------

    def record(self, result: ExperimentResult, *, params: dict | None = None) -> int:
        """Persist a result; returns the run id."""
        cursor = self._connection.execute(
            "INSERT INTO runs (experiment_id, title, params, summary) VALUES (?, ?, ?, ?)",
            (
                result.experiment_id,
                result.title,
                json.dumps(params or {}, sort_keys=True, default=str),
                json.dumps(result.summary, sort_keys=True, default=str),
            ),
        )
        run_id = int(cursor.lastrowid or 0)
        self._connection.executemany(
            "INSERT INTO points (run_id, series, x, y) VALUES (?, ?, ?, ?)",
            [
                (run_id, label, float(x), float(y))
                for label, points in result.series.items()
                for x, y in points
            ],
        )
        self._connection.executemany(
            "INSERT INTO table_rows (run_id, name, row) VALUES (?, ?, ?)",
            [
                (run_id, name, json.dumps(row, sort_keys=True, default=str))
                for name, rows in result.tables.items()
                for row in rows
            ],
        )
        self._connection.commit()
        return run_id

    # -- reading -------------------------------------------------------------------

    def _to_run(self, row: tuple) -> StoredRun:
        run_id, experiment_id, title, params, summary, created_at = row
        return StoredRun(
            run_id=run_id,
            experiment_id=experiment_id,
            title=title,
            params=json.loads(params),
            summary=json.loads(summary),
            created_at=created_at,
        )

    def latest(self, experiment_id: str) -> StoredRun | None:
        row = self._connection.execute(
            "SELECT run_id, experiment_id, title, params, summary, created_at "
            "FROM runs WHERE experiment_id = ? ORDER BY run_id DESC LIMIT 1",
            (experiment_id,),
        ).fetchone()
        return self._to_run(row) if row else None

    def history(self, experiment_id: str) -> list[StoredRun]:
        rows = self._connection.execute(
            "SELECT run_id, experiment_id, title, params, summary, created_at "
            "FROM runs WHERE experiment_id = ? ORDER BY run_id",
            (experiment_id,),
        ).fetchall()
        return [self._to_run(row) for row in rows]

    def series(self, run_id: int, label: str) -> list[tuple[float, float]]:
        rows = self._connection.execute(
            "SELECT x, y FROM points WHERE run_id = ? AND series = ? ORDER BY x",
            (run_id, label),
        ).fetchall()
        return [(x, y) for x, y in rows]

    def series_labels(self, run_id: int) -> list[str]:
        rows = self._connection.execute(
            "SELECT DISTINCT series FROM points WHERE run_id = ? ORDER BY series",
            (run_id,),
        ).fetchall()
        return [label for (label,) in rows]

    def table(self, run_id: int, name: str) -> list[dict]:
        rows = self._connection.execute(
            "SELECT row FROM table_rows WHERE run_id = ? AND name = ?",
            (run_id, name),
        ).fetchall()
        return [json.loads(row) for (row,) in rows]
