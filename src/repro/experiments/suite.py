"""Drivers for every figure and table in the paper's evaluation.

:class:`ExperimentSuite` materializes the whole evaluation pipeline once —
topology, address plan, role resolution, registry publication — and
exposes one method per paper artifact (``fig1`` … ``fig7``, ``tab1`` …
``tab5``, the Section VII experiments ``nz_rehoming``/``nz_filter``).
Intermediate products (baseline sweeps, the random-attack workload) are
memoized so regenerating all artifacts costs little more than the most
expensive one.

Each method returns an :class:`~repro.experiments.config.ExperimentResult`
carrying the same rows/series the paper reports; charts are rendered to
SVG under the configured output directory.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

from repro.attacks.lab import HijackLab
from repro.attacks.scenario import AttackOutcome
from repro.core.deployment_analysis import (
    DeploymentComparison,
    compare_strategies,
    top_potent_attacks,
)
from repro.core.detection_analysis import (
    DetectorComparison,
    compare_detectors,
    paper_probe_sets,
)
from repro.core.roles import RoleCatalog, resolve_roles
from repro.core.selfinterest import (
    apply_rehoming,
    plan_rehoming,
    regional_attack_study,
)
from repro.core.vulnerability import VulnerabilityProfile
from repro.defense.deployment import Defense, FilterRule
from repro.defense.strategies import paper_ladder
from repro.experiments.config import ExperimentConfig, ExperimentResult
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.registry.publication import PublicationState
from repro.topology.generator import generate_topology
from repro.viz.charts import Series, bar_line_chart, line_chart
from repro.viz.layout import PolarLayout
from repro.viz.polar import PolarRenderer, render_attack_frames

__all__ = ["ExperimentSuite"]


class ExperimentSuite:
    """All paper experiments over one configured topology."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        metrics: Metrics | None = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self.metrics = metrics if metrics is not None else NULL_METRICS
        with self.metrics.span("suite.topology"):
            self.graph = generate_topology(self.config.topology)
        # The lab-level worker count flows into every sweep the suite (and
        # its with_defense clones) runs; results are worker-invariant.
        self.lab = HijackLab(
            self.graph,
            seed=self.config.seed,
            workers=self.config.workers,
            validate=self.config.validate,
            metrics=self.metrics,
            backend=self.config.backend,
            batch_origins=self.config.batch_origins,
        )
        self.roles: RoleCatalog = resolve_roles(self.graph)
        self.publication = PublicationState.full(self.lab.plan)
        self.authority = self.publication.table()
        self._baseline_sweeps: dict[tuple[int, bool], dict[int, AttackOutcome]] = {}
        self._workload: list[AttackOutcome] | None = None
        self._fig7: DetectorComparison | None = None
        self._ladder = None

    # -- shared intermediates ----------------------------------------------------

    def _sweep(self, target_asn: int, *, transit_only: bool) -> dict[int, AttackOutcome]:
        key = (target_asn, transit_only)
        cached = self._baseline_sweeps.get(key)
        if cached is None:
            cached = self.lab.sweep_target(
                target_asn,
                transit_only=transit_only,
                sample=self.config.attacker_sample,
                seed=self.config.seed,
            )
            self._baseline_sweeps[key] = cached
        return cached

    def _profile(self, target_asn: int, label: str, *, transit_only: bool) -> VulnerabilityProfile:
        return VulnerabilityProfile.from_outcomes(
            target_asn,
            self._sweep(target_asn, transit_only=transit_only).values(),
            label=label,
        )

    def ladder(self):
        if self._ladder is None:
            self._ladder = paper_ladder(self.graph, seed=self.config.seed)
        return self._ladder

    def detection_workload(self) -> list[AttackOutcome]:
        if self._workload is None:
            self._workload = self.lab.random_attacks(
                self.config.detection_attacks, transit_only=True, seed=self.config.seed
            )
        return self._workload

    def fig7_comparison(self) -> DetectorComparison:
        if self._fig7 is None:
            self._fig7 = compare_detectors(
                self.lab,
                paper_probe_sets(self.lab, seed=self.config.seed),
                workload=self.detection_workload(),
            )
        return self._fig7

    def _chart_path(self, name: str) -> Path:
        return Path(self.config.output_dir) / "figures" / f"{name}.svg"

    @staticmethod
    def _curve_points(profile: VulnerabilityProfile) -> list[tuple[float, float]]:
        return [(float(x), float(y)) for x, y in profile.curve.points()]

    def _profile_chart(
        self,
        experiment_id: str,
        title: str,
        profiles: list[VulnerabilityProfile],
    ) -> ExperimentResult:
        result = ExperimentResult(experiment_id=experiment_id, title=title)
        for profile in profiles:
            result.series[profile.label] = self._curve_points(profile)
            result.summary[profile.label] = {
                "target": profile.target_asn,
                **profile.summary.as_dict(),
            }
        chart = line_chart(
            [Series.from_pairs(p.label, self._curve_points(p)) for p in profiles],
            title=title,
            x_label="minimum polluted ASes",
            y_label="attackers achieving at least that pollution",
        )
        result.artifacts.append(chart.save(self._chart_path(experiment_id)))
        return result

    # -- FIG1: polar propagation movie --------------------------------------------

    def fig1(self) -> ExperimentResult:
        """Fig. 1: an aggressive low-depth attacker hijacks the deepest,
        most vulnerable target; frames per generation as SVG."""
        attacker = self.roles.aggressive_attacker
        target = self.roles.deep_target
        legit_report, attack_report = self.lab.animate(target, attacker)
        outcome = self.lab.origin_hijack(target, attacker)
        layout = PolarLayout.compute(self.graph, plan=self.lab.plan, view=self.lab.view)
        renderer = PolarRenderer(layout=layout, view=self.lab.view)
        frames = render_attack_frames(
            renderer,
            attack_report,
            Path(self.config.output_dir) / "figures" / "fig1",
            attacker_asn=attacker,
            target_asn=target,
        )
        result = ExperimentResult(
            experiment_id="fig1",
            title="Polar propagation of an origin hijack",
            summary={
                "attacker": attacker,
                "target": target,
                "generations": attack_report.generations,
                "paper_generations": "5-10",
                "polluted_ases": outcome.pollution_count,
                "address_space_fraction": outcome.address_fraction,
                "paper_address_space_fraction": 0.96,
            },
        )
        result.artifacts.extend(frames)
        return result

    # -- FIG2/FIG3: vulnerability by depth -----------------------------------------

    def fig2(self) -> ExperimentResult:
        """Fig. 2: CCDF vulnerability curves for targets at increasing depth
        inside the tier-1 hierarchy (worst case: every AS attacks)."""
        profiles = [
            self._profile(asn, label, transit_only=False)
            for label, asn in self.roles.fig2_targets().items()
        ]
        result = self._profile_chart(
            "fig2", "Vulnerability by depth (tier-1 hierarchy)", profiles
        )
        by_label = {p.label: p.summary.mean for p in profiles}
        tier1 = by_label["tier-1"]
        depth1 = (
            by_label["depth-1 single-homed stub"],
            by_label["depth-1 multi-homed stub"],
        )
        depth2 = by_label["depth-2 stub"]
        deep = max(
            mean for label, mean in by_label.items()
            if label.startswith("depth-") and label.endswith("AS")
        )
        # The paper's ordering: tier-1 < depth-1 (multi-homing is only a
        # slight improvement within the pair) < depth-2 < the deep target.
        result.summary["depth_ordering_holds"] = (
            tier1 < min(depth1)
            and max(depth1) <= depth2 * 1.05
            and depth2 <= deep * 1.05
        )
        return result

    def fig3(self) -> ExperimentResult:
        """Fig. 3: the same roles under a tier-2 hierarchy; the curves line
        up with Fig. 2's, motivating the redefined depth metric."""
        profiles = [
            self._profile(asn, label, transit_only=False)
            for label, asn in self.roles.fig3_targets().items()
        ]
        return self._profile_chart(
            "fig3", "Vulnerability by depth (tier-2 hierarchy)", profiles
        )

    # -- FIG4: defensive stub filtering ------------------------------------------------

    def fig4(self) -> ExperimentResult:
        """Fig. 4: worst-case vs stub-filtered (transit-only attackers) for
        the depth-1 and deep targets; filtering scales curves down but
        preserves their shape.

        The worst-case sweep is stratified: it reuses the transit-only
        attacker sample and adds sampled stub attackers, so the filtered
        outcome set is a strict subset of the worst-case one (as it is in
        the paper's exhaustive sweeps).
        """
        from repro.topology.classify import stub_asns

        stubs = sorted(stub_asns(self.graph))

        def stratified(target_asn: int, label_all: str, label_filtered: str):
            transit_outcomes = self._sweep(target_asn, transit_only=True)
            stub_sample = self.config.attacker_sample
            stub_outcomes = self.lab.sweep_target(
                target_asn,
                attackers=stubs,
                sample=stub_sample,
                seed=self.config.seed,
            )
            combined = {**stub_outcomes, **transit_outcomes}
            return (
                VulnerabilityProfile.from_outcomes(
                    target_asn, combined.values(), label=label_all
                ),
                VulnerabilityProfile.from_outcomes(
                    target_asn, transit_outcomes.values(), label=label_filtered
                ),
            )

        depth1_all, depth1_filtered = stratified(
            self.roles.depth1_multi_stub, "depth-1, all attackers",
            "depth-1, stub-filtered",
        )
        deep_all, deep_filtered = stratified(
            self.roles.deep_target, "deep target, all attackers",
            "deep target, stub-filtered",
        )
        profiles = [depth1_all, depth1_filtered, deep_all, deep_filtered]
        result = self._profile_chart(
            "fig4", "Effect of defensive stub filters", profiles
        )
        result.summary["shape_preserved"] = (
            depth1_filtered.summary.maximum <= depth1_all.summary.maximum
            and deep_filtered.summary.maximum <= deep_all.summary.maximum
            and depth1_filtered.summary.count <= depth1_all.summary.count
        )
        return result

    # -- FIG5/FIG6: incremental deployment ------------------------------------------------

    def _deployment_figure(
        self, experiment_id: str, title: str, target_asn: int
    ) -> tuple[ExperimentResult, DeploymentComparison]:
        comparison = compare_strategies(
            self.lab,
            target_asn,
            self.ladder(),
            self.authority,
            transit_only=True,
            sample=self.config.attacker_sample,
            seed=self.config.seed,
        )
        result = ExperimentResult(experiment_id=experiment_id, title=title)
        profiles = []
        for evaluation in comparison.evaluations:
            profile = evaluation.profile
            profiles.append(profile)
            result.series[profile.label] = self._curve_points(profile)
            result.summary[profile.label] = {
                "deployers": len(evaluation.strategy),
                **profile.summary.as_dict(),
            }
        crossover = comparison.crossover()
        result.summary["crossover_strategy"] = (
            crossover.strategy.name if crossover else None
        )
        result.summary["improvement_factors"] = comparison.improvement_factors()
        chart = line_chart(
            [Series.from_pairs(p.label, self._curve_points(p)) for p in profiles],
            title=title,
            x_label="minimum polluted ASes",
            y_label="attackers achieving at least that pollution",
        )
        result.artifacts.append(chart.save(self._chart_path(experiment_id)))
        return result, comparison

    def fig5(self) -> ExperimentResult:
        """Fig. 5: the deployment ladder against the attack-resistant
        depth-1 target (AS98 analogue)."""
        result, _ = self._deployment_figure(
            "fig5",
            "Incremental filtering — resistant depth-1 target",
            self.roles.depth1_multi_stub,
        )
        return result

    def fig6(self) -> ExperimentResult:
        """Fig. 6: the same ladder against the very vulnerable deep target
        (AS55857 analogue)."""
        result, _ = self._deployment_figure(
            "fig6",
            "Incremental filtering — vulnerable deep target",
            self.roles.deep_target,
        )
        return result

    # -- TAB1/TAB2: still-potent attacks --------------------------------------------------

    def _potent_table(self, experiment_id: str, target_asn: int, label: str) -> ExperimentResult:
        strategy = self.ladder()[-1]  # the largest deployment (core-299)
        attacks = top_potent_attacks(
            self.lab,
            target_asn,
            strategy,
            self.authority,
            transit_only=True,
            sample=self.config.attacker_sample,
            seed=self.config.seed,
        )
        result = ExperimentResult(
            experiment_id=experiment_id,
            title=f"Top still-potent attacks vs {label} under {strategy.name}",
            summary={"target": target_asn, "strategy": strategy.name},
            tables={"potent_attacks": [asdict(attack) for attack in attacks]},
        )
        return result

    def tab1(self) -> ExperimentResult:
        """Section V table: top-5 attacks still potent against the
        resistant target at maximum deployment."""
        return self._potent_table("tab1", self.roles.depth1_multi_stub, "depth-1 target")

    def tab2(self) -> ExperimentResult:
        """Section V table: the same for the vulnerable deep target."""
        return self._potent_table("tab2", self.roles.deep_target, "deep target")

    # -- FIG7 + TAB3..5: detection -----------------------------------------------------------

    def fig7(self) -> ExperimentResult:
        """Fig. 7: three detector configurations over one random-attack
        workload; histogram of probes triggered + mean attack size."""
        comparison = self.fig7_comparison()
        result = ExperimentResult(
            experiment_id="fig7",
            title="Detector configurations vs random attacks",
            summary={
                "attacks": comparison.workload_size,
                "paper_miss_rates": {
                    "tier1": 0.34,
                    "bgpmon": 0.11,
                    "top-degree-62": 0.03,
                },
            },
        )
        for study in comparison.studies:
            name = study.detector.probes.name
            histogram = study.histogram()
            means = study.mean_size_by_probe_count()
            result.series[f"{name}/histogram"] = [
                (float(bucket), float(count)) for bucket, count in histogram.items()
            ]
            result.series[f"{name}/mean_size"] = [
                (float(bucket), float(mean)) for bucket, mean in means.items()
            ]
            result.summary[name] = study.undetected_summary()
            chart = bar_line_chart(
                histogram,
                means,
                title=f"Detection with probes: {name}",
                x_label="number of probes triggered (0 = undetected)",
                bar_label="attacks",
                line_label="mean attack size",
            )
            result.artifacts.append(self._chart_path(f"fig7_{name}"))
            chart.save(result.artifacts[-1])
        result.summary["ordering_matches_paper"] = (
            comparison.worst().detector.probes.name.startswith("tier1")
            and comparison.best().detector.probes.name.startswith("top-degree")
        )
        return result

    def _undetected_table(self, experiment_id: str, index: int) -> ExperimentResult:
        study = self.fig7_comparison().studies[index]
        rows = [asdict(attack) for attack in study.top_undetected()]
        return ExperimentResult(
            experiment_id=experiment_id,
            title=f"Top undetected attacks — {study.detector.probes.name}",
            summary=study.undetected_summary(),
            tables={"undetected": rows},
        )

    def tab3(self) -> ExperimentResult:
        """Section VI: top undetected attacks with 17 tier-1 probes."""
        return self._undetected_table("tab3", 0)

    def tab4(self) -> ExperimentResult:
        """Section VI: top undetected attacks with the BGPmon-like probes."""
        return self._undetected_table("tab4", 1)

    def tab5(self) -> ExperimentResult:
        """Section VI: top undetected attacks with the 62 top-degree probes."""
        return self._undetected_table("tab5", 2)

    # -- Section VII: the New-Zealand-style experiments ---------------------------------------

    def _nz_region(self) -> str:
        regions = self.graph.regions()
        return min(regions, key=lambda region: len(regions[region]))

    def nz_rehoming(self) -> ExperimentResult:
        """EXP-NZ1: re-home the deep regional target up two provider levels
        and measure average regional pollution before/after."""
        region = self._nz_region()
        target = self.roles.deep_target
        if self.graph.region_of(target) != region:
            members = self.graph.regions()[region]
            from repro.topology.classify import effective_depth

            depth = effective_depth(self.graph)
            target = max(members, key=lambda asn: (depth.get(asn, 0), -asn))
        before = regional_attack_study(
            self.lab, target, region,
            external_sample=self.config.external_sample, seed=self.config.seed,
        )
        plan = plan_rehoming(self.graph, target)
        after = before
        if plan is not None:
            rehomed_lab = HijackLab(
                apply_rehoming(self.graph, plan),
                plan=self.lab.plan, policy=self.lab.policy, seed=self.config.seed,
                workers=self.config.workers, validate=self.config.validate,
                metrics=self.metrics, backend=self.config.backend,
                batch_origins=self.config.batch_origins,
            )
            after = regional_attack_study(
                rehomed_lab, target, region,
                external_sample=self.config.external_sample, seed=self.config.seed,
            )
        return ExperimentResult(
            experiment_id="nz_rehoming",
            title="Section VII: re-homing the vulnerable regional target",
            summary={
                "region": region,
                "region_size": before.region_size,
                "target": target,
                "rehoming": asdict(plan) if plan else None,
                "regional_fraction_before": before.regional_fraction,
                "regional_fraction_after": after.regional_fraction,
                "external_fraction_before": before.external_fraction,
                "external_fraction_after": after.external_fraction,
                "paper": {
                    "regional_before": 0.60, "regional_after": 0.25,
                    "external_before": 0.15, "external_after": 0.06,
                },
            },
        )

    def nz_filter(self) -> ExperimentResult:
        """EXP-NZ2: a single prefix filter at the regional hub."""
        region = self._nz_region()
        target = self.roles.deep_target
        from repro.core.selfinterest import assess_region

        assessment = assess_region(self.graph, region)
        if self.graph.region_of(target) != region:
            target = assessment.deepest()
        rule = FilterRule(
            filtering_asn=assessment.hub_asn,
            prefix=self.lab.target_prefix(target),
            allowed_origins=frozenset({target}),
        )
        before = regional_attack_study(
            self.lab, target, region,
            external_sample=self.config.external_sample, seed=self.config.seed,
        )
        filtered_lab = self.lab.with_defense(Defense(manual_filters=(rule,)))
        after = regional_attack_study(
            filtered_lab, target, region,
            external_sample=self.config.external_sample, seed=self.config.seed,
        )
        return ExperimentResult(
            experiment_id="nz_filter",
            title="Section VII: one prefix filter at the regional hub",
            summary={
                "region": region,
                "target": target,
                "hub": assessment.hub_asn,
                "regional_fraction_before": before.regional_fraction,
                "regional_fraction_after": after.regional_fraction,
                "external_fraction_before": before.external_fraction,
                "external_fraction_after": after.external_fraction,
                "paper": {"regional_after": 0.40, "external_after": 0.14},
            },
        )

    # -- extension: sub-prefix hijacks ----------------------------------------------------------

    def ext_subprefix(self) -> ExperimentResult:
        """EXT-SUB: sub-prefix vs origin hijacks (the paper's future work).

        A more-specific announcement has no legitimate competitor, so
        longest-prefix match hands the attacker *everything it reaches* —
        filtering by route preference cannot help, only origin validation
        (with exact-length ROAs / RLOCKed reverse DNS) can. This extension
        quantifies both statements on the same attacker sample.
        """
        target = self.roles.deep_target
        rng_sample = self.config.attacker_sample or 200
        attackers = self.lab.sweep_target(
            target, transit_only=True,
            sample=min(rng_sample, 300), seed=self.config.seed,
        )
        origin_counts = []
        sub_counts = []
        defended = self.lab.with_defense(
            Defense(
                strategy=self.ladder()[-1],  # core-299
                authority=self.authority,
            )
        )
        blocked_sub_counts = []
        for attacker_asn, outcome in attackers.items():
            origin_counts.append(outcome.pollution_count)
            sub = self.lab.subprefix_hijack(target, attacker_asn)
            sub_counts.append(sub.pollution_count)
            blocked_sub_counts.append(
                defended.subprefix_hijack(target, attacker_asn).pollution_count
            )
        from repro.util.ccdf import describe

        origin_stats = describe(origin_counts)
        sub_stats = describe(sub_counts)
        blocked_stats = describe(blocked_sub_counts)
        dominance = sum(
            1 for o, s in zip(origin_counts, sub_counts) if s >= o
        ) / max(1, len(origin_counts))
        return ExperimentResult(
            experiment_id="ext_subprefix",
            title="Extension: sub-prefix hijacks vs origin hijacks",
            summary={
                "target": target,
                "attackers": len(origin_counts),
                "origin_hijack": origin_stats.as_dict(),
                "subprefix_hijack": sub_stats.as_dict(),
                "subprefix_with_core299_rov": blocked_stats.as_dict(),
                "subprefix_dominates_fraction": dominance,
            },
        )

    # -- extension: the full attack taxonomy matrix ---------------------------------------------

    def attack_matrix(self) -> ExperimentResult:
        """EXT-MATRIX: every grid cell of the attack taxonomy against the
        deployment ladder (docs/attacks.md walks the expected shape).

        Each of the 13 (prefix axis × path axis) cells is swept with the
        same ``matrix_attacks`` random transit attackers against the deep
        target, under three deployment rungs (undefended, the smallest
        ladder rung, the largest). Two detector configurations judge every
        outcome — ROV only (``roa``) and full path-aware (``full``: ROAs +
        declared neighbors + topology) — so the table quantifies both the
        pollution each defense prevents and the cells origin validation
        provably cannot classify (type-1's valid claimed origin).
        """
        from repro.detection.detector import HijackDetector
        from repro.detection.probes import top_degree_probes
        from repro.detection.taxonomy import grid_cells
        from repro.registry.neighbors import NeighborRegistry

        target = self.roles.deep_target
        sample = self.config.matrix_attacks
        ladder = self.ladder()
        rungs: list = [None, ladder[0], ladder[-1]]
        neighbors = NeighborRegistry.from_graph(self.graph)
        probes = top_degree_probes(self.graph, count=62)
        detectors = {
            "roa": HijackDetector(probes=probes, authority=self.authority),
            "full": HijackDetector(
                probes=probes, authority=self.authority,
                neighbors=neighbors, relationships=self.graph,
            ),
        }
        rows: list[dict[str, object]] = []
        for kind, path_kind in grid_cells():
            for rung in rungs:
                defense = (
                    Defense()
                    if rung is None
                    else Defense(strategy=rung, authority=self.authority)
                )
                lab = self.lab.with_defense(defense)
                outcomes = lab.sweep_target(
                    target,
                    transit_only=True,
                    sample=sample,
                    seed=self.config.seed,
                    kind=kind,
                    path_kind=path_kind,
                    forged_depth=2,
                )
                launched = [o for o in outcomes.values() if o.claimed_path]
                pollution = [o.pollution_count for o in launched]
                mean_pollution = (
                    sum(pollution) / len(pollution) if pollution else 0.0
                )
                row: dict[str, object] = {
                    "kind": kind.value,
                    "path_kind": path_kind.value,
                    "strategy": rung.name if rung is not None else "none",
                    "attacks": len(outcomes),
                    "launched": len(launched),
                    "mean_pollution": round(mean_pollution, 2),
                }
                for name, detector in detectors.items():
                    reports = [detector.observe(o) for o in launched]
                    detected = sum(1 for r in reports if r.detected)
                    row[f"detected_{name}"] = (
                        round(detected / len(reports), 3) if reports else 0.0
                    )
                rows.append(row)
        result = ExperimentResult(
            experiment_id="attack_matrix",
            title="Extension: attack taxonomy × deployment matrix",
            summary={
                "target": target,
                "cells": len(grid_cells()),
                "attacks_per_cell": sample,
                "strategies": [
                    "none" if rung is None else rung.name for rung in rungs
                ],
            },
            tables={"matrix": rows},
        )
        by_cell = {
            (row["kind"], row["path_kind"], row["strategy"]): row for row in rows
        }
        undefended_origin = by_cell[("origin", "type-1", "none")]
        # The headline claim: ROV cannot classify a type-1 origin hijack
        # (valid claimed origin), the path-aware detector can.
        result.summary["rov_type1_blind_spot"] = bool(
            undefended_origin["launched"]
            and undefended_origin["detected_roa"] < undefended_origin["detected_full"]
        )
        return result

    # -- extension: the always-on monitoring service --------------------------------------------

    def service_latency(self) -> ExperimentResult:
        """EXT-SERVICE: the live monitoring daemon vs the offline monitor.

        The full 13-cell taxonomy campaign against the deep target is
        serialized to the JSONL wire format and pushed through the
        multi-tenant :class:`~repro.service.daemon.MonitorService` core
        (ingest → shard-routed replay → verdict poll) at 1, 2 and 4
        shards, measuring ingest throughput and the wall-clock
        arrive→verdict latency per shard count. Every run is then
        checked for **parity** against the offline reference — one
        :class:`~repro.stream.replay.StreamReplayer` +
        :class:`~repro.stream.monitor.OnlineMonitor` with the same
        probes and the full path-aware detector — on the
        (prefix, verdict, origins, invalid origins, virtual latency)
        tuple set: sharding and the service plumbing must change
        wall-clock only, never verdicts.
        """
        import json as _json
        import time as _time

        from repro.detection.detector import HijackDetector
        from repro.detection.probes import top_degree_probes
        from repro.detection.taxonomy import grid_cells
        from repro.registry.neighbors import NeighborRegistry
        from repro.service.daemon import MonitorService
        from repro.service.tenants import LatencyStats
        from repro.stream.events import RoaPublish, compile_scenario, event_to_dict
        from repro.stream.monitor import OnlineMonitor
        from repro.stream.replay import StreamReplayer
        from repro.util.rng import make_rng

        target = self.roles.deep_target
        probes = top_degree_probes(self.graph, count=62)
        rng = make_rng(self.config.seed, "service-latency")
        target_node = self.lab.view.node_of(target)
        pool = [
            asn
            for asn in self.lab.attacker_pool(transit_only=True)
            if self.lab.view.node_of(asn) != target_node
        ]
        attackers = rng.sample(pool, min(len(pool), len(grid_cells())))

        events = []
        for index, (kind, path_kind) in enumerate(grid_cells()):
            scenario = self.lab.build_scenario(
                target,
                attackers[index % len(attackers)],
                kind=kind,
                path_kind=path_kind,
            )
            events.extend(
                compile_scenario(scenario, start=float(index * 4), dwell=2.0)
            )
        events.sort(key=lambda event: event.at)
        lines = [
            _json.dumps(event_to_dict(event), sort_keys=True, separators=(",", ":"))
            for event in events
        ]
        victim_prefix = self.lab.target_prefix(target)

        # The offline reference: one replayer, one monitor, the same
        # full-ladder detector, fed the tenant's ROA before the stream.
        reference = StreamReplayer(self.lab, metrics=self.metrics)
        reference.monitor = OnlineMonitor(
            self.lab.view,
            HijackDetector(
                probes,
                authority=reference.authority,
                neighbors=NeighborRegistry.from_graph(self.graph),
                relationships=self.graph,
            ),
            metrics=self.metrics,
        )
        reference.submit(RoaPublish(at=0.0, prefix=victim_prefix, origin_asn=target))
        reference.run(events)
        reference_key = frozenset(
            (
                str(alarm.prefix), alarm.verdict, alarm.origins,
                alarm.invalid_origins, alarm.latency_time,
            )
            for alarm in reference.monitor.alarms
        )

        rows: list[dict[str, object]] = []
        for shards in (1, 2, 4):
            service = MonitorService(
                self.lab, shards=shards, probes=probes, metrics=self.metrics
            )
            service.register("victim", victim_prefix, target)
            latencies = LatencyStats()
            started = _time.perf_counter()
            for line in lines:
                arrived = _time.perf_counter()
                service.ingest_line(line)
                for _ in service.poll():
                    latencies.add(_time.perf_counter() - arrived)
            elapsed = _time.perf_counter() - started
            service_key = frozenset(
                (
                    str(v.alarm.prefix), v.alarm.verdict, v.alarm.origins,
                    v.alarm.invalid_origins, v.alarm.latency_time,
                )
                for v in service.verdicts
            )
            rows.append({
                "shards": shards,
                "events_per_s": round(
                    service.plane.ingested / max(elapsed, 1e-9), 1
                ),
                "verdicts": len(service.verdicts),
                "latency_p50_ms": round(
                    (latencies.percentile(0.50) or 0.0) * 1000, 3
                ),
                "latency_p95_ms": round(
                    (latencies.percentile(0.95) or 0.0) * 1000, 3
                ),
                "parity_with_offline": service_key == reference_key,
            })
        return ExperimentResult(
            experiment_id="service_latency",
            title="Extension: always-on service vs offline monitor",
            summary={
                "target": target,
                "cells": len(grid_cells()),
                "stream_events": len(events),
                "offline_alarms": len(reference.monitor.alarms),
                "parity_all_shards": all(
                    row["parity_with_offline"] for row in rows
                ),
            },
            tables={"service": rows},
        )

    # -- everything ---------------------------------------------------------------------------

    def run(self, name: str) -> ExperimentResult:
        """Run one experiment by name under a ``suite.<name>`` span."""
        with self.metrics.span(f"suite.{name}"):
            result: ExperimentResult = getattr(self, name)()
        self.metrics.count("suite.experiments")
        return result

    def run_all(self) -> list[ExperimentResult]:
        """Regenerate every figure and table (EXPERIMENTS.md's data)."""
        return [
            self.run(name)
            for name in (
                "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
                "tab1", "tab2", "fig7", "tab3", "tab4", "tab5",
                "nz_rehoming", "nz_filter", "ext_subprefix", "attack_matrix",
                "service_latency",
            )
        ]
