"""EXPERIMENTS.md generation: paper-vs-measured for every artifact.

:func:`render_experiments_markdown` turns a full suite run into the
deliverable comparison document: for each figure/table it shows the
paper's reported numbers next to the reproduction's, states the shape
property being preserved, and links the rendered artifacts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.config import ExperimentResult

__all__ = ["render_experiments_markdown", "PAPER_REFERENCE"]

# The paper's quoted numbers, by experiment id (ICDCS 2014, Sections IV-VII).
PAPER_REFERENCE: Mapping[str, Mapping[str, object]] = {
    "fig1": {
        "claim": "an aggressive attacker vs a depth-5 target pollutes 40,950 "
                 "ASes and draws 96% of the address space; convergence in ~7 "
                 "generations",
        "polluted": 40950, "address_fraction": 0.96, "generations": 7,
    },
    "fig2": {
        "claim": "vulnerability rises with target depth; concavity flips "
                 "between depth 1 and 2; multi-homing is a slight improvement",
    },
    "fig3": {
        "claim": "tier-2-attached roles overlay the tier-1 curves (motivates "
                 "redefining depth to anchor on tier-1 OR tier-2)",
    },
    "fig4": {
        "claim": "stub filtering scales the curves down (attackers: 42,696 -> "
                 "6,318 transit ASes = 14.7%) but keeps their shape",
    },
    "fig5": {
        "claim": "for AS98 (depth 1): random-100/500 negligible; tier-1 "
                 "filtering leaves mean 5,084 polluted (12%); core-62 -> 1,076 "
                 "(2.5%); core-124 -> 378; core-166 -> 228; core-299 -> 66",
        "tier1_fraction": 0.12, "core62_fraction": 0.025,
    },
    "fig6": {
        "claim": "for AS55857 (depth 5): tier-1 filtering leaves 22,018 (52%); "
                 "core-62 -> 8,562 (20%) and flips the curve's concavity; "
                 "core-299 -> 163",
        "tier1_fraction": 0.52, "core62_fraction": 0.20,
    },
    "tab1": {"claim": "top-5 attacks still potent vs AS98 under 299 blockers "
                      "(pollution 763-1,025; depths 1-2)"},
    "tab2": {"claim": "top-5 attacks still potent vs AS55857 under 299 "
                      "blockers (pollution 1,760-1,822; depths 1-2)"},
    "fig7": {
        "claim": "8,000 random attacks: 17 tier-1 probes miss 34% (largest "
                 "miss 20,306 ASes = ~50%); 24 BGPmon probes miss 11%; 62 "
                 "top-degree probes miss 3%; mean attack size grows with "
                 "probes triggered",
        "miss_rates": {"tier1": 0.34, "bgpmon": 0.11, "top-degree": 0.03},
    },
    "tab3": {"claim": "largest tier-1-probe misses: 16,908-20,306 polluted ASes"},
    "tab4": {"claim": "largest BGPmon-probe misses: 10,769-12,542 polluted ASes"},
    "tab5": {"claim": "largest top-degree-probe misses: 1,792-2,804 polluted ASes"},
    "nz_rehoming": {
        "claim": "re-homing the NZ target up two levels: regional attackers "
                 "60% -> 25% regional pollution; external attackers 15% -> 6%",
    },
    "nz_filter": {
        "claim": "one prefix filter at the regional hub (VOCUS): regional "
                 "attacks -> 40% regional pollution; external -> 14%",
    },
    "ext_subprefix": {
        "claim": "(extension of the paper's future work) 'Some origin and "
                 "sub-prefix attacks will still get through' — a sub-prefix "
                 "hijack wins everywhere it propagates (no legitimate "
                 "competitor under longest-prefix match) and only origin "
                 "validation can contain it",
    },
}


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, dict):
        return "; ".join(f"{k}={_format_value(v)}" for k, v in value.items())
    return str(value)


def _summary_lines(result: ExperimentResult) -> list[str]:
    lines = []
    for key, value in result.summary.items():
        if isinstance(value, dict) and "mean" in value:
            lines.append(
                f"  - `{key}`: mean {value['mean']:.1f}, "
                f"mean(successful) {value.get('mean_successful', 0):.1f}, "
                f"max {value['maximum']}"
            )
        elif isinstance(value, dict) and "miss_rate" in value:
            lines.append(
                f"  - `{key}`: missed {int(value['missed'])} "
                f"({value['miss_rate']:.1%}), mean missed size "
                f"{value['mean_pollution']:.0f}, max {int(value['max_pollution'])}"
            )
        else:
            lines.append(f"  - `{key}`: {_format_value(value)}")
    return lines


def render_experiments_markdown(
    results: Sequence[ExperimentResult],
    *,
    context: Mapping[str, object] | None = None,
) -> str:
    """Render the EXPERIMENTS.md document from a suite run."""
    parts = [
        "# EXPERIMENTS — paper vs. reproduction",
        "",
        "Every table and figure of the paper's evaluation, regenerated by "
        "`pytest benchmarks/ --benchmark-only` (drivers in "
        "`src/repro/experiments/suite.py`). Absolute numbers differ because "
        "the substrate is a calibrated synthetic topology at reduced scale "
        "(see DESIGN.md §1); the *shape* statements are asserted by the "
        "benchmark suite on every run.",
        "",
    ]
    if context:
        parts.append("Run context: " + ", ".join(
            f"{key}={value}" for key, value in context.items()
        ))
        parts.append("")
    for result in results:
        reference = PAPER_REFERENCE.get(result.experiment_id, {})
        parts.append(f"## {result.experiment_id.upper()} — {result.title}")
        parts.append("")
        claim = reference.get("claim")
        if claim:
            parts.append(f"**Paper:** {claim}")
            parts.append("")
        parts.append("**Measured:**")
        parts.extend(_summary_lines(result))
        for name, rows in result.tables.items():
            parts.append("")
            parts.append(f"  table `{name}`:")
            for row in rows:
                parts.append(
                    "    - " + ", ".join(f"{k}={_format_value(v)}" for k, v in row.items())
                )
        if result.artifacts:
            parts.append("")
            parts.append(
                "  artifacts: " + ", ".join(f"`{path}`" for path in result.artifacts[:4])
                + (" …" if len(result.artifacts) > 4 else "")
            )
        parts.append("")
    return "\n".join(parts)
