"""Experiment configuration and shared result shapes.

One :class:`ExperimentConfig` pins everything an experiment needs —
topology, seed, sweep sample sizes, output directory — so that every
figure and table of the paper regenerates deterministically from a single
value. Results come back as :class:`ExperimentResult`, a uniform shape the
sqlite store, the benchmark harness and the CLI all share.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.topology.generator import GeneratorConfig

__all__ = ["ExperimentConfig", "ExperimentResult"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    ``attacker_sample`` bounds the attacker count per vulnerability sweep
    (the paper attacks from all 42,696 ASes; ``None`` reproduces that
    exhaustively, the default keeps a full figure under a minute at
    indistinguishable curve shape). ``detection_attacks`` is the Fig. 7
    workload size (paper: 8,000). ``matrix_attacks`` is the per-cell
    sample size of the attack-taxonomy matrix (each of the 13
    (prefix-axis × path-axis) grid cells is swept with this many random
    target/attacker pairs per deployment strategy). ``workers`` is the
    sweep-executor
    parallelism (1 = sequential, 0 = every available core); it changes
    wall-clock only, never a result. ``validate`` arms the runtime
    invariant checker (:mod:`repro.oracle.invariants`) on every
    convergence the experiments run — a correctness tripwire for long
    unattended runs, off by default because it costs roughly one extra
    pass over the topology per convergence. ``backend`` selects the
    convergence kernel (``"reference"`` or ``"array"``); both are
    checksum-identical, so like ``workers`` it changes wall-clock only,
    never a result (see the Backends section of docs/performance.md).
    ``batch_origins`` fuses that many scenarios per convergence pass on
    the array backend (and warm-starts deployment ladders through the
    undo journal) — outcome-identical like the other wall-clock knobs.
    """

    topology: GeneratorConfig = field(default_factory=GeneratorConfig)
    seed: int = 2014
    output_dir: Path = Path("results")
    attacker_sample: int | None = 1200
    detection_attacks: int = 8000
    external_sample: int = 200
    matrix_attacks: int = 40
    workers: int = 1
    validate: bool = False
    backend: str = "reference"
    batch_origins: int = 1

    def scaled(self, *, attacker_sample: int | None, detection_attacks: int) -> "ExperimentConfig":
        """A copy with different workload sizes (used by fast CI runs)."""
        return ExperimentConfig(
            topology=self.topology,
            seed=self.seed,
            output_dir=self.output_dir,
            attacker_sample=attacker_sample,
            detection_attacks=detection_attacks,
            external_sample=self.external_sample,
            matrix_attacks=max(1, min(self.matrix_attacks, detection_attacks)),
            workers=self.workers,
            validate=self.validate,
            backend=self.backend,
            batch_origins=self.batch_origins,
        )


@dataclass
class ExperimentResult:
    """One reproduced figure or table.

    ``series`` maps curve labels to ``(x, y)`` points; ``tables`` maps
    table names to row dicts; ``summary`` carries the headline numbers
    compared against the paper in EXPERIMENTS.md; ``artifacts`` lists
    rendered SVG files.
    """

    experiment_id: str
    title: str
    summary: dict[str, object] = field(default_factory=dict)
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    tables: dict[str, list[dict[str, object]]] = field(default_factory=dict)
    artifacts: list[Path] = field(default_factory=list)

    def to_json(self) -> str:
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "summary": self.summary,
            "series": {
                label: [[x, y] for x, y in points]
                for label, points in self.series.items()
            },
            "tables": self.tables,
            "artifacts": [str(path) for path in self.artifacts],
        }
        return json.dumps(payload, indent=2, sort_keys=True, default=str)

    def save_json(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.json"
        path.write_text(self.to_json(), encoding="utf-8")
        return path
