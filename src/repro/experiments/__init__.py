"""Experiment drivers, configuration and the sqlite result store."""

from repro.experiments.calibration import CalibrationReport, calibrate
from repro.experiments.config import ExperimentConfig, ExperimentResult
from repro.experiments.reportgen import PAPER_REFERENCE, render_experiments_markdown
from repro.experiments.store import ResultStore, StoredRun
from repro.experiments.suite import ExperimentSuite

__all__ = [
    "CalibrationReport",
    "calibrate",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSuite",
    "PAPER_REFERENCE",
    "ResultStore",
    "StoredRun",
    "render_experiments_markdown",
]
