"""Model calibration: the repository's answer to the paper's RouteViews check.

The paper validated its simulator by comparing computed routes against
RouteViews RIBs (62% exact/topologically-equivalent matches) and grounded
it on the CAIDA snapshot's structure. Without network access we validate
differently but more strictly:

* **structural calibration** — the synthetic topology's headline numbers
  against the paper's CAIDA constants (17 tier-1s, 14.7% transit, ~3.26
  links per AS, depths reaching 5+);
* **dual-engine agreement** — the fraction of sampled hijacks where the
  fast engine and the message simulator agree *exactly* on the polluted
  set (the analogue of the RIB-match rate; must be 1.0);
* **path realism** — mean inflation of policy-path lengths over plain
  shortest paths for sampled AS pairs. Valley-free routing inflates paths
  only mildly on internet-like graphs; large inflation would flag a
  mis-shaped topology.

``repro-bgp``'s users get this as a one-call health report before trusting
experiment output on a new topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.attacks.lab import HijackLab
from repro.bgp.simulator import BGPSimulator
from repro.topology.classify import summarize
from repro.util.rng import make_rng
from repro.util.tables import render_table

__all__ = ["CalibrationReport", "calibrate"]

PAPER_CONSTANTS: Mapping[str, float] = {
    "as_count": 42_697,
    "link_count": 139_156,
    "links_per_as": 139_156 / 42_697,
    "tier1_count": 17,
    "transit_fraction": 6_318 / 42_697,
    "routeviews_match": 0.62,
}


@dataclass(frozen=True)
class CalibrationReport:
    """Topology and model health metrics, with the paper's references."""

    as_count: int
    link_count: int
    tier1_count: int
    transit_fraction: float
    max_depth: int
    depth_histogram: Mapping[int, int]
    engine_simulator_agreement: float
    agreement_samples: int
    path_inflation_mean: float
    path_samples: int

    @property
    def links_per_as(self) -> float:
        return self.link_count / self.as_count if self.as_count else 0.0

    def healthy(self) -> bool:
        """The gates experiments rely on."""
        return (
            self.engine_simulator_agreement == 1.0
            and 0.08 <= self.transit_fraction <= 0.25
            and self.max_depth >= 4
            and self.path_inflation_mean < 1.6
        )

    def render(self) -> str:
        rows = [
            ("ASes", self.as_count, int(PAPER_CONSTANTS["as_count"])),
            ("links", self.link_count, int(PAPER_CONSTANTS["link_count"])),
            ("links/AS", round(self.links_per_as, 2),
             round(PAPER_CONSTANTS["links_per_as"], 2)),
            ("tier-1 ASes", self.tier1_count, int(PAPER_CONSTANTS["tier1_count"])),
            ("transit fraction", f"{self.transit_fraction:.1%}",
             f"{PAPER_CONSTANTS['transit_fraction']:.1%}"),
            ("max depth", self.max_depth, "5+"),
            ("engine/simulator agreement",
             f"{self.engine_simulator_agreement:.0%}",
             f"(paper RIB match: {PAPER_CONSTANTS['routeviews_match']:.0%})"),
            ("policy path inflation", f"{self.path_inflation_mean:.2f}x", "-"),
        ]
        return render_table(
            ("metric", "this topology", "paper / CAIDA"),
            rows,
            title="Calibration report"
            + ("  [healthy]" if self.healthy() else "  [NEEDS ATTENTION]"),
        )


def calibrate(
    lab: HijackLab,
    *,
    agreement_samples: int = 10,
    path_samples: int = 60,
    seed: int = 0,
) -> CalibrationReport:
    """Measure structural and model health for one lab."""
    stats = summarize(lab.graph)
    view = lab.view
    rng = make_rng(seed, "calibration")

    # Dual-engine agreement over random hijacks (exact polluted-set match).
    agreements = 0
    pairs = 0
    while pairs < agreement_samples:
        target, attacker = rng.sample(range(len(view)), 2)
        prefix = lab.target_prefix(view.asn_of(target))
        simulator = BGPSimulator(view, lab.policy)
        simulator.announce(target, prefix)
        report = simulator.announce(attacker, prefix)
        result = lab.engine.hijack(target, attacker)
        if frozenset(report.adopters) == result.polluted_nodes:
            agreements += 1
        pairs += 1

    # Path inflation vs undirected shortest paths.
    import networkx as nx

    graph_nx = lab.graph.to_networkx()
    inflation_total = 0.0
    measured = 0
    attempts = 0
    while measured < path_samples and attempts < path_samples * 5:
        attempts += 1
        origin = rng.randrange(len(view))
        node = rng.randrange(len(view))
        if node == origin:
            continue
        state = lab._legitimate_state(origin)
        if not state.has_route(node) or state.length[node] == 0:
            continue
        source_asn = view.asn_of(node)
        target_asn = view.asn_of(origin)
        try:
            shortest = nx.shortest_path_length(graph_nx, source_asn, target_asn)
        except nx.NetworkXNoPath:
            continue
        if shortest == 0:
            continue
        inflation_total += state.length[node] / shortest
        measured += 1

    return CalibrationReport(
        as_count=stats.as_count,
        link_count=stats.link_count,
        tier1_count=len(stats.tier1),
        transit_fraction=stats.transit_fraction,
        max_depth=stats.max_depth,
        depth_histogram=dict(stats.depth_histogram),
        engine_simulator_agreement=agreements / max(1, pairs),
        agreement_samples=pairs,
        path_inflation_mean=inflation_total / max(1, measured),
        path_samples=measured,
    )
