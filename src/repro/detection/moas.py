"""MOAS (Multiple-Origin AS) analysis: hijack alarms vs legitimate anycast.

Control-plane detectors (PHAS and its descendants, which the paper builds
on) fundamentally work by flagging *origin changes and conflicts*. The
hard part is that Multiple-Origin-AS announcements are often legitimate —
anycast services, multi-org prefixes, provider static routes — so a naive
MOAS alarm drowns operators in false positives, while suppressing MOAS
entirely misses real hijacks. The paper's prescription applies here too:
published route-origin data (ROVER/RPKI lets one prefix authorize several
origins) cleanly separates the two cases.

:func:`classify_moas` implements the decision procedure, and
:func:`anycast_state` computes the routing outcome of a legitimate
multi-origin announcement (both origins attract their routing vicinity —
the same machinery as a hijack, with nobody lying).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.bgp.engine import RouteState, RoutingEngine
from repro.prefixes.prefix import Prefix
from repro.registry.roa import OriginAuthority, ValidationState

__all__ = ["MoasVerdict", "MoasReport", "classify_moas", "anycast_state"]


class MoasVerdict(enum.Enum):
    LEGITIMATE_ANYCAST = "legitimate-anycast"  # all origins authorized
    HIJACK = "hijack"  # some origin is INVALID
    UNVERIFIABLE = "unverifiable"  # no published data: alarm, can't decide
    FORGED_PATH = "forged-path"  # valid origin behind an impossible path
    ROUTE_LEAK = "route-leak"  # real route re-exported against policy


@dataclass(frozen=True)
class MoasReport:
    """Classification of one observed origin conflict.

    ``culprit_paths`` (path-aware classification only — see
    :mod:`repro.detection.taxonomy`) holds the observed claimed paths the
    verdict indicts, claimed origin last; origin-only classification
    leaves it empty.
    """

    prefix: Prefix
    origins: tuple[int, ...]
    verdict: MoasVerdict
    invalid_origins: tuple[int, ...]
    culprit_paths: tuple[tuple[int, ...], ...] = ()

    @property
    def alarm(self) -> bool:
        """Should the detector page an operator? Hijacks always; an
        unverifiable conflict too (better noisy than blind) — which is the
        operational pain publishing makes go away."""
        return self.verdict is not MoasVerdict.LEGITIMATE_ANYCAST


def classify_moas(
    authority: OriginAuthority | None,
    prefix: Prefix,
    origins: tuple[int, ...] | list[int],
    *,
    observations=None,
    neighbors=None,
    relationships=None,
) -> MoasReport:
    """Judge an observed multi-origin conflict against published data.

    With *observations* (a sequence of
    :class:`~repro.detection.taxonomy.PathObservation`) the judgement is
    path-aware — forged first hops, impossible links and route leaks
    become classifiable — and delegates to
    :func:`repro.detection.taxonomy.classify_observations`; *origins* is
    then ignored in favour of the observations' claimed origins. The
    origin-only form below is unchanged.
    """
    if observations is not None:
        # Imported lazily: taxonomy builds on this module's report types.
        from repro.detection.taxonomy import classify_observations

        report = classify_observations(
            prefix,
            observations,
            authority=authority,
            neighbors=neighbors,
            relationships=relationships,
        )
        if report is None:
            raise ValueError("observations produced no judgeable conflict")
        return report
    origins = tuple(sorted(set(origins)))
    if len(origins) < 2:
        raise ValueError("a MOAS conflict needs at least two origins")
    if authority is None:
        return MoasReport(
            prefix=prefix, origins=origins,
            verdict=MoasVerdict.UNVERIFIABLE, invalid_origins=(),
        )
    verdicts = {
        origin: authority.validate(prefix, origin) for origin in origins
    }
    invalid = tuple(
        origin
        for origin, verdict in verdicts.items()
        if verdict is ValidationState.INVALID
    )
    if invalid:
        return MoasReport(
            prefix=prefix, origins=origins,
            verdict=MoasVerdict.HIJACK, invalid_origins=invalid,
        )
    if all(v is ValidationState.VALID for v in verdicts.values()):
        return MoasReport(
            prefix=prefix, origins=origins,
            verdict=MoasVerdict.LEGITIMATE_ANYCAST, invalid_origins=(),
        )
    return MoasReport(
        prefix=prefix, origins=origins,
        verdict=MoasVerdict.UNVERIFIABLE, invalid_origins=(),
    )


def anycast_state(
    engine: RoutingEngine, origins: tuple[int, ...] | list[int]
) -> RouteState:
    """Converged routing for a legitimately multi-origin prefix.

    Origins are announced in ascending node order; each subsequent origin
    competes under the normal strict-preference rule, so every AS ends up
    routing to its policy-nearest origin — the anycast catchment split.
    ``RouteState.holders_of`` then gives each origin's catchment.
    """
    ordered = sorted(set(origins))
    if len(ordered) < 2:
        raise ValueError("anycast needs at least two origins")
    state: RouteState | None = None
    for origin in ordered:
        state = engine.converge(origin, base=state)
    assert state is not None
    return state
