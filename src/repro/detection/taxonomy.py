"""Path-aware hijack classification over the ARTEMIS attack grid.

The origin-only machinery in :mod:`repro.detection.moas` judges *who*
claims a prefix. This module judges *how* they claim it: every
observation carries the full claimed AS path, which is what separates
the grid cells ROV can catch from the ones it provably cannot
(``docs/attacks.md`` walks the full matrix):

* **type-0** — the claimed origin itself is unauthorized; the ROA check
  catches it (rule 1).
* **type-1** — the claimed origin is valid but the path's last hop
  names an AS the origin never sessions with; only published neighbor
  sets (:class:`~repro.registry.neighbors.NeighborRegistry`) catch it
  (rule 2).
* **type-N** — deeper forgeries may use only real first hops; full
  topology knowledge can still refute a *nonexistent link* anywhere in
  the claim (rule 3) — and a forgery spliced entirely from real links
  evades even that (the BGPsec-shaped residue).
* **route leak** — every link is real and the origin genuine; the
  violation is the *export*. A path whose head learned the route from a
  provider or peer must never propagate beyond the head's customer
  cone, so a witness outside that cone is proof of a leak (rule 4).
* **type-U** — an unmodified replay is indistinguishable from the real
  announcement by content; it is caught (as an apparent leak) only when
  its *propagation* violates the claimed path's export policy.

Rules are checked in that order — first proof wins — then the verdict
falls back to the origin-set logic of :func:`classify_moas` (anycast vs
unverifiable vs nothing-to-judge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.attacks.scenario import HijackKind, PathKind
from repro.detection.moas import MoasReport, MoasVerdict
from repro.prefixes.prefix import Prefix
from repro.registry.neighbors import NeighborRegistry
from repro.registry.roa import OriginAuthority, ValidationState
from repro.topology.asgraph import ASGraph
from repro.topology.relationships import Relationship

__all__ = [
    "PathObservation",
    "classify_observations",
    "customer_cone",
    "grid_cells",
    "leak_suspect",
    "nonexistent_links",
]


@dataclass(frozen=True)
class PathObservation:
    """One distinct claimed path seen for a prefix, with its witnesses.

    ``tail`` is the AS path attribute as received — claimed origin
    **last**; for an unmodified (type-U) replay the replaying attacker
    does not appear in it at all, exactly as on the wire. ``witnesses``
    are the probe ASes whose selected route currently carries this
    claim (used by the leak rule: *where* a real path showed up is the
    evidence, not the path itself).
    """

    tail: tuple[int, ...]
    witnesses: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.tail:
            raise ValueError("an observation needs a non-empty claimed path")

    @property
    def claimed_origin(self) -> int:
        return self.tail[-1]


def nonexistent_links(
    tail: tuple[int, ...], relationships: ASGraph
) -> tuple[tuple[int, int], ...]:
    """Adjacent pairs in *tail* that are not real links in *relationships*.

    An AS absent from the graph altogether (e.g. a fabricated private-use
    hop) makes every link through it nonexistent.
    """
    bogus: list[tuple[int, int]] = []
    for left, right in zip(tail, tail[1:]):
        if (
            left not in relationships
            or right not in relationships
            or relationships.relationship(left, right) is None
        ):
            bogus.append((left, right))
    return tuple(bogus)


def leak_suspect(tail: tuple[int, ...], relationships: ASGraph) -> bool:
    """Did the path's head learn this route from a provider or peer?

    Such a route must only be exported to the head's customers —
    valley-free export — so its appearance outside the head's customer
    cone proves a leak. A single-AS tail (the origin's own announcement)
    can never be a leak suspect.
    """
    if len(tail) < 2:
        return False
    head, learned_from = tail[0], tail[1]
    if head not in relationships or learned_from not in relationships:
        return False
    relation = relationships.relationship(head, learned_from)
    return relation in (Relationship.PROVIDER, Relationship.PEER)


def customer_cone(relationships: ASGraph, asn: int) -> frozenset[int]:
    """*asn* plus every AS reachable by walking customer edges down."""
    cone = {asn}
    frontier = [asn]
    while frontier:
        current = frontier.pop()
        for customer in relationships.customers(current):
            if customer not in cone:
                cone.add(customer)
                frontier.append(customer)
    return frozenset(cone)


def classify_observations(
    prefix: Prefix,
    observations: Sequence[PathObservation],
    *,
    authority: OriginAuthority | None = None,
    neighbors: NeighborRegistry | None = None,
    relationships: ASGraph | None = None,
) -> MoasReport | None:
    """Judge everything currently observed for *prefix*, path-aware.

    Applies the module's rules in proof order with whatever published
    data is available — ``authority`` (ROAs), ``neighbors`` (declared
    neighbor sets), ``relationships`` (full topology knowledge: link
    verification and leak detection). Returns ``None`` when there is
    nothing to judge (no observations, or a single claimed origin with
    no proof of wrongdoing).
    """
    observations = list(observations)
    if not observations:
        return None
    origins = tuple(sorted({obs.claimed_origin for obs in observations}))

    # Rule 1 — ROA origin validation (catches every type-0 cell and any
    # sub-prefix claim a maxLength-less ROA renders INVALID).
    if authority is not None:
        invalid = tuple(
            origin
            for origin in origins
            if authority.validate(prefix, origin) is ValidationState.INVALID
        )
        if invalid:
            bad = frozenset(invalid)
            return MoasReport(
                prefix=prefix,
                origins=origins,
                verdict=MoasVerdict.HIJACK,
                invalid_origins=invalid,
                culprit_paths=_culprits(
                    observations, lambda obs: obs.claimed_origin in bad
                ),
            )

    # Rule 2 — declared-neighbor first-hop check (the type-1 killer).
    if neighbors is not None:
        forged = _culprits(
            observations, lambda obs: neighbors.first_hop_forged(obs.tail)
        )
        if forged:
            return MoasReport(
                prefix=prefix,
                origins=origins,
                verdict=MoasVerdict.FORGED_PATH,
                invalid_origins=(),
                culprit_paths=forged,
            )

    if relationships is not None:
        # Rule 3 — link verification over the whole claim.
        impossible = _culprits(
            observations,
            lambda obs: bool(nonexistent_links(obs.tail, relationships)),
        )
        if impossible:
            return MoasReport(
                prefix=prefix,
                origins=origins,
                verdict=MoasVerdict.FORGED_PATH,
                invalid_origins=(),
                culprit_paths=impossible,
            )
        # Rule 4 — valley-free export: a provider/peer-learned path seen
        # outside its head's customer cone was leaked.
        leaked = _culprits(
            observations,
            lambda obs: leak_suspect(obs.tail, relationships)
            and bool(
                set(obs.witnesses) - customer_cone(relationships, obs.tail[0])
            ),
        )
        if leaked:
            return MoasReport(
                prefix=prefix,
                origins=origins,
                verdict=MoasVerdict.ROUTE_LEAK,
                invalid_origins=(),
                culprit_paths=leaked,
            )

    # No path-level proof: fall back to origin-set logic.
    if len(origins) >= 2:
        if authority is not None and all(
            authority.validate(prefix, origin) is ValidationState.VALID
            for origin in origins
        ):
            verdict = MoasVerdict.LEGITIMATE_ANYCAST
        else:
            verdict = MoasVerdict.UNVERIFIABLE
        return MoasReport(
            prefix=prefix, origins=origins, verdict=verdict, invalid_origins=()
        )
    return None


def _culprits(
    observations: Iterable[PathObservation], predicate
) -> tuple[tuple[int, ...], ...]:
    return tuple(
        sorted({obs.tail for obs in observations if predicate(obs)})
    )


def grid_cells() -> tuple[tuple[HijackKind, PathKind], ...]:
    """The 13 cells of the conformance grid, in table order: every
    (prefix axis × path axis) combination plus the route-leak row."""
    cells = [
        (kind, path_kind)
        for kind in (HijackKind.ORIGIN, HijackKind.SUBPREFIX, HijackKind.SQUAT)
        for path_kind in PathKind
    ]
    cells.append((HijackKind.ROUTE_LEAK, PathKind.TYPE_U))
    return tuple(cells)
