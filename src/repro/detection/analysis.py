"""Detector-deployment analysis: the Fig. 7 study and probe placement.

:class:`DetectionStudy` aggregates one detector's reports over a workload
of random attacks into exactly what Fig. 7 plots per configuration — a
histogram of attacks by number of probes triggered (the "0" bar being the
complete misses) with the mean attack size per bucket — plus the Section
VI tables of the largest attacks that escaped detection entirely.

:func:`greedy_probe_placement` implements the Section VII advice to
"determine new probes that can improve detection accuracy": a classic
greedy max-coverage pass over a training workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.attacks.scenario import AttackOutcome
from repro.detection.detector import DetectionReport, HijackDetector
from repro.detection.probes import ProbeSet

__all__ = ["DetectionStudy", "UndetectedAttack", "greedy_probe_placement"]


@dataclass(frozen=True)
class UndetectedAttack:
    """A row of the paper's "top undetected attacks" tables."""

    attacker_asn: int
    target_asn: int
    pollution_count: int


@dataclass
class DetectionStudy:
    """Aggregated observations of one detector over many attacks."""

    detector: HijackDetector
    reports: list[DetectionReport] = field(default_factory=list)

    @classmethod
    def run(
        cls, detector: HijackDetector, outcomes: Iterable[AttackOutcome]
    ) -> "DetectionStudy":
        study = cls(detector=detector)
        for outcome in outcomes:
            study.reports.append(detector.observe(outcome))
        return study

    # -- Fig. 7 data -----------------------------------------------------------

    @property
    def attack_count(self) -> int:
        return len(self.reports)

    def missed(self) -> list[DetectionReport]:
        """Attacks that escaped completely (the "0" bar)."""
        return [report for report in self.reports if not report.detected]

    def miss_rate(self) -> float:
        if not self.reports:
            return 0.0
        return len(self.missed()) / len(self.reports)

    def histogram(self) -> dict[int, int]:
        """#attacks keyed by number of probes triggered (0 = undetected)."""
        counts: dict[int, int] = {}
        for report in self.reports:
            bucket = report.probe_count if report.detected else 0
            counts[bucket] = counts.get(bucket, 0) + 1
        return dict(sorted(counts.items()))

    def mean_size_by_probe_count(self) -> dict[int, float]:
        """Fig. 7's line series: mean attack size per probe-count bucket.

        The paper notes its slope "confirms intuition; the larger the
        attack extent, the more collectors triggered".
        """
        sums: dict[int, int] = {}
        counts: dict[int, int] = {}
        for report in self.reports:
            bucket = report.probe_count if report.detected else 0
            sums[bucket] = sums.get(bucket, 0) + report.pollution_count
            counts[bucket] = counts.get(bucket, 0) + 1
        return {
            bucket: sums[bucket] / counts[bucket] for bucket in sorted(sums)
        }

    # -- Section VI tables --------------------------------------------------------

    def undetected_summary(self) -> dict[str, float]:
        missed = self.missed()
        sizes = [report.pollution_count for report in missed]
        return {
            "missed": len(missed),
            "miss_rate": self.miss_rate(),
            "mean_pollution": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "max_pollution": max(sizes, default=0),
        }

    def top_undetected(self, count: int = 5) -> list[UndetectedAttack]:
        missed = sorted(
            self.missed(), key=lambda report: -report.pollution_count
        )[:count]
        return [
            UndetectedAttack(
                attacker_asn=report.outcome.scenario.attacker_asn,
                target_asn=report.outcome.scenario.target_asn,
                pollution_count=report.pollution_count,
            )
            for report in missed
        ]


def greedy_probe_placement(
    outcomes: Sequence[AttackOutcome],
    candidates: Iterable[int],
    *,
    count: int,
    seed_probes: Iterable[int] = (),
) -> ProbeSet:
    """Pick *count* probes greedily maximizing attacks seen on a workload.

    Each step adds the candidate AS that covers the most still-unseen
    attacks (an attack is covered when the candidate was polluted by it).
    Starting ``seed_probes`` model an existing deployment to extend.
    """
    chosen: set[int] = set(seed_probes)
    uncovered = {
        index
        for index, outcome in enumerate(outcomes)
        if not (outcome.polluted_asns & chosen)
    }
    pool = sorted(set(candidates) - chosen)
    coverage = {
        asn: {
            index
            for index in uncovered
            if asn in outcomes[index].polluted_asns
        }
        for asn in pool
    }
    while len(chosen) < count + len(set(seed_probes)) and pool:
        best = max(pool, key=lambda asn: (len(coverage[asn] & uncovered), -asn))
        gained = coverage[best] & uncovered
        if not gained:
            break
        chosen.add(best)
        uncovered -= gained
        pool.remove(best)
    return ProbeSet(f"greedy-{len(chosen)}", frozenset(chosen))
