"""Detector probe sets: where a hijack-detection service peers.

"IP hijack detectors are only as good as the quantity, topological
diversity, and geographical dispersion of the vantage points (probes) they
have available" (Section VI). A probe is an AS whose *selected* routes the
detector sees, as BGPmon-style monitors do — so a probe observes an attack
exactly when the probe AS itself accepts the bogus route.

The three configurations of Fig. 7:

1. the 17 tier-1 ASes,
2. a BGPmon-like set of 24 ASes (the paper used CSU BGPmon's actual
   peers; we sample a deterministic mix with the same flavour — a few
   high-degree transits plus mid/low-degree ASes spread across regions),
3. the 62 highest-degree ASes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.asgraph import ASGraph
from repro.topology.classify import find_tier1, transit_asns
from repro.util.rng import make_rng

__all__ = [
    "ProbeSet",
    "tier1_probes",
    "bgpmon_like_probes",
    "top_degree_probes",
    "custom_probes",
]


@dataclass(frozen=True)
class ProbeSet:
    """A named set of monitor-feeding ASes."""

    name: str
    asns: frozenset[int]

    def __len__(self) -> int:
        return len(self.asns)

    def triggered_by(self, polluted_asns: frozenset[int]) -> frozenset[int]:
        """Probes that accepted the bogus route during an attack."""
        return self.asns & polluted_asns


def tier1_probes(graph: ASGraph) -> ProbeSet:
    """Fig. 7 case 1: peer with every tier-1 AS."""
    tier1 = find_tier1(graph)
    return ProbeSet(f"tier1-{len(tier1)}", tier1)


def bgpmon_like_probes(
    graph: ASGraph, *, count: int = 24, seed: int = 0
) -> ProbeSet:
    """Fig. 7 case 2: an ad-hoc mix like CSU BGPmon's 24 peers.

    Deterministically picks ~1/6 of the probes from the high-degree core
    and the rest across the degree tail, spreading over regions — the
    organically-grown peering mix whose blind spots Section VI measures.
    """
    rng = make_rng(seed, "bgpmon-probes", count)
    ranked = sorted(graph.asns(), key=lambda asn: (-graph.degree(asn), asn))
    core_quota = max(1, count // 6)
    chosen: list[int] = ranked[:core_quota]
    tail = [asn for asn in ranked[core_quota:] if graph.degree(asn) >= 2]
    # Round-robin the regions so the set is geographically dispersed.
    by_region: dict[str | None, list[int]] = {}
    for asn in tail:
        by_region.setdefault(graph.region_of(asn), []).append(asn)
    region_order = sorted(by_region, key=lambda region: (region is None, region))
    for members in by_region.values():
        rng.shuffle(members)
    index = 0
    while len(chosen) < count and any(by_region.values()):
        region = region_order[index % len(region_order)]
        members = by_region[region]
        if members:
            chosen.append(members.pop())
        index += 1
    return ProbeSet(f"bgpmon-like-{len(chosen)}", frozenset(chosen))


def top_degree_probes(graph: ASGraph, *, count: int = 62) -> ProbeSet:
    """Fig. 7 case 3: the *count* highest-degree ASes."""
    ranked = sorted(graph.asns(), key=lambda asn: (-graph.degree(asn), asn))
    return ProbeSet(f"top-degree-{count}", frozenset(ranked[:count]))


def custom_probes(name: str, asns) -> ProbeSet:
    return ProbeSet(name, frozenset(asns))


def random_transit_probes(graph: ASGraph, count: int, *, seed: int = 0) -> ProbeSet:
    """A uniformly random transit probe set (ablation baseline)."""
    pool = sorted(transit_asns(graph))
    rng = make_rng(seed, "random-probes", count)
    return ProbeSet(f"random-{count}", frozenset(rng.sample(pool, min(count, len(pool)))))
