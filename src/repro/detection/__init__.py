"""Hijack detection: probe sets, detectors, Fig. 7 analysis, placement."""

from repro.detection.analysis import (
    DetectionStudy,
    UndetectedAttack,
    greedy_probe_placement,
)
from repro.detection.detector import DetectionReport, HijackDetector
from repro.detection.moas import (
    MoasReport,
    MoasVerdict,
    anycast_state,
    classify_moas,
)
from repro.detection.probes import (
    ProbeSet,
    bgpmon_like_probes,
    custom_probes,
    random_transit_probes,
    tier1_probes,
    top_degree_probes,
)
from repro.detection.taxonomy import (
    PathObservation,
    classify_observations,
    customer_cone,
    grid_cells,
    leak_suspect,
    nonexistent_links,
)

__all__ = [
    "DetectionReport",
    "DetectionStudy",
    "HijackDetector",
    "MoasReport",
    "MoasVerdict",
    "PathObservation",
    "ProbeSet",
    "anycast_state",
    "classify_moas",
    "classify_observations",
    "customer_cone",
    "grid_cells",
    "leak_suspect",
    "nonexistent_links",
    "UndetectedAttack",
    "bgpmon_like_probes",
    "custom_probes",
    "greedy_probe_placement",
    "random_transit_probes",
    "tier1_probes",
    "top_degree_probes",
]
