"""The hijack detector and its per-attack observations.

A detector peers with probe ASes and compares the routes they select
against known-good origin data. In the simulation an attack is *seen* by a
probe when the probe AS accepted the bogus route ("Any particular attack
may be seen… by one, multiple, or possibly none of the BGP data sources",
Section VI); it is *detected* when at least one probe saw it **and** the
detector can classify the announcement as bogus — which requires the
target to have published its route origins (or the detector to fall back
on trusted historical data).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.scenario import AttackOutcome
from repro.detection.probes import ProbeSet
from repro.registry.roa import OriginAuthority, ValidationState

__all__ = ["DetectionReport", "HijackDetector"]


@dataclass(frozen=True)
class DetectionReport:
    """What one detector configuration saw of one attack."""

    outcome: AttackOutcome
    triggered_probes: frozenset[int]
    classified_bogus: bool

    @property
    def seen(self) -> bool:
        """Did any probe receive (and accept) the bogus route?"""
        return bool(self.triggered_probes)

    @property
    def detected(self) -> bool:
        """Seen and recognizable as a hijack."""
        return self.seen and self.classified_bogus

    @property
    def probe_count(self) -> int:
        return len(self.triggered_probes)

    @property
    def pollution_count(self) -> int:
        return self.outcome.pollution_count


@dataclass(frozen=True)
class HijackDetector:
    """A probe set plus the origin data used to classify announcements.

    Without an ``authority`` the detector behaves like a historical-data
    system that always recognizes a mismatching origin (the optimistic
    assumption Fig. 7 makes); with one, announcements for unpublished
    space cannot be classified and slip through even if probes saw them —
    quantifying the paper's "publish route origins" advice.
    """

    probes: ProbeSet
    authority: OriginAuthority | None = None

    def observe(self, outcome: AttackOutcome) -> DetectionReport:
        triggered = self.probes.triggered_by(outcome.polluted_asns)
        if self.authority is None:
            classified = True
        else:
            verdict = self.authority.validate(
                outcome.scenario.prefix, outcome.scenario.attacker_asn
            )
            classified = verdict is ValidationState.INVALID
        return DetectionReport(
            outcome=outcome,
            triggered_probes=triggered,
            classified_bogus=classified,
        )
