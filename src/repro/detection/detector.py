"""The hijack detector and its per-attack observations.

A detector peers with probe ASes and compares the routes they select
against known-good origin data. In the simulation an attack is *seen* by a
probe when the probe AS accepted the bogus route ("Any particular attack
may be seen… by one, multiple, or possibly none of the BGP data sources",
Section VI); it is *detected* when at least one probe saw it **and** the
detector can classify the announcement as bogus — which requires the
target to have published its route origins (or the detector to fall back
on trusted historical data).

Classification is path-aware (:mod:`repro.detection.taxonomy`): beyond
ROAs, a detector may hold published neighbor sets (``neighbors``) and
full topology knowledge (``relationships``), which is what lets it catch
the forged-path and route-leak cells of the attack grid that origin
validation provably cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.attacks.scenario import AttackOutcome
from repro.detection.moas import MoasReport, MoasVerdict, classify_moas
from repro.detection.probes import ProbeSet
from repro.detection.taxonomy import PathObservation, classify_observations
from repro.prefixes.prefix import Prefix
from repro.registry.neighbors import NeighborRegistry
from repro.registry.roa import OriginAuthority, ValidationState
from repro.topology.asgraph import ASGraph

__all__ = ["DetectionReport", "HijackDetector"]


@dataclass(frozen=True)
class DetectionReport:
    """What one detector configuration saw of one attack."""

    outcome: AttackOutcome
    triggered_probes: frozenset[int]
    classified_bogus: bool
    verdict: MoasVerdict | None = None

    @property
    def seen(self) -> bool:
        """Did any probe receive (and accept) the bogus route?"""
        return bool(self.triggered_probes)

    @property
    def detected(self) -> bool:
        """Seen and recognizable as a hijack."""
        return self.seen and self.classified_bogus

    @property
    def probe_count(self) -> int:
        return len(self.triggered_probes)

    @property
    def pollution_count(self) -> int:
        return self.outcome.pollution_count


@dataclass(frozen=True)
class HijackDetector:
    """A probe set plus the published data used to classify announcements.

    Without an ``authority`` the detector behaves like a historical-data
    system that always recognizes a mismatching origin (the optimistic
    assumption Fig. 7 makes); with one, announcements for unpublished
    space cannot be classified and slip through even if probes saw them —
    quantifying the paper's "publish route origins" advice. ``neighbors``
    adds ARTEMIS-style first-hop verification and ``relationships`` full
    topology knowledge (link verification plus leak detection); each
    rung of that ladder catches strictly more of the attack grid.
    """

    probes: ProbeSet
    authority: OriginAuthority | None = None
    neighbors: NeighborRegistry | None = None
    relationships: ASGraph | None = None

    def observe(self, outcome: AttackOutcome) -> DetectionReport:
        triggered = self.probes.triggered_by(outcome.polluted_asns)
        tail = outcome.claimed_path
        scenario = outcome.scenario
        if tail is None and outcome.succeeded:
            # Pre-taxonomy outcome (no recorded claim): a type-0 forgery.
            tail = (scenario.attacker_asn,)
        verdict: MoasVerdict | None = None
        if tail is not None:
            if (
                self.authority is None
                and self.neighbors is None
                and self.relationships is None
            ):
                # Historical-data fallback: any origin that is not the
                # prefix's known holder is recognized as bogus.
                if tail[-1] != scenario.target_asn:
                    verdict = MoasVerdict.HIJACK
            else:
                report = classify_observations(
                    scenario.prefix,
                    [
                        PathObservation(
                            tail=tail, witnesses=tuple(sorted(triggered))
                        )
                    ],
                    authority=self.authority,
                    neighbors=self.neighbors,
                    relationships=self.relationships,
                )
                if report is not None and report.alarm:
                    verdict = report.verdict
        return DetectionReport(
            outcome=outcome,
            triggered_probes=triggered,
            classified_bogus=verdict is not None,
            verdict=verdict,
        )

    def observe_conflict(
        self,
        prefix: Prefix,
        origins: tuple[int, ...] | list[int],
        *,
        observations: Sequence[PathObservation] | None = None,
    ) -> MoasReport | None:
        """Judge what is currently observed for *prefix* — the
        event-by-event entry point.

        :meth:`observe` is batch-shaped: it needs a finished
        :class:`~repro.attacks.scenario.AttackOutcome`. A live monitor has
        no outcomes, only what its probes see for a prefix *right now*.
        With *observations* (claimed paths plus the witnessing probes)
        the judgement runs the full path-aware rule ladder of
        :func:`~repro.detection.taxonomy.classify_observations`; the
        origin-only form remains:

        * two or more origins — a MOAS conflict, judged by
          :func:`~repro.detection.moas.classify_moas` against this
          detector's published origin data;
        * exactly one origin that the published data marks INVALID — a
          hijack with no visible conflict (the sub-prefix case: the bogus
          more-specific is the only announcement for its NLRI), reported
          as a single-origin :class:`~repro.detection.moas.MoasReport`;
        * anything else — ``None``: nothing to judge, no alarm.

        Returns the report (check ``report.alarm``), or ``None``.
        """
        if observations is not None:
            return classify_observations(
                prefix,
                observations,
                authority=self.authority,
                neighbors=self.neighbors,
                relationships=self.relationships,
            )
        unique = tuple(sorted(set(origins)))
        if not unique:
            return None
        if len(unique) == 1:
            if self.authority is None:
                return None
            verdict = self.authority.validate(prefix, unique[0])
            if verdict is not ValidationState.INVALID:
                return None
            return MoasReport(
                prefix=prefix,
                origins=unique,
                verdict=MoasVerdict.HIJACK,
                invalid_origins=unique,
            )
        return classify_moas(self.authority, prefix, unique)
