"""The hijack detector and its per-attack observations.

A detector peers with probe ASes and compares the routes they select
against known-good origin data. In the simulation an attack is *seen* by a
probe when the probe AS accepted the bogus route ("Any particular attack
may be seen… by one, multiple, or possibly none of the BGP data sources",
Section VI); it is *detected* when at least one probe saw it **and** the
detector can classify the announcement as bogus — which requires the
target to have published its route origins (or the detector to fall back
on trusted historical data).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.scenario import AttackOutcome
from repro.detection.moas import MoasReport, MoasVerdict, classify_moas
from repro.detection.probes import ProbeSet
from repro.prefixes.prefix import Prefix
from repro.registry.roa import OriginAuthority, ValidationState

__all__ = ["DetectionReport", "HijackDetector"]


@dataclass(frozen=True)
class DetectionReport:
    """What one detector configuration saw of one attack."""

    outcome: AttackOutcome
    triggered_probes: frozenset[int]
    classified_bogus: bool

    @property
    def seen(self) -> bool:
        """Did any probe receive (and accept) the bogus route?"""
        return bool(self.triggered_probes)

    @property
    def detected(self) -> bool:
        """Seen and recognizable as a hijack."""
        return self.seen and self.classified_bogus

    @property
    def probe_count(self) -> int:
        return len(self.triggered_probes)

    @property
    def pollution_count(self) -> int:
        return self.outcome.pollution_count


@dataclass(frozen=True)
class HijackDetector:
    """A probe set plus the origin data used to classify announcements.

    Without an ``authority`` the detector behaves like a historical-data
    system that always recognizes a mismatching origin (the optimistic
    assumption Fig. 7 makes); with one, announcements for unpublished
    space cannot be classified and slip through even if probes saw them —
    quantifying the paper's "publish route origins" advice.
    """

    probes: ProbeSet
    authority: OriginAuthority | None = None

    def observe(self, outcome: AttackOutcome) -> DetectionReport:
        triggered = self.probes.triggered_by(outcome.polluted_asns)
        if self.authority is None:
            classified = True
        else:
            verdict = self.authority.validate(
                outcome.scenario.prefix, outcome.scenario.attacker_asn
            )
            classified = verdict is ValidationState.INVALID
        return DetectionReport(
            outcome=outcome,
            triggered_probes=triggered,
            classified_bogus=classified,
        )

    def observe_conflict(
        self, prefix: Prefix, origins: tuple[int, ...] | list[int]
    ) -> MoasReport | None:
        """Judge the origin set currently observed for *prefix* — the
        event-by-event entry point.

        :meth:`observe` is batch-shaped: it needs a finished
        :class:`~repro.attacks.scenario.AttackOutcome`. A live monitor has
        no outcomes, only the origins its probes see for a prefix *right
        now*; call this after every update that changes that set.

        * two or more origins — a MOAS conflict, judged by
          :func:`~repro.detection.moas.classify_moas` against this
          detector's published origin data;
        * exactly one origin that the published data marks INVALID — a
          hijack with no visible conflict (the sub-prefix case: the bogus
          more-specific is the only announcement for its NLRI), reported
          as a single-origin :class:`~repro.detection.moas.MoasReport`;
        * anything else — ``None``: nothing to judge, no alarm.

        Returns the report (check ``report.alarm``), or ``None``.
        """
        unique = tuple(sorted(set(origins)))
        if not unique:
            return None
        if len(unique) == 1:
            if self.authority is None:
                return None
            verdict = self.authority.validate(prefix, unique[0])
            if verdict is not ValidationState.INVALID:
                return None
            return MoasReport(
                prefix=prefix,
                origins=unique,
                verdict=MoasVerdict.HIJACK,
                invalid_origins=unique,
            )
        return classify_moas(self.authority, prefix, unique)
