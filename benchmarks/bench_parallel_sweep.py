"""BENCH-PAR — sequential vs parallel sweep execution + convergence cache.

Not a paper figure: this benchmark tracks the performance trajectory of
the sweep engine itself, so every future perf PR has a baseline to beat.
It measures, on the default 4,270-AS synthetic topology:

* one vulnerability sweep run sequentially (``workers=1``) and through
  the fork-based pool (``REPRO_BENCH_WORKERS`` or 4), asserting the two
  outcome sets are **bit-identical** before reporting the speedup;
* the Fig. 7-style random-attack workload with a cold vs a warm
  convergence cache, reporting the hit rate and the cached speedup;
* a reduced sweep with the runtime invariant checker
  (``HijackLab(validate=True)``, see ``docs/testing.md``) off vs on,
  asserting identical outcomes and reporting what ``--validate`` costs.

Parallel speedup assertions are gated on the machine actually having
multiple usable cores — on a single-core runner the pool can only tie
(the equality checks still run); the numbers are recorded either way
under ``bench_parallel`` in the result store. See ``docs/performance.md``
for how to read the output.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import (
    AS_COUNT,
    BENCH_WORKERS,
    CACHE_ATTACKS,
    RESULTS_DIR,
    SAMPLE,
    SEED,
)

from repro.attacks.lab import HijackLab
from repro.experiments.config import ExperimentResult
from repro.obs import Metrics
from repro.parallel import ConvergenceCache
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.util.tables import render_table


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _outcomes_equal(a, b) -> bool:
    return (
        list(a) == list(b)
        and all(
            a[key].polluted_asns == b[key].polluted_asns
            and a[key].blocked_asns == b[key].blocked_asns
            and a[key].address_fraction == b[key].address_fraction
            for key in a
        )
    )


def test_parallel_sweep_and_cache(benchmark, store):
    graph = generate_topology(GeneratorConfig.scaled(AS_COUNT, seed=SEED))
    # Separate sinks so the assertions stay exact: the parallel lab's
    # internally constructed cache would otherwise mix its prewarm
    # misses into the explicit cache workload's counters.
    pool_metrics = Metrics()
    cache_metrics = Metrics()
    cache_stats_final: dict[str, float] = {}
    target = HijackLab(graph, seed=SEED).attacker_pool(transit_only=True)[3]

    def run() -> dict[str, float]:
        measurements: dict[str, float] = {
            "as_count": AS_COUNT,
            "sweep_sample": SAMPLE or 0,
            "workers": BENCH_WORKERS,
            "cores": _available_cores(),
        }

        # -- sweep: sequential vs pooled (fresh lab each, cold caches) ----
        sequential_lab = HijackLab(graph, seed=SEED)
        start = time.perf_counter()
        sequential = sequential_lab.sweep_target(
            target, transit_only=True, sample=SAMPLE, seed=SEED
        )
        measurements["sweep_sequential_s"] = time.perf_counter() - start

        parallel_lab = HijackLab(graph, seed=SEED, workers=BENCH_WORKERS,
                                 metrics=pool_metrics)
        start = time.perf_counter()
        parallel = parallel_lab.sweep_target(
            target, transit_only=True, sample=SAMPLE, seed=SEED
        )
        measurements["sweep_parallel_s"] = time.perf_counter() - start
        assert _outcomes_equal(sequential, parallel), (
            "parallel sweep diverged from the sequential reference"
        )
        measurements["sweep_speedup"] = (
            measurements["sweep_sequential_s"] / measurements["sweep_parallel_s"]
        )

        # -- convergence cache: cold vs warm random-attack workload -------
        cache = ConvergenceCache(capacity=4096, metrics=cache_metrics)
        cached_lab = HijackLab(graph, seed=SEED, cache=cache)
        start = time.perf_counter()
        cold = cached_lab.random_attacks(CACHE_ATTACKS, seed=SEED)
        measurements["random_cold_s"] = time.perf_counter() - start
        cold_stats = cache.stats.as_dict()

        start = time.perf_counter()
        warm = cached_lab.random_attacks(CACHE_ATTACKS, seed=SEED)
        measurements["random_warm_s"] = time.perf_counter() - start
        assert [o.polluted_asns for o in cold] == [o.polluted_asns for o in warm], (
            "warm-cache workload diverged from the cold-cache reference"
        )
        cache_stats_final.update(cache.stats.as_dict())
        measurements["cache_attacks"] = CACHE_ATTACKS
        measurements["cache_cold_hit_rate"] = cold_stats["hit_rate"]
        measurements["cache_warm_hit_rate"] = cache.stats.as_dict()["hit_rate"]
        measurements["cache_speedup"] = (
            measurements["random_cold_s"] / measurements["random_warm_s"]
        )

        # -- runtime invariant checking: off (default) vs on --------------
        # A reduced sweep keeps the validated pass minutes-cheap (the
        # checker is O(edges) per convergence, on par with the convergence
        # itself). Outcomes must be identical — validation observes, never
        # steers — and the recorded ratio tracks what --validate costs.
        validate_sample = min(SAMPLE or 120, 120)
        start = time.perf_counter()
        unchecked = HijackLab(graph, seed=SEED).sweep_target(
            target, transit_only=True, sample=validate_sample, seed=SEED
        )
        measurements["validate_off_s"] = time.perf_counter() - start
        start = time.perf_counter()
        checked = HijackLab(graph, seed=SEED, validate=True).sweep_target(
            target, transit_only=True, sample=validate_sample, seed=SEED
        )
        measurements["validate_on_s"] = time.perf_counter() - start
        assert _outcomes_equal(unchecked, checked), (
            "validated sweep diverged from the unchecked reference"
        )
        measurements["validate_overhead"] = (
            measurements["validate_on_s"] / measurements["validate_off_s"]
        )
        return measurements

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)

    # The metrics layer must report the knobs the run actually resolved:
    # the pool gauge is the conftest-resolved worker count, and the cache
    # counters mirror the cache's own CacheStats exactly.
    assert pool_metrics.gauges["executor.workers"] == BENCH_WORKERS, (
        "metrics pool gauge disagrees with the conftest-resolved worker count"
    )
    counters = cache_metrics.counters
    assert counters.get("cache.hits", 0) == cache_stats_final["hits"]
    assert counters.get("cache.misses", 0) == cache_stats_final["misses"]
    assert counters.get("cache.evictions", 0) == cache_stats_final["evictions"]

    print()
    print(
        render_table(
            ("metric", "value"),
            [(key, round(value, 4)) for key, value in measurements.items()],
            title="Parallel sweep executor + convergence cache",
        )
    )

    result = ExperimentResult(
        experiment_id="bench_parallel",
        title="Sequential vs parallel sweep + convergence cache",
        summary=dict(measurements),
    )
    result.save_json(RESULTS_DIR / "data")
    store.record(
        result,
        params={"as_count": AS_COUNT, "sample": SAMPLE, "seed": SEED,
                "workers": BENCH_WORKERS},
    )

    # The warm cache must pay for itself decisively: every baseline is a
    # hit, so the warm pass does strictly less work than the cold one.
    assert measurements["cache_warm_hit_rate"] > measurements["cache_cold_hit_rate"]
    assert measurements["cache_speedup"] >= 1.2
    if _available_cores() >= 2:
        # With real cores behind the pool the sweep must parallelize;
        # the ~2x bar at 4 workers is deliberately conservative.
        assert measurements["sweep_speedup"] >= min(2.0, _available_cores() * 0.45)
