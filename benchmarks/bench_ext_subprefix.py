"""EXT-SUB — sub-prefix hijacks (extension of the paper's future work).

"Some origin and sub-prefix attacks will still get through, and possibly
remain undetected" (Section VIII). A more-specific announcement propagates
as a fresh NLRI: longest-prefix match gives the attacker every AS the
announcement reaches, regardless of route preference — so route-preference
resilience (depth, multi-homing) is no defense, and only origin validation
with exact-length authorizations contains it.
"""

from repro.util.tables import render_table


def test_ext_subprefix_hijacks(run_experiment, suite):
    result = run_experiment("ext_subprefix")
    summary = result.summary
    rows = [
        (
            label,
            round(stats["mean"], 1),
            round(stats["mean_successful"], 1),
            int(stats["maximum"]),
        )
        for label, stats in summary.items()
        if isinstance(stats, dict) and "mean" in stats
    ]
    print()
    print(render_table(
        ("attack kind", "mean pollution", "mean (successful)", "max"),
        rows,
        title=f"EXT-SUB: {summary['attackers']} attackers vs "
              f"AS{summary['target']}",
    ))
    print(f"sub-prefix >= origin pollution for "
          f"{summary['subprefix_dominates_fraction']:.0%} of attackers")

    origin = summary["origin_hijack"]
    sub = summary["subprefix_hijack"]
    blocked = summary["subprefix_with_core299_rov"]
    # Shape 1: sub-prefix hijacks dominate origin hijacks.
    assert sub["mean"] > origin["mean"]
    assert summary["subprefix_dominates_fraction"] > 0.9
    # Shape 2: a sub-prefix hijack reaches nearly the whole topology.
    assert sub["mean"] > 0.8 * len(suite.graph)
    # Shape 3: origin validation (exact-length ROAs) contains it.
    assert blocked["mean"] < 0.2 * sub["mean"]
