"""BENCH-SERVICE — the always-on monitoring daemon's arrive→verdict path.

Not a paper figure: this benchmark tracks the monitoring service's
steady-state loop (see ``docs/service.md``) — JSONL lines pushed through
the sharded ingest plane (:class:`~repro.service.shards.ShardPlane`)
with a verdict poll after each, which is exactly what the asyncio daemon
does per request, minus the I/O.

It runs :func:`repro.obs.bench.run_service_bench` once (the same routine
behind ``repro-bgp bench --suite service``, profile picked by
``REPRO_BENCH_SERVICE_PROFILE``), writes the schema-versioned
``BENCH_service.json`` under ``results/`` for the bench-smoke CI gate's
compare differ, and asserts:

* every shard count produced the identical verdict set — sharding must
  change wall-clock only (``derived.verdicts_consistent``);
* every injected garbage line was skipped and counted, never fatal;
* each confirmed attack actually produced a verdict at every shard
  count.
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR, SERVICE_PROFILE

from repro.obs.bench import run_service_bench
from repro.util.tables import render_table


def test_service_bench(benchmark, bench_metrics):
    payload, path = benchmark.pedantic(
        run_service_bench,
        args=(SERVICE_PROFILE,),
        kwargs={
            "output": RESULTS_DIR / "BENCH_service.json",
            "metrics": bench_metrics,
        },
        rounds=1,
        iterations=1,
    )
    derived = payload["derived"]
    per_shard = derived["shards"]

    rows = []
    for shards, stats in sorted(per_shard.items(), key=lambda item: int(item[0])):
        rows.append((
            shards,
            round(stats["events_per_s"], 1),
            stats["verdicts"],
            stats["malformed"],
            round((stats["latency_p50_s"] or 0.0) * 1000, 3),
            round((stats["latency_p95_s"] or 0.0) * 1000, 3),
        ))
    print()
    print(render_table(
        ("shards", "events/s", "verdicts", "malformed", "p50 ms", "p95 ms"),
        rows,
        title=f"BENCH-SERVICE profile: {SERVICE_PROFILE} → {path}",
    ))

    assert derived["verdicts_consistent"] is True
    for stats in per_shard.values():
        assert stats["malformed"] == derived["malformed_lines"]
        assert stats["verdicts"] > 0
