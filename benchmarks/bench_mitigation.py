"""EXT-MIT — reactive mitigation (the taxonomy's third class).

Section II's taxonomy: detection, reactive mitigation, proactive
prevention. This extension measures the reactive moves after a detected
hijack of the deep target: how much a core-subscriber purge recovers, and
how completely deaggregation (the "promote" counter) wins traffic back —
plus its collapse when the attacker escalates with the same
more-specifics.
"""

from repro.defense.mitigation import deaggregation_response, purge_response
from repro.defense.strategies import top_degree_deployment


def test_ext_reactive_mitigation(benchmark, suite):
    lab = suite.lab
    target = suite.roles.deep_target
    attacker = suite.roles.aggressive_attacker
    responders = top_degree_deployment(lab.graph, 62).deployers

    def run():
        outcome = lab.origin_hijack(target, attacker)
        purge = purge_response(lab, outcome, responders)
        deagg = deaggregation_response(lab, outcome)
        escalated = deaggregation_response(lab, outcome, attacker_escalates=True)
        return outcome, purge, deagg, escalated

    outcome, purge, deagg, escalated = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nEXT-MIT: hijack of AS{target} polluted {outcome.pollution_count} ASes")
    print(f"  purge by top-62 subscribers: {len(purge.recovered_asns)} recovered "
          f"({purge.effectiveness():.0%}), {purge.residual_pollution} residual")
    print(f"  deaggregation: {deagg.recovery_fraction:.0%} of polluted ASes "
          f"recovered via {len(deagg.announced)} more-specifics")
    print(f"  … under attacker escalation: {escalated.recovery_fraction:.0%} "
          f"recovered, {len(escalated.contested_asns)} ASes contested")

    # Shapes: purge at the core recovers a large share; deaggregation
    # recovers (nearly) everyone; escalation replays the original contest.
    assert purge.effectiveness() > 0.5
    assert deagg.recovery_fraction > 0.95
    assert escalated.recovery_fraction < deagg.recovery_fraction
