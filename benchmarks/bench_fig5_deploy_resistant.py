"""FIG5 — incremental defense deployment, resistant depth-1 target.

Paper ladder: baseline, random-100/500, the 17 tier-1s, then the degree
cores (62/124/166/299 ASes). Random deployment has "negligible to minor
effect"; tier-1 gives "the first real gain"; the 62-AS core shows "the
most marked improvement"; more filters keep helping.
"""

from benchmarks.conftest import print_summary_table


def test_fig5_deployment_ladder_resistant_target(run_experiment):
    result = run_experiment("fig5")
    print_summary_table(result)
    factors = result.summary["improvement_factors"]
    print()
    print("improvement over baseline (mean successful pollution):")
    for name, factor in factors.items():
        print(f"  {name:>12}: {factor:7.1f}x")

    random_factors = [f for name, f in factors.items() if name.startswith("random")]
    tier1 = next(f for name, f in factors.items() if name.startswith("tier1"))
    # Paper shapes: random ~ useless; tier-1 helps; core-62 is the jump;
    # the ladder keeps improving through core-299.
    assert max(random_factors) < 3.0
    assert tier1 > max(random_factors)
    assert factors["core-62"] > 2 * tier1
    assert factors["core-299"] >= factors["core-62"]
    assert result.summary["crossover_strategy"] is not None
