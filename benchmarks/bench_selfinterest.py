"""EXP-NZ1 / EXP-NZ2 — the Section VII regional self-interest experiments.

Paper (New Zealand region, 187 ASes, target AS55857):

* re-homing the target up two levels cut average regional pollution from
  113/187 (60%) to 46 (25%) for regional attackers and from 28 (15%) to
  12 (6%) for 200 external attackers;
* a single prefix filter at the regional hub (VOCUS) cut regional attacks
  to 74 (40%) and external ones to 26 (14%).
"""


def _print_impact(summary, label):
    print()
    print(f"{label}:")
    print(
        f"  regional attackers: {summary['regional_fraction_before']:.0%}"
        f" -> {summary['regional_fraction_after']:.0%}"
    )
    print(
        f"  external attackers: {summary['external_fraction_before']:.0%}"
        f" -> {summary['external_fraction_after']:.0%}"
    )
    print(f"  paper reference: {summary['paper']}")


def test_nz1_rehoming(run_experiment):
    result = run_experiment("nz_rehoming")
    summary = result.summary
    _print_impact(
        summary,
        f"EXP-NZ1 re-homing in region {summary['region']} "
        f"({summary['region_size']} ASes, target AS{summary['target']})",
    )
    # Shape: re-homing strictly reduces both exposure numbers.
    assert summary["rehoming"] is not None
    assert summary["regional_fraction_after"] < summary["regional_fraction_before"]
    assert summary["external_fraction_after"] <= summary["external_fraction_before"]


def test_nz2_regional_hub_filter(run_experiment):
    result = run_experiment("nz_filter")
    summary = result.summary
    _print_impact(
        summary,
        f"EXP-NZ2 single hub filter (AS{summary['hub']}) in region "
        f"{summary['region']}",
    )
    # Shape: one well-placed filter measurably reduces regional exposure.
    assert summary["regional_fraction_after"] < summary["regional_fraction_before"]
    assert summary["external_fraction_after"] <= summary["external_fraction_before"]
