"""FIG4 — defensive stub filters (the "optimistic scenario").

Paper: with transit providers filtering bogus announcements from their
stub customers, attacks originate only from the 14.7% transit ASes. The
curves "simply scale down but keep their general shape".
"""

from benchmarks.conftest import print_summary_table


def test_fig4_stub_filter_scaling(run_experiment):
    result = run_experiment("fig4")
    print_summary_table(result)

    stats = {
        label: value
        for label, value in result.summary.items()
        if isinstance(value, dict) and "mean" in value
    }
    # Scale-down: the filtered (transit-only) curves count fewer attackers.
    for target in ("depth-1", "deep target"):
        all_attackers = stats[f"{target}, all attackers"]
        filtered = stats[f"{target}, stub-filtered"]
        assert filtered["count"] < all_attackers["count"]
        assert filtered["maximum"] <= all_attackers["maximum"]
    # Shape preserved: ordering between the targets survives filtering.
    assert (
        stats["deep target, stub-filtered"]["mean"]
        > stats["depth-1, stub-filtered"]["mean"]
    )
    assert result.summary["shape_preserved"]
