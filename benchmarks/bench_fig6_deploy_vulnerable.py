"""FIG6 — incremental defense deployment, very vulnerable deep target.

Paper: same ladder, far worse starting point (tier-1-only still leaves an
average successful attack polluting 52% of the internet); the 62-AS core
flips the curve's concavity; ~299 deployers are needed for a major effect.
"""

from benchmarks.conftest import print_summary_table


def test_fig6_deployment_ladder_vulnerable_target(run_experiment, suite):
    result = run_experiment("fig6")
    print_summary_table(result)
    factors = result.summary["improvement_factors"]
    print()
    print("improvement over baseline (mean successful pollution):")
    for name, factor in factors.items():
        print(f"  {name:>12}: {factor:7.1f}x")

    as_count = len(suite.graph)
    baseline = result.summary["baseline"]
    tier1_stats = next(
        value for name, value in result.summary.items()
        if name.startswith("tier1") and isinstance(value, dict)
    )
    # Paper: the deep target's baseline successful attack pollutes most of
    # the internet, and tier-1-only still leaves ~half polluted.
    assert baseline["mean_successful"] > 0.5 * as_count
    assert tier1_stats["mean_successful"] > 0.2 * as_count
    # The non-linear threshold at the high-degree core.
    assert factors["core-62"] > 4.0
    assert factors["core-299"] > factors["core-62"]
    assert str(result.summary["crossover_strategy"]).startswith("core")
