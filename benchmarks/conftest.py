"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation: it runs the experiment (timed once through pytest-benchmark),
prints the same rows/series the paper reports, renders the SVG artifact
under ``results/``, records the run into the sqlite result store, and
asserts the paper's qualitative shape (who wins, by roughly what factor).

Scale knobs (environment variables):

``REPRO_BENCH_AS_COUNT``      topology size        (default 4270 — 1/10 CAIDA)
``REPRO_BENCH_SAMPLE``        attackers per sweep  (default 1200; 0 = exhaustive)
``REPRO_BENCH_ATTACKS``       Fig. 7 workload size (default 8000, as the paper)
``REPRO_BENCH_SEED``          experiment seed      (default 2014)
``REPRO_BENCH_WORKERS``       sweep worker processes (default 1; 0 = all cores)
``REPRO_BENCH_CACHE_ATTACKS`` cache-workload size for BENCH-PAR (default 600)
``REPRO_BENCH_STREAM_PROFILE`` stream profile for BENCH-STREAM (default smoke)
``REPRO_BENCH_BATCH_PROFILE``  batch profile for BENCH-BATCH (default smoke)
``REPRO_BENCH_SERVICE_PROFILE`` service profile for BENCH-SERVICE (default smoke)
``REPRO_BENCH_INGEST_PROFILE``  ingest profile for BENCH-INGEST (default smoke)

Every ``bench_*`` module reads its knobs from here — nothing else in
``benchmarks/`` touches ``os.environ`` — so one table lists every way a
run can be scaled. ``BENCH_WORKERS`` is the *resolved* pool size the
parallel benchmark will actually use (the ``WORKERS`` knob passed
through :func:`repro.parallel.resolve_workers`, with the historical
"unset means 4" default).

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.store import ResultStore
from repro.experiments.suite import ExperimentSuite
from repro.obs import Metrics
from repro.parallel import resolve_workers
from repro.topology.generator import GeneratorConfig
from repro.util.tables import render_table


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return default if value in (None, "") else int(value)


AS_COUNT = _env_int("REPRO_BENCH_AS_COUNT", 4270)
SAMPLE = _env_int("REPRO_BENCH_SAMPLE", 1200) or None
ATTACKS = _env_int("REPRO_BENCH_ATTACKS", 8000)
SEED = _env_int("REPRO_BENCH_SEED", 2014)
WORKERS = _env_int("REPRO_BENCH_WORKERS", 1)
CACHE_ATTACKS = _env_int("REPRO_BENCH_CACHE_ATTACKS", 600)
STREAM_PROFILE = os.environ.get("REPRO_BENCH_STREAM_PROFILE") or "smoke"
BATCH_PROFILE = os.environ.get("REPRO_BENCH_BATCH_PROFILE") or "smoke"
SERVICE_PROFILE = os.environ.get("REPRO_BENCH_SERVICE_PROFILE") or "smoke"
INGEST_PROFILE = os.environ.get("REPRO_BENCH_INGEST_PROFILE") or "smoke"
BENCH_WORKERS = resolve_workers(WORKERS) if WORKERS != 1 else 4
RESULTS_DIR = Path(os.environ.get("REPRO_BENCH_RESULTS", "results"))


@pytest.fixture(scope="session")
def bench_metrics() -> Metrics:
    """One shared metrics sink for the whole benchmark session."""
    return Metrics()


@pytest.fixture(scope="session")
def suite(bench_metrics) -> ExperimentSuite:
    config = ExperimentConfig(
        topology=GeneratorConfig.scaled(AS_COUNT, seed=SEED),
        seed=SEED,
        output_dir=RESULTS_DIR,
        attacker_sample=SAMPLE,
        detection_attacks=ATTACKS,
        external_sample=200,
        workers=WORKERS,
    )
    return ExperimentSuite(config, metrics=bench_metrics)


@pytest.fixture(scope="session")
def store() -> ResultStore:
    with ResultStore(RESULTS_DIR / "runs.sqlite") as result_store:
        yield result_store


@pytest.fixture
def run_experiment(suite, store, benchmark):
    """Time one suite method, persist its result, and return it.

    Runs through :meth:`ExperimentSuite.run`, so every timed experiment
    also lands as a ``suite.<name>`` span in the session's metrics sink.
    """

    def runner(name: str):
        result = benchmark.pedantic(
            suite.run, args=(name,), rounds=1, iterations=1
        )
        result.save_json(RESULTS_DIR / "data")
        store.record(
            result,
            params={
                "as_count": AS_COUNT,
                "sample": SAMPLE,
                "attacks": ATTACKS,
                "seed": SEED,
                "workers": WORKERS,
            },
        )
        return result

    return runner


def print_summary_table(result, *, series_stat_keys=("mean", "maximum")) -> None:
    """Print per-curve summary rows in the paper's vocabulary."""
    rows = []
    for label, stats in result.summary.items():
        if isinstance(stats, dict) and "mean" in stats:
            rows.append(
                (label, *(round(stats[key], 1) for key in series_stat_keys))
            )
    if rows:
        print()
        print(render_table(("curve", *series_stat_keys), rows, title=result.title))
