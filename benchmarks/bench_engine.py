"""Engine performance: why the repository has two routing engines.

The paper's sweeps attack one target from every other AS. These benches
measure the fast engine's single-hijack latency (with the legitimate state
amortized, as sweeps do), the equivalent message-simulator run, and the
legitimate-convergence cost — quantifying the speedup that makes
exhaustive sweeps practical.
"""

import pytest

from repro.bgp.engine import RoutingEngine
from repro.bgp.simulator import BGPSimulator
from repro.prefixes.prefix import Prefix
from repro.topology.view import RoutingView
from repro.util.rng import make_rng

PREFIX = Prefix.parse("10.0.0.0/8")


@pytest.fixture(scope="module")
def setup(suite):
    view = RoutingView.from_graph(suite.graph)
    engine = RoutingEngine(view)
    rng = make_rng(17, "engine-bench")
    target, attacker = rng.sample(range(len(view)), 2)
    legit = engine.converge(target)
    return view, engine, target, attacker, legit


def test_engine_legitimate_convergence(benchmark, setup):
    view, engine, target, _attacker, _legit = setup
    state = benchmark(engine.converge, target)
    assert all(state.has_route(node) for node in range(len(view)))


def test_engine_hijack_amortized(benchmark, setup):
    """Per-attack cost in a sweep (legitimate state precomputed)."""
    view, engine, target, attacker, legit = setup

    result = benchmark(
        engine.hijack, target, attacker, legitimate=legit
    )
    assert result.final.origin == attacker


def test_simulator_full_hijack(benchmark, setup):
    """The same attack through the generation-stepped message simulator."""
    view, _engine, target, attacker, legit = setup

    def run():
        simulator = BGPSimulator(view)
        simulator.announce(target, PREFIX)
        return simulator.announce(attacker, PREFIX)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    # Cross-check against the engine while we are at it.
    engine_result = RoutingEngine(view).hijack(target, attacker, legitimate=legit)
    assert frozenset(report.adopters) == engine_result.polluted_nodes


def test_engine_sweep_throughput(benchmark, setup):
    """A 100-attacker mini-sweep: the workload unit of Figs. 2-6."""
    view, engine, target, _attacker, legit = setup
    rng = make_rng(18, "engine-sweep")
    attackers = [a for a in rng.sample(range(len(view)), 101) if a != target][:100]

    def sweep():
        return [
            len(engine.hijack(target, a, legitimate=legit).polluted_nodes)
            for a in attackers
        ]

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(counts) == 100
