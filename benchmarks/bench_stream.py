"""BENCH-STREAM — event streaming: incremental vs full re-convergence.

Not a paper figure: this benchmark tracks the streaming subsystem's
headline claim (see ``docs/streaming.md``) — applying K announce/withdraw
events to a live :class:`~repro.stream.incremental.PrefixLedger` costs
far less than K cold chain convergences — plus the replay engine's
end-to-end throughput and the online monitor's detection latency.

It runs :func:`repro.obs.bench.run_stream_bench` once (the same routine
behind ``repro-bgp bench --suite stream``, profile picked by
``REPRO_BENCH_STREAM_PROFILE``), writes the schema-versioned
``BENCH_stream.json`` under ``results/`` for the bench-smoke CI gate's
compare differ, and asserts:

* the untimed shadow pass found every per-event checksum identical to
  the cold reference (the correctness side of the speed claim);
* the incremental path actually beats full re-convergence — with the
  ISSUE's ≥3× bar enforced at default (4,270-AS) scale, where the O(N)
  convergence cost dwarfs per-event bookkeeping.
"""

from __future__ import annotations

from benchmarks.conftest import RESULTS_DIR, STREAM_PROFILE

from repro.obs.bench import STREAM_PROFILES, run_stream_bench
from repro.util.tables import render_table


def test_stream_bench(benchmark, bench_metrics):
    payload, path = benchmark.pedantic(
        run_stream_bench,
        args=(STREAM_PROFILE,),
        kwargs={
            "output": RESULTS_DIR / "BENCH_stream.json",
            "metrics": bench_metrics,
        },
        rounds=1,
        iterations=1,
    )
    timings = payload["timings"]
    derived = payload["derived"]
    speedup = payload["speedups"]["stream_incremental"]

    rows = [(key, round(value, 4)) for key, value in sorted(timings.items())]
    rows += [
        ("incremental speedup", f"{speedup:.2f}x"),
        ("events/s (replay)", round(derived["events_per_s"], 1)),
        ("alarms", derived["alarms"]),
        ("detection latency (virtual s)", derived["detection_latency_time"]),
    ]
    print()
    print(render_table(("phase", "value"), rows,
                       title=f"BENCH-STREAM profile: {STREAM_PROFILE} → {path}"))

    assert derived["checksums_consistent"] is True
    assert speedup > 1.0
    if STREAM_PROFILES[STREAM_PROFILE].as_count >= 4000:
        # The ISSUE 4 acceptance bar, meaningful only at full scale.
        assert speedup >= 3.0
