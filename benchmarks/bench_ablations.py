"""ABL — ablations of the design choices DESIGN.md calls out.

* **tier-1 shortest-path policy**: the paper attributes its detector blind
  spots to tier-1s preferring shortest paths; turning the rule off should
  make tier-1 probes markedly better detectors.
* **stub filters**: the optimistic scenario must strictly reduce the
  effective attacker pool and the baseline exposure.
* **registry backends**: RPKI and ROVER validation must agree while
  costing differently (measured here).
"""

import pytest

from repro.attacks.lab import HijackLab
from repro.bgp.policy import PolicyConfig
from repro.core.detection_analysis import compare_detectors
from repro.defense.deployment import Defense
from repro.detection.probes import tier1_probes
from repro.registry.publication import PublicationState
from repro.util.rng import make_rng

ABLATION_ATTACKS = 800


@pytest.fixture(scope="module")
def labs(suite):
    default = suite.lab
    no_tier1_rule = HijackLab(
        suite.graph,
        plan=default.plan,
        policy=PolicyConfig(tier1_shortest_path=False),
        seed=suite.config.seed,
    )
    return default, no_tier1_rule


def test_abl_tier1_policy_drives_detector_blind_spots(benchmark, labs):
    """Paper, Section VI: "If tier-1 policy were different, then some of
    them may have detected the attack." Disable the rule and measure."""
    default, ablated = labs

    def run():
        probe_sets = [tier1_probes(default.graph)]
        with_rule = compare_detectors(
            default, probe_sets, attack_count=ABLATION_ATTACKS, seed=5
        ).miss_rates()
        without_rule = compare_detectors(
            ablated, probe_sets, attack_count=ABLATION_ATTACKS, seed=5
        ).miss_rates()
        return next(iter(with_rule.values())), next(iter(without_rule.values()))

    with_rule, without_rule = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nABL-T1: tier-1 probe miss rate {with_rule:.1%} with the "
          f"shortest-path rule vs {without_rule:.1%} without")
    assert without_rule < with_rule


def test_abl_stub_filters_shrink_exposure(benchmark, suite):
    """First-hop stub filtering must nullify stub attackers entirely."""
    lab = suite.lab
    filtered = lab.with_defense(Defense(stub_filter=True))
    from repro.topology.classify import stub_asns

    rng = make_rng(6, "abl-stub")
    stubs = sorted(stub_asns(lab.graph))
    target = suite.roles.deep_target
    attackers = [a for a in rng.sample(stubs, 60) if a != target]

    def run():
        baseline = sum(
            lab.origin_hijack(target, a).pollution_count for a in attackers
        )
        with_filters = sum(
            filtered.origin_hijack(target, a).pollution_count for a in attackers
        )
        return baseline, with_filters

    baseline, with_filters = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nABL-STUB: total pollution from {len(attackers)} stub attackers: "
          f"{baseline} baseline vs {with_filters} with stub filters")
    assert baseline > 0
    assert with_filters == 0


def test_abl_pgbgp_style_historical_blocking(benchmark, suite):
    """The paper's Section II cross-check: PGBGP reports "97% of ASes can
    be protected from malicious prefix routes when PGBGP is deployed only
    on the 62 core ASes"; the paper counters that "the general case
    requires wider security deployment". Historical-origin blocking at the
    top-62 core over random attacks measures exactly that claim."""
    from repro.defense.strategies import top_degree_deployment
    from repro.registry.history import HistoricalAuthority

    lab = suite.lab
    history = HistoricalAuthority.from_plan(lab.plan)
    defended = lab.with_defense(
        Defense(strategy=top_degree_deployment(lab.graph, 62), authority=history)
    )

    def run():
        baseline = lab.random_attacks(ABLATION_ATTACKS, seed=9)
        protected_outcomes = defended.random_attacks(ABLATION_ATTACKS, seed=9)
        total = len(lab.graph) * len(baseline)
        base_polluted = sum(o.pollution_count for o in baseline)
        core_polluted = sum(o.pollution_count for o in protected_outcomes)
        return 1 - base_polluted / total, 1 - core_polluted / total

    base_ok, core_ok = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nABL-PGBGP: mean fraction of ASes unpolluted per attack: "
          f"{base_ok:.1%} baseline -> {core_ok:.1%} with 62-core historical "
          f"blocking (PGBGP paper claims 97%)")
    assert core_ok > base_ok
    assert core_ok > 0.90  # the 62-core claim is in reach on average...


def test_abl_stale_history_churn(benchmark, suite):
    """Section VI's warning quantified: historical data raises false
    alerts after legitimate transfers, and *blocking* on it blackholes the
    rightful owner — registries updated by the owner do not."""
    from repro.core.churn import sample_transfers, stale_history_study
    from repro.defense.strategies import top_degree_deployment

    lab = suite.lab
    events = sample_transfers(lab, 25, seed=11)
    strategy = top_degree_deployment(lab.graph, 62)

    def run():
        impacts = stale_history_study(lab, events, blocking_strategy=strategy)
        false_positives = sum(1 for i in impacts if i.false_positive)
        worst = max(i.blackholed_fraction for i in impacts)
        return false_positives, worst

    false_positives, worst = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nABL-CHURN: {false_positives}/{len(events)} legitimate transfers "
          f"flagged as hijacks by stale history; worst collateral "
          f"blackholing {worst:.1%} of ASes")
    assert false_positives == len(events)
    assert worst > 0.0


def test_abl_registry_backends_agree(benchmark, suite):
    """RPKI vs ROVER: same verdicts over the hijack workload; the bench
    records the cost of the two validation paths."""
    plan = suite.lab.plan
    sample_asns = sorted(plan.all_asns())[:150]
    publication = PublicationState.with_participants(plan, sample_asns, seed=1)
    rpki_table = publication.to_rpki().validated_table()
    rover = publication.to_rover()
    rng = make_rng(7, "abl-registry")
    queries = []
    for _ in range(150):
        owner = rng.choice(sample_asns)
        hijacker = rng.choice(sample_asns)
        queries.append((plan.primary_prefix(owner), hijacker))

    def run():
        disagreements = 0
        for prefix, origin in queries:
            if rpki_table.validate(prefix, origin) is not rover.validate(prefix, origin):
                disagreements += 1
        return disagreements

    disagreements = benchmark.pedantic(run, rounds=1, iterations=1)
    assert disagreements == 0
