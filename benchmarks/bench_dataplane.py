"""EXT-DATA — data-plane capture vs control-plane pollution.

The paper's pollution counts are control-plane (RIBs holding the bogus
path). The data plane can be worse: ASes with clean RIBs forward through
polluted upstreams and their traffic lands at the hijacker anyway. This
extension measures the hidden capture across random attacks — how much an
RIB-based pollution count underestimates real traffic impact.
"""

from repro.attacks.dataplane import dataplane_capture
from repro.util.rng import make_rng

SAMPLES = 60


def test_ext_dataplane_capture(benchmark, suite):
    view = suite.lab.view
    engine = suite.lab.engine
    rng = make_rng(suite.config.seed, "dataplane-bench")

    def run():
        total_polluted = 0
        total_captured = 0
        total_hidden = 0
        loops = 0
        for _ in range(SAMPLES):
            target, attacker = rng.sample(range(len(view)), 2)
            result = engine.hijack(target, attacker)
            report = dataplane_capture(result)
            total_polluted += len(report.control_plane_polluted)
            total_captured += len(report.captured)
            total_hidden += len(report.hidden_capture)
            loops += len(report.looping)
        return total_polluted, total_captured, total_hidden, loops

    polluted, captured, hidden, loops = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    inflation = captured / polluted if polluted else 1.0
    print(f"\nEXT-DATA over {SAMPLES} random attacks: control-plane polluted "
          f"{polluted}, data-plane captured {captured} "
          f"({inflation:.3f}x inflation), hidden capture {hidden}, "
          f"forwarding loops {loops}")

    # Shape: data-plane capture can only meet or exceed RIB pollution
    # (modulo rare loops), and the totals are non-trivial.
    assert captured + loops >= polluted
    assert polluted > 0
