"""Convergence statistics — validating the simulator against the paper.

Paper, Section III: "Convergence is generally reached within 5 to 10
generations." This bench measures the generations-to-convergence
distribution over sampled origins and the per-generation acceptance
wavefront that Fig. 1 visualizes.
"""

from repro.bgp.convergence import generation_wavefront, measure_convergence
from repro.topology.view import RoutingView


def test_convergence_within_paper_band(benchmark, suite):
    view = RoutingView.from_graph(suite.graph)

    stats = benchmark.pedantic(
        measure_convergence, args=(view,),
        kwargs={"sample": 30, "seed": suite.config.seed},
        rounds=1, iterations=1,
    )
    print(f"\nconvergence generations over {stats.samples} announcements: "
          f"min {stats.minimum}, mean {stats.mean:.1f}, max {stats.maximum}")
    print(f"histogram: {dict(stats.histogram)}")
    # Paper band: generally within 5-10; never beyond.
    assert stats.maximum <= 10
    assert stats.within(1, 10) == 1.0


def test_wavefront_has_explosive_middle(benchmark, suite):
    view = RoutingView.from_graph(suite.graph)
    origin = view.node_of(suite.roles.deep_target)
    wavefront = benchmark.pedantic(
        generation_wavefront, args=(view, origin), rounds=1, iterations=1
    )
    print(f"\nacceptances per generation from AS{suite.roles.deep_target}: "
          f"{wavefront}")
    # Fig. 1's shape: the first generation is tiny relative to the peak.
    assert max(wavefront) > 5 * wavefront[0]
    assert sum(wavefront) >= len(view) - 1
