"""TAB1–TAB5 — the evaluation tables.

TAB1/TAB2 (Section V): the top-5 attacks still potent against each target
under the largest deployment — the paper's point that "a clever attacker
armed with the same tools" can still find viable attacks.

TAB3–TAB5 (Section VI): the top-5 attacks that completely escaped each
detector configuration.
"""

from repro.util.tables import render_table


def _print_potent(result):
    rows = [
        (row["attacker_asn"], row["pollution_count"], row["degree"], row["depth"])
        for row in result.tables["potent_attacks"]
    ]
    print()
    print(render_table(("ASN", "pollution", "degree", "depth"), rows, title=result.title))
    return rows


def test_tab1_potent_attacks_resistant_target(run_experiment):
    result = run_experiment("tab1")
    rows = _print_potent(result)
    assert len(rows) <= 5
    # Residual attackers exist and are sorted by achieved pollution.
    sizes = [row[1] for row in rows]
    assert sizes == sorted(sizes, reverse=True)


def test_tab2_potent_attacks_vulnerable_target(run_experiment, suite):
    result = run_experiment("tab2")
    rows = _print_potent(result)
    sizes = [row[1] for row in rows]
    assert sizes == sorted(sizes, reverse=True)
    # Paper shape: the still-potent attackers sit at low depth (their
    # tables show depths 1-2) — deep attackers are already neutralized.
    depths = [row[3] for row in rows if row[1] > 0]
    if depths:
        assert min(depths) <= 2


def _print_undetected(result):
    rows = [
        (row["attacker_asn"], row["target_asn"], row["pollution_count"])
        for row in result.tables["undetected"]
    ]
    print()
    print(render_table(("attacker", "target", "pollution"), rows, title=result.title))
    return rows


def test_tab3_undetected_with_tier1_probes(run_experiment, suite):
    result = run_experiment("tab3")
    rows = _print_undetected(result)
    assert rows, "tier-1 probes must miss attacks (paper: 34%)"
    # Paper: huge attacks escape — the largest misses approach half the
    # internet (20,306 of 42,697).
    assert rows[0][2] > 0.1 * len(suite.graph)


def test_tab4_undetected_with_bgpmon_probes(run_experiment):
    result = run_experiment("tab4")
    rows = _print_undetected(result)
    assert result.summary["miss_rate"] > 0.0


def test_tab5_undetected_with_top_degree_probes(run_experiment, suite):
    result = run_experiment("tab5")
    rows = _print_undetected(result)
    # Best config: small miss rate, and what escapes is small (paper: the
    # largest undetected attack is ~6% of the internet vs ~50% for tier-1).
    assert result.summary["miss_rate"] < 0.10
    if rows:
        assert rows[0][2] < 0.25 * len(suite.graph)
