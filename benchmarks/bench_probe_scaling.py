"""EXT-PROBES — the "critical mass of probes" curve.

Paper, Sections VI/VIII: detection "can be highly effective, but … a
critical mass of probes must be present to avoid blind spots", and probes
should be "high-degree, non-overlapping ASes … rather than random ASes".
This extension measures miss rate vs probe count for top-degree, random
and greedy (coverage-trained) placement on a held-out attack workload.
"""

from repro.core.probe_scaling import probe_scaling_study
from repro.util.tables import render_table

COUNTS = (4, 8, 16, 32, 62, 124)


def test_ext_probe_scaling(benchmark, suite):
    workload = suite.detection_workload()[:2000]

    curves = benchmark.pedantic(
        probe_scaling_study,
        args=(suite.graph, workload),
        kwargs={"counts": COUNTS, "seed": suite.config.seed},
        rounds=1, iterations=1,
    )

    rows = []
    for count in COUNTS:
        rows.append((
            count,
            *(f"{curves[policy].miss_rate_at(count):.1%}"
              for policy in ("top-degree", "random", "greedy")),
        ))
    print()
    print(render_table(
        ("probes", "top-degree", "random", "greedy"),
        rows,
        title="EXT-PROBES: miss rate vs probe count (held-out workload)",
    ))
    for policy, curve in curves.items():
        needed = curve.probes_needed(0.05)
        print(f"  {policy}: probes needed for <=5% miss: {needed}")

    # Shapes: more probes help every policy; the informed placements beat
    # random in the scarce regime; a critical mass exists for <=5% miss.
    for curve in curves.values():
        assert curve.points[-1][1] <= curve.points[0][1]
    scarce = COUNTS[1]
    assert (
        curves["greedy"].miss_rate_at(scarce)
        <= curves["random"].miss_rate_at(scarce) + 0.02
    )
    assert curves["top-degree"].probes_needed(0.05) is not None
