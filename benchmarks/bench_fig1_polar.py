"""FIG1 — the polar propagation movie.

Paper: an aggressive attacker vs a very vulnerable depth-5 target; the
attack converges within 7 generations and draws 96% of the address space.
"""


def test_fig1_polar_propagation(run_experiment):
    result = run_experiment("fig1")
    summary = result.summary
    print()
    print(f"FIG1: AS{summary['attacker']} hijacks AS{summary['target']}")
    print(
        f"  generations: {summary['generations']} "
        f"(paper: {summary['paper_generations']})"
    )
    print(
        f"  polluted ASes: {summary['polluted_ases']}; address space drawn: "
        f"{summary['address_space_fraction']:.0%} (paper: 96%)"
    )
    print(f"  frames: {len(result.artifacts)} SVGs under results/figures/fig1/")

    # Paper shape: convergence within ~5-10 generations, and the deep
    # target's hijack captures the clear majority of address space.
    assert 3 <= summary["generations"] <= 12
    assert summary["address_space_fraction"] > 0.5
    assert result.artifacts
