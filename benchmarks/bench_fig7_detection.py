"""FIG7 — three detector configurations vs 8,000 random attacks.

Paper: 17 tier-1 probes surprisingly miss 34% of attacks (some polluting
almost 50% of the internet), the 24 BGPmon-like probes miss 11%, the 62
top-degree probes miss 3%; mean attack size grows with the number of
probes triggered.
"""

from repro.util.tables import render_table


def test_fig7_detector_configurations(run_experiment):
    result = run_experiment("fig7")

    rows = []
    for name, stats in result.summary.items():
        if isinstance(stats, dict) and "miss_rate" in stats:
            rows.append(
                (
                    name,
                    int(stats["missed"]),
                    f"{stats['miss_rate']:.1%}",
                    round(stats["mean_pollution"], 0),
                    int(stats["max_pollution"]),
                )
            )
    print()
    print(
        render_table(
            ("probe set", "missed", "miss rate", "mean missed size", "max missed size"),
            rows,
            title=f"FIG7 over {result.summary['attacks']} random attacks "
            "(paper miss rates: 34% / 11% / 3%)",
        )
    )

    rates = {
        name: stats["miss_rate"]
        for name, stats in result.summary.items()
        if isinstance(stats, dict) and "miss_rate" in stats
    }
    tier1 = next(v for k, v in rates.items() if k.startswith("tier1"))
    bgpmon = next(v for k, v in rates.items() if k.startswith("bgpmon"))
    top = next(v for k, v in rates.items() if k.startswith("top-degree"))

    # The paper's ordering, including the counterintuitive headline:
    # tier-1 probes are the WORST configuration.
    assert tier1 > bgpmon > top
    assert tier1 > 0.15
    assert top < 0.10
    assert result.summary["ordering_matches_paper"]

    # Mean attack size grows with probes triggered (the line series).
    for label, points in result.series.items():
        if label.endswith("/mean_size"):
            buckets = dict(points)
            positive = [b for b in buckets if b > 0]
            if len(positive) >= 3:
                assert buckets[max(positive)] > buckets[min(positive)]
