"""BENCH-INGEST — MRT-style trace compilation at RIB scale.

Not a paper figure: this benchmark tracks the real-trace ingestion path
(see ``docs/ingestion.md``) end to end — a synthesized RouteViews-style
RIB dump plus an update feed are parsed by the chunk-streamed
:class:`~repro.ingest.records.TraceReader`, compiled into stream events,
and replayed through the incremental :class:`~repro.stream.incremental.
PrefixLedger`, which is exactly what ``repro-bgp ingest`` does.

It runs :func:`repro.obs.bench.run_ingest_bench` once (the same routine
behind ``repro-bgp bench --suite ingest``, profile picked by
``REPRO_BENCH_INGEST_PROFILE``), writes the schema-versioned
``BENCH_ingest.json`` under ``results/`` for the bench-smoke CI gate's
compare differ, and asserts:

* every synthesized update record made it through the parser (the
  profile's record count is a floor, not a target);
* every injected garbage line was counted as malformed, never fatal;
* peak RSS growth stayed inside the profile's budget — the streaming
  readers must keep memory flat no matter how large the trace is.
"""

from __future__ import annotations

from benchmarks.conftest import INGEST_PROFILE, RESULTS_DIR

from repro.obs.bench import INGEST_PROFILES, run_ingest_bench
from repro.util.tables import render_table


def test_ingest_bench(benchmark, bench_metrics):
    profile = INGEST_PROFILES[INGEST_PROFILE]
    payload, path = benchmark.pedantic(
        run_ingest_bench,
        args=(profile,),
        kwargs={
            "output": RESULTS_DIR / "BENCH_ingest.json",
            "metrics": bench_metrics,
        },
        rounds=1,
        iterations=1,
    )
    derived = payload["derived"]

    rows = [
        ("update records", derived["updates"]),
        ("RIB entries", derived["rib_entries"]),
        ("malformed lines", derived["malformed"]),
        ("parse records/s", round(derived["parse_records_per_s"], 1)),
        ("ingest events/s", round(derived["ingest_events_per_s"], 1)),
        ("RSS growth (kB)", derived["rss_growth_kb"]),
    ]
    print()
    print(render_table(
        ("metric", "value"),
        rows,
        title=f"BENCH-INGEST profile: {INGEST_PROFILE} → {path}",
    ))

    assert derived["updates"] >= profile.updates
    assert derived["malformed"] == profile.malformed_lines
    assert derived["rss_bounded"] is True
