"""BENCH-BATCH — batched multi-origin sweeps and warm-started ladders.

Not a paper figure: this benchmark tracks the batched array kernel's
headline claims (see the "Batched multi-origin convergence" section of
``docs/performance.md``) — a vulnerability sweep chunk-fused through
:meth:`~repro.bgp.engine.RoutingEngine.converge_batch` beats the
per-attack convergence loop, and a deployment ladder warm-started
through the ``converge_delta`` undo journal beats cold per-rung sweeps —
with both batched paths producing item-identical outcomes.

It runs :func:`repro.obs.bench.run_batch_bench` once (the same routine
behind ``repro-bgp bench --suite batch``, profile picked by
``REPRO_BENCH_BATCH_PROFILE``), writes the schema-versioned
``BENCH_batch.json`` under ``results/`` for the bench-smoke CI gate's
compare differ, and asserts:

* the batched sweep reproduced the unbatched outcomes item-by-item and
  the warm-started ladder matched the cold per-rung profiles (the
  correctness side of the speed claim);
* both batched paths actually win — with the ISSUE's ≥2× sweep bar
  enforced from smoke (2,000-AS) scale up, where the fused frontier
  arrays dwarf per-call bookkeeping.
"""

from __future__ import annotations

from benchmarks.conftest import BATCH_PROFILE, RESULTS_DIR

from repro.obs.bench import BATCH_PROFILES, run_batch_bench
from repro.util.tables import render_table


def test_batch_bench(benchmark, bench_metrics):
    payload, path = benchmark.pedantic(
        run_batch_bench,
        args=(BATCH_PROFILE,),
        kwargs={
            "output": RESULTS_DIR / "BENCH_batch.json",
            "metrics": bench_metrics,
        },
        rounds=1,
        iterations=1,
    )
    timings = payload["timings"]
    derived = payload["derived"]
    sweep_speedup = payload["speedups"]["sweep_batch"]
    ladder_speedup = payload["speedups"]["deployment_warm"]

    rows = [(key, round(value, 4)) for key, value in sorted(timings.items())]
    rows += [
        ("batched sweep speedup", f"{sweep_speedup:.2f}x"),
        ("warm-started ladder speedup", f"{ladder_speedup:.2f}x"),
        ("attackers", derived["attackers"]),
        ("ladder rungs", derived["rungs"]),
        ("origins per chunk", derived["batch_origins"]),
    ]
    print()
    print(render_table(("phase", "value"), rows,
                       title=f"BENCH-BATCH profile: {BATCH_PROFILE} → {path}"))

    assert derived["outcomes_consistent"] is True
    assert derived["ladder_consistent"] is True
    assert sweep_speedup > 1.0
    assert ladder_speedup > 1.0
    if BATCH_PROFILES[BATCH_PROFILE].as_count >= 2000:
        # The ISSUE 7 acceptance bar, meaningful once convergence cost
        # dominates per-scenario bookkeeping.
        assert sweep_speedup >= 2.0
