"""FIG3 — vulnerability curves under a tier-2 hierarchy.

Paper: the tier-2-attached roles line up with their Fig. 2 counterparts
when overlaid — a stub under a big tier-2 behaves like depth 1, which is
what motivated redefining depth to "hops to the nearest tier-1 *or*
tier-2 provider".
"""

from benchmarks.conftest import print_summary_table


def test_fig3_tier2_hierarchy(run_experiment, suite):
    result = run_experiment("fig3")
    print_summary_table(result)

    stats = {
        label: value
        for label, value in result.summary.items()
        if isinstance(value, dict) and "mean" in value
    }
    means = {label: value["mean"] for label, value in stats.items()}
    deep_label = next(
        label for label in means if label.startswith("depth-") and label.endswith("AS")
    )
    # The tier-2 itself is resistant like a core AS.
    assert means["tier-2"] < means[deep_label]
    # The redefinition claim: a stub under a tier-2 is depth-1-like, i.e.
    # clearly more resistant than a genuine depth-2 stub.
    assert means["tier-2 depth-1 stub"] < means["depth-2 stub"]
