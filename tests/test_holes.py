"""Unit tests for the residual-attack ("holes") analysis."""

import pytest

from repro.attacks.lab import HijackLab
from repro.core.holes import HoleKind, analyze_holes
from repro.defense.deployment import Defense
from repro.defense.strategies import custom_deployment, top_degree_deployment
from repro.registry.publication import PublicationState


@pytest.fixture
def mini_lab(mini_graph) -> HijackLab:
    return HijackLab(mini_graph, seed=1)


class TestMiniTopology:
    def test_no_defense_all_successful_attacks_are_holes(self, mini_lab):
        report = analyze_holes(mini_lab, 50, transit_only=False)
        assert report.attacks_run == 9
        successful = sum(
            1
            for attacker in mini_lab.graph.asns()
            if attacker != 50 and mini_lab.origin_hijack(50, attacker).succeeded
        )
        assert len(report.holes) == successful
        assert all(h.kind is HoleKind.NO_COVERAGE for h in report.holes)

    def test_unpublished_target_classified(self, mini_lab):
        publication = PublicationState.with_participants(mini_lab.plan, [])
        defended = mini_lab.with_defense(
            Defense(
                strategy=custom_deployment("d", mini_lab.graph.asns()),
                authority=publication.table(),
            )
        )
        report = analyze_holes(defended, 50, transit_only=False)
        assert report.holes
        assert all(h.kind is HoleKind.UNPUBLISHED for h in report.holes)

    def test_perimeter_leak_detected(self, mini_lab):
        # Deploy only at AS10: attacks from the east branch (e.g. AS60)
        # still pollute {40, 20, 2}; the spread passes next to AS10.
        publication = PublicationState.full(mini_lab.plan)
        defended = mini_lab.with_defense(
            Defense(
                strategy=custom_deployment("d", [10]),
                authority=publication.table(),
            )
        )
        report = analyze_holes(defended, 50, attackers=[60])
        assert len(report.holes) == 1
        hole = report.holes[0]
        assert hole.kind is HoleKind.PERIMETER_LEAK
        assert 10 in hole.adjacent_deployers

    def test_witness_path_ends_at_attacker(self, mini_lab):
        report = analyze_holes(mini_lab, 50, attackers=[60])
        hole = report.holes[0]
        assert hole.witness_path[-1] == 60
        # Every intermediate hop really adopted the bogus route.
        outcome = mini_lab.origin_hijack(50, 60)
        for asn in hole.witness_path[:-1]:
            assert asn in outcome.polluted_asns

    def test_full_deployment_leaves_no_holes(self, mini_lab):
        publication = PublicationState.full(mini_lab.plan)
        defended = mini_lab.with_defense(
            Defense(
                strategy=custom_deployment("all", mini_lab.graph.asns()),
                authority=publication.table(),
            )
        )
        report = analyze_holes(defended, 50, transit_only=False)
        assert report.holes == ()
        assert report.residual_rate == 0.0

    def test_describe_is_readable(self, mini_lab):
        report = analyze_holes(mini_lab, 50, attackers=[60])
        text = report.holes[0].describe()
        assert "AS60" in text and "witness" in text


class TestMediumTopology:
    def test_core_deployment_reduces_residual_rate(self, medium_lab):
        publication = PublicationState.full(medium_lab.plan)
        target = medium_lab.graph.asns()[-1]
        undefended = analyze_holes(medium_lab, target, sample=60, seed=1)
        defended_lab = medium_lab.with_defense(
            Defense(
                strategy=top_degree_deployment(medium_lab.graph, 60),
                authority=publication.table(),
            )
        )
        defended = analyze_holes(defended_lab, target, sample=60, seed=1)
        assert defended.residual_rate <= undefended.residual_rate

    def test_reinforcement_recommendations_are_undefended(self, medium_lab):
        publication = PublicationState.full(medium_lab.plan)
        strategy = top_degree_deployment(medium_lab.graph, 30)
        defended_lab = medium_lab.with_defense(
            Defense(strategy=strategy, authority=publication.table())
        )
        target = medium_lab.graph.asns()[-1]
        report = analyze_holes(defended_lab, target, sample=60, seed=2)
        for asn in report.recommended_reinforcements():
            assert asn not in strategy.deployers

    def test_by_kind_partitions_holes(self, medium_lab):
        target = medium_lab.graph.asns()[-1]
        report = analyze_holes(medium_lab, target, sample=40, seed=3)
        assert sum(report.by_kind().values()) == len(report.holes)
