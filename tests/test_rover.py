"""Unit tests for ROVER: reverse-DNS naming and origin validation."""

import pytest

from repro.prefixes.prefix import Prefix
from repro.registry.dns import format_name
from repro.registry.roa import ValidationState
from repro.registry.rover import RoverRegistry, prefix_from_name, reverse_name


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestNaming:
    @pytest.mark.parametrize(
        "prefix,name",
        [
            ("10.0.0.0/8", "10.in-addr.arpa."),
            ("10.2.0.0/16", "2.10.in-addr.arpa."),
            ("10.2.3.0/24", "3.2.10.in-addr.arpa."),
            ("10.2.128.0/17", "1.m.2.10.in-addr.arpa."),
            ("10.2.192.0/18", "1.1.m.2.10.in-addr.arpa."),
            ("10.2.64.0/18", "1.0.m.2.10.in-addr.arpa."),
        ],
    )
    def test_reverse_name(self, prefix, name):
        assert format_name(reverse_name(p(prefix))) == name

    @pytest.mark.parametrize(
        "prefix",
        ["10.0.0.0/8", "10.2.0.0/16", "10.2.128.0/17", "1.2.3.4/32", "10.2.200.0/22"],
    )
    def test_name_round_trip(self, prefix):
        assert prefix_from_name(reverse_name(p(prefix))) == p(prefix)

    def test_prefix_from_foreign_name_rejected(self):
        with pytest.raises(ValueError):
            prefix_from_name(("com", "example"))

    def test_prefix_from_bad_bit_label(self):
        with pytest.raises(ValueError):
            prefix_from_name(("arpa", "in-addr", "10", "m", "2"))


@pytest.fixture
def registry() -> RoverRegistry:
    registry = RoverRegistry(seed=5)
    registry.publish_origin(p("10.2.0.0/16"), 65001)
    registry.publish_lock(p("10.2.0.0/16"))
    return registry


class TestValidation:
    def test_published_origin_valid(self, registry):
        assert registry.validate(p("10.2.0.0/16"), 65001) is ValidationState.VALID

    def test_wrong_origin_invalid(self, registry):
        assert registry.validate(p("10.2.0.0/16"), 64999) is ValidationState.INVALID

    def test_subprefix_under_lock_is_invalid(self, registry):
        # No SRO exists for the /24, but the covering RLOCK declares the
        # reverse DNS authoritative: the announcement is bogus.
        assert registry.validate(p("10.2.3.0/24"), 64999) is ValidationState.INVALID

    def test_published_subprefix_valid(self, registry):
        registry.publish_origin(p("10.2.3.0/24"), 65002)
        assert registry.validate(p("10.2.3.0/24"), 65002) is ValidationState.VALID

    def test_unpublished_unlocked_space_not_found(self, registry):
        assert registry.validate(p("99.0.0.0/8"), 64999) is ValidationState.NOT_FOUND

    def test_multiple_origins_all_valid(self, registry):
        registry.publish_origin(p("10.2.0.0/16"), 65077)
        assert registry.validate(p("10.2.0.0/16"), 65077) is ValidationState.VALID
        assert registry.validate(p("10.2.0.0/16"), 65001) is ValidationState.VALID

    def test_withdraw(self, registry):
        registry.withdraw_origin(p("10.2.0.0/16"))
        # Still locked, so the space is INVALID rather than NOT_FOUND.
        assert registry.validate(p("10.2.0.0/16"), 65001) is ValidationState.INVALID

    def test_unsigned_publication_is_not_trusted(self):
        registry = RoverRegistry(seed=5)
        registry.publish_origin(p("99.2.0.0/16"), 65001, signed=False)
        # The unsigned zone resolves INSECURE; ROVER refuses to authorize.
        assert registry.validate(p("99.2.0.0/16"), 65001) is ValidationState.NOT_FOUND
