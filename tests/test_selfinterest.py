"""Unit tests for the Section VII self-interest playbook."""

import pytest

from repro.attacks.lab import HijackLab
from repro.core.selfinterest import (
    SelfInterestPlanner,
    apply_rehoming,
    assess_region,
    plan_rehoming,
    regional_attack_study,
)
from repro.topology.classify import effective_depth


@pytest.fixture(scope="module")
def region(medium_graph) -> str:
    regions = medium_graph.regions()
    return min(regions, key=lambda name: len(regions[name]))


@pytest.fixture(scope="module")
def assessment(medium_graph, region):
    return assess_region(medium_graph, region)


class TestAssessment:
    def test_members_match_region(self, medium_graph, region, assessment):
        assert assessment.members == frozenset(medium_graph.regions()[region])
        assert assessment.member_count == len(assessment.members)

    def test_vulnerable_members_sorted_deepest_first(self, assessment):
        depths = [assessment.depth_of[asn] for asn in assessment.vulnerable_members]
        assert depths == sorted(depths, reverse=True)
        assert all(depth >= 3 for depth in depths)

    def test_hub_is_regional_transit(self, medium_graph, assessment):
        assert assessment.hub_asn in assessment.members
        assert medium_graph.customers(assessment.hub_asn)

    def test_deepest(self, assessment):
        deepest = assessment.deepest()
        assert assessment.depth_of[deepest] == max(assessment.depth_of.values())

    def test_unknown_region_rejected(self, medium_graph):
        with pytest.raises(ValueError):
            assess_region(medium_graph, "NOPE")


class TestRehoming:
    def test_plan_climbs_levels(self, medium_graph, assessment):
        target = assessment.deepest()
        plan = plan_rehoming(medium_graph, target, levels=2)
        assert plan is not None
        assert plan.asn == target
        assert plan.expected_depth < plan.old_depth

    def test_apply_reduces_depth(self, medium_graph, assessment):
        target = assessment.deepest()
        plan = plan_rehoming(medium_graph, target, levels=2)
        rehomed = apply_rehoming(medium_graph, plan)
        new_depth = effective_depth(rehomed)[target]
        assert new_depth < plan.old_depth
        assert new_depth == plan.expected_depth
        # The original graph is untouched.
        assert effective_depth(medium_graph)[target] == plan.old_depth

    def test_tier1_cannot_be_rehomed(self, medium_graph):
        from repro.topology.classify import find_tier1

        tier1 = next(iter(find_tier1(medium_graph)))
        assert plan_rehoming(medium_graph, tier1) is None


class TestRegionalStudy:
    def test_fractions_bounded(self, medium_lab, region, assessment):
        target = assessment.deepest()
        impact = regional_attack_study(
            medium_lab, target, region, external_sample=40
        )
        assert 0.0 <= impact.regional_fraction <= 1.0
        assert 0.0 <= impact.external_fraction <= 1.0
        assert impact.region_size == assessment.member_count

    def test_target_must_be_regional(self, medium_lab, region):
        outside = next(
            asn
            for asn in medium_lab.graph.asns()
            if medium_lab.graph.region_of(asn) != region
        )
        with pytest.raises(ValueError):
            regional_attack_study(medium_lab, outside, region)


class TestRehomeVsDeployment:
    def test_options_compared(self, medium_graph, assessment):
        from repro.core.selfinterest import compare_rehoming_vs_deployment
        from repro.defense.strategies import top_degree_deployment
        from repro.registry.publication import PublicationState

        lab = HijackLab(medium_graph, seed=7)
        authority = PublicationState.full(lab.plan).table()
        target = assessment.deepest()
        comparison = compare_rehoming_vs_deployment(
            lab,
            target,
            top_degree_deployment(medium_graph, 30),
            top_degree_deployment(medium_graph, 60),
            authority,
            sample=80,
        )
        assert comparison.extra_deployers == 30
        # Both alternatives must improve on the current deployment.
        assert comparison.rehomed_mean <= comparison.current_mean * 1.05
        assert comparison.wider_deployment_mean <= comparison.current_mean
        assert isinstance(comparison.rehoming_wins, bool)


class TestPlanner:
    @pytest.fixture(scope="class")
    def action_plan(self, medium_graph, region):
        lab = HijackLab(medium_graph, seed=7)
        return SelfInterestPlanner(lab).plan(
            region, external_sample=30, probe_budget=3
        )

    def test_rehoming_improves_or_is_skipped(self, action_plan):
        if action_plan.rehoming is not None:
            assert (
                action_plan.rehomed_impact.regional_fraction
                <= action_plan.baseline.regional_fraction
            )

    def test_filter_improves_regional_outcome(self, action_plan):
        assert (
            action_plan.filtered_impact.regional_fraction
            <= action_plan.baseline.regional_fraction
        )

    def test_publish_step_covers_region(self, action_plan):
        assert set(action_plan.publish_asns) == set(action_plan.assessment.members)

    def test_probe_recommendation_within_budget(self, action_plan):
        assert len(action_plan.probe_recommendation) <= 3
        assert action_plan.detection_miss_rate <= 0.5

    def test_report_mentions_every_step(self, action_plan):
        report = action_plan.report()
        for marker in ("1. ANALYZE", "2. REDUCE", "3. PUBLISH", "4. FILTER", "5. DETECT"):
            assert marker in report
