"""Unit tests for the monitoring service core (registry, shards, daemon).

Everything here runs against the hand-verifiable ``mini_graph`` through
the synchronous :class:`~repro.service.daemon.MonitorService` — no event
loop, no sockets (the async shell has its own suite in
``test_service_api.py``).
"""

import json

import pytest

from repro.attacks.lab import HijackLab
from repro.detection.probes import custom_probes
from repro.obs.metrics import Metrics
from repro.prefixes.prefix import Prefix
from repro.service.daemon import CONFIRMED_VERDICTS, MonitorService
from repro.service.shards import ShardPlane
from repro.service.tenants import LatencyStats, TenantRegistration, TenantRegistry
from repro.stream.events import Announce, RoaPublish


def p(text: str) -> Prefix:
    return Prefix.parse(text)


@pytest.fixture
def lab(mini_graph) -> HijackLab:
    return HijackLab(mini_graph, seed=1)


@pytest.fixture
def probes():
    return custom_probes("pair", [10, 20])


def service_for(lab, probes, **kwargs) -> MonitorService:
    return MonitorService(lab, probes=probes, **kwargs)


# -- registry ---------------------------------------------------------------


class TestTenantRegistry:
    def registration(self, tenant="acme", prefix="10.0.0.0/16", origin=50, **kw):
        return TenantRegistration(tenant, p(prefix), origin, **kw)

    def test_register_and_match_exact(self):
        registry = TenantRegistry()
        registry.register(self.registration())
        assert [r.tenant for r in registry.match(p("10.0.0.0/16"))] == ["acme"]

    def test_match_subprefix_via_covering(self):
        # A hijacked more-specific must hit the covering registration.
        registry = TenantRegistry()
        registry.register(self.registration())
        assert [r.tenant for r in registry.match(p("10.0.128.0/17"))] == ["acme"]

    def test_match_supernet_via_iter_covered(self):
        # An announced covering prefix must hit registrations under it.
        registry = TenantRegistry()
        registry.register(self.registration(prefix="10.0.128.0/17"))
        assert [r.tenant for r in registry.match(p("10.0.0.0/16"))] == ["acme"]

    def test_match_unrelated_is_empty(self):
        registry = TenantRegistry()
        registry.register(self.registration())
        assert registry.match(p("192.168.0.0/16")) == []

    def test_two_tenants_same_prefix(self):
        registry = TenantRegistry()
        registry.register(self.registration(tenant="acme"))
        registry.register(self.registration(tenant="globex", origin=60))
        assert len(registry) == 2
        assert sorted(r.tenant for r in registry.match(p("10.0.0.0/16"))) == [
            "acme", "globex",
        ]
        assert registry.tenants() == ["acme", "globex"]

    def test_covering_root_is_shortest(self):
        registry = TenantRegistry()
        registry.register(self.registration(prefix="10.0.0.0/8"))
        registry.register(self.registration(prefix="10.0.0.0/16"))
        assert registry.covering_root(p("10.0.1.0/24")) == p("10.0.0.0/8")
        assert registry.covering_root(p("11.0.0.0/8")) is None

    def test_deregister(self):
        registry = TenantRegistry()
        registry.register(self.registration())
        dropped = registry.deregister("acme", p("10.0.0.0/16"))
        assert dropped.origin_asn == 50
        assert len(registry) == 0
        with pytest.raises(KeyError):
            registry.deregister("acme", p("10.0.0.0/16"))

    def test_for_tenant(self):
        registry = TenantRegistry()
        registry.register(self.registration())
        registry.register(self.registration(prefix="172.16.0.0/12"))
        registry.register(self.registration(tenant="globex", prefix="192.0.2.0/24"))
        assert len(registry.for_tenant("acme")) == 2

    def test_registration_as_dict(self):
        payload = self.registration(auto_mitigate=True, deployer_asns=(1, 2)).as_dict()
        assert payload == {
            "tenant": "acme", "prefix": "10.0.0.0/16", "origin": 50,
            "max_length": None, "auto_mitigate": True, "deployers": [1, 2],
        }


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.count == 0 and stats.mean is None
        assert stats.percentile(0.5) is None
        assert stats.as_dict() == {"count": 0, "mean": None, "p50": None, "p95": None}

    def test_nearest_rank(self):
        stats = LatencyStats()
        for value in (4.0, 1.0, 3.0, 2.0):
            stats.add(value)
        assert stats.percentile(0.50) == 2.0
        assert stats.percentile(0.95) == 4.0
        assert stats.mean == 2.5

    def test_single_sample(self):
        stats = LatencyStats(samples=[7.0])
        assert stats.percentile(0.50) == 7.0
        assert stats.percentile(0.95) == 7.0


# -- shard plane ------------------------------------------------------------


class TestShardPlane:
    def test_covering_root_affinity(self, lab, probes):
        service = service_for(lab, probes, shards=4)
        prefix = lab.target_prefix(50)
        service.register("acme", prefix, 50)
        plane = service.plane
        root_shard = plane.shard_of(prefix)
        for sub in prefix.subnets():
            assert plane.shard_of(sub) == root_shard
            for subsub in sub.subnets():
                assert plane.shard_of(subsub) == root_shard

    def test_pinning_is_stable(self, lab, probes):
        plane = ShardPlane(lab, shards=4)
        prefix = lab.target_prefix(50)
        first = plane.shard_of(prefix)
        assert all(plane.shard_of(prefix) == first for _ in range(5))

    def test_broadcast_events_land_on_every_shard(self, lab, probes):
        plane = ShardPlane(lab, shards=3, probes=probes)
        event = RoaPublish(at=0.0, prefix=lab.target_prefix(50), origin_asn=50)
        assert plane.route(event) is None
        plane.submit(event)
        plane.flush()
        for shard in range(3):
            assert len(plane.replayer(shard).authority) == 1

    def test_announce_lands_on_one_shard(self, lab, probes):
        plane = ShardPlane(lab, shards=3, probes=probes)
        prefix = lab.target_prefix(50)
        plane.submit(Announce(at=0.0, prefix=prefix, origin_asn=50))
        plane.flush()
        owners = [
            shard for shard in range(3)
            if plane.replayer(shard).ledger(prefix) is not None
        ]
        assert owners == [plane.shard_of(prefix)]

    def test_malformed_lines_counted_not_fatal(self, lab, probes):
        metrics = Metrics()
        plane = ShardPlane(lab, probes=probes, metrics=metrics)
        assert plane.submit_line("{broken") is False
        assert plane.submit_line('{"kind":"teleport","at":0.0}') is False
        prefix = lab.target_prefix(50)
        assert plane.submit_line(
            '{"at":0.0,"kind":"announce","origin":50,"prefix":"%s"}' % prefix
        ) is True
        plane.flush()
        assert plane.malformed == 2
        assert plane.ingested == 1
        assert len(plane.errors) == 2
        assert metrics.snapshot()["counters"]["service.ingest.malformed"] == 2

    def test_error_log_is_bounded(self, lab, probes):
        plane = ShardPlane(lab, probes=probes)
        for _ in range(40):
            plane.submit_line("{broken")
        assert plane.malformed == 40
        assert len(plane.errors) == 32

    def test_counts_aggregate(self, lab, probes):
        plane = ShardPlane(lab, shards=2, probes=probes)
        plane.submit(RoaPublish(at=0.0, prefix=lab.target_prefix(50), origin_asn=50))
        plane.submit_line("{broken")
        plane.flush()
        counts = plane.counts()
        assert counts["ingested"] == 1
        assert counts["malformed"] == 1
        assert counts["submitted"] == 2  # the broadcast landed on both shards

    def test_shards_must_be_positive(self, lab):
        with pytest.raises(ValueError):
            ShardPlane(lab, shards=0)

    def test_drain_alarms_returns_only_fresh(self, lab, probes):
        plane = ShardPlane(lab, shards=2, probes=probes)
        prefix = lab.target_prefix(50)
        plane.submit(RoaPublish(at=0.0, prefix=prefix, origin_asn=50))
        plane.submit(Announce(at=0.0, prefix=prefix, origin_asn=50))
        plane.submit(Announce(at=1.0, prefix=prefix, origin_asn=60))
        plane.flush()
        first = plane.drain_alarms()
        assert [alarm.verdict for _shard, alarm in first] == ["hijack"]
        assert plane.drain_alarms() == []


# -- the service core -------------------------------------------------------


class TestMonitorService:
    def test_register_publishes_roa_everywhere(self, lab, probes):
        service = service_for(lab, probes, shards=2)
        service.register("acme", lab.target_prefix(50), 50)
        assert service.plane.authority_size() == 1
        for shard in (0, 1):
            assert len(service.plane.replayer(shard).authority) == 1

    def test_register_rejects_unknown_asns(self, lab, probes):
        service = service_for(lab, probes)
        with pytest.raises(ValueError, match="unknown origin"):
            service.register("acme", lab.target_prefix(50), 999999)
        with pytest.raises(ValueError, match="unknown deployer"):
            service.register(
                "acme", lab.target_prefix(50), 50, deployers=(999999,)
            )

    def test_deregister_revokes_roa(self, lab, probes):
        service = service_for(lab, probes)
        service.register("acme", lab.target_prefix(50), 50)
        service.deregister("acme", lab.target_prefix(50))
        assert service.plane.authority_size() == 0
        assert len(service.registry) == 0

    def hijack(self, service, prefix, attacker=60):
        service.ingest_event(Announce(at=0.0, prefix=prefix, origin_asn=50))
        service.ingest_event(Announce(at=1.0, prefix=prefix, origin_asn=attacker))
        return service.poll()

    def test_hijack_verdict_attributed_to_tenant(self, lab, probes):
        service = service_for(lab, probes)
        prefix = lab.target_prefix(50)
        service.register("acme", prefix, 50)
        fresh = self.hijack(service, prefix)
        assert len(fresh) == 1
        verdict = fresh[0]
        assert verdict.tenant == "acme"
        assert verdict.alarm.verdict == "hijack"
        assert verdict.confirmed is True
        assert service.tenant_stats("acme")["latency"]["count"] == 1

    def test_unclaimed_space_yields_anonymous_verdict(self, lab, probes):
        service = service_for(lab, probes)
        prefix = lab.target_prefix(50)
        service.ingest_event(RoaPublish(at=0.0, prefix=prefix, origin_asn=50))
        fresh = self.hijack(service, prefix)
        assert [v.tenant for v in fresh] == [None]
        assert service.verdicts[0].confirmed is True

    def test_subprefix_hijack_reaches_covering_tenant(self, lab, probes):
        service = service_for(lab, probes)
        prefix = lab.target_prefix(50)
        service.register("acme", prefix, 50)
        sub = next(iter(prefix.subnets()))
        service.ingest_event(Announce(at=0.0, prefix=prefix, origin_asn=50))
        service.ingest_event(Announce(at=1.0, prefix=sub, origin_asn=60))
        fresh = service.poll()
        assert [(v.tenant, v.alarm.verdict) for v in fresh] == [("acme", "hijack")]
        assert fresh[0].alarm.prefix == sub

    def test_poll_without_events_is_empty(self, lab, probes):
        service = service_for(lab, probes)
        assert service.poll() == []

    def test_verdict_payload_is_json_stable(self, lab, probes):
        service = service_for(lab, probes)
        prefix = lab.target_prefix(50)
        service.register("acme", prefix, 50)
        self.hijack(service, prefix)
        payload = json.loads(json.dumps(service.verdict_payloads()))
        assert payload[0]["tenant"] == "acme"
        assert payload[0]["verdict"] == "hijack"
        assert payload[0]["confirmed"] is True

    def test_health_payload(self, lab, probes):
        service = service_for(lab, probes, shards=2)
        service.register("acme", lab.target_prefix(50), 50)
        service.ingest_line("{broken")
        health = service.health()
        assert health["status"] == "ok"
        assert health["shards"] == 2
        assert health["tenants"] == 1
        assert health["roas"] == 1
        assert health["events"]["malformed"] == 1
        assert health["uptime_s"] >= 0.0

    def test_confirmed_verdicts_constant(self):
        assert CONFIRMED_VERDICTS == {"hijack", "forged-path", "route-leak"}


class TestAutoMitigation:
    def armed(self, lab, probes, **kw):
        service = service_for(lab, probes)
        prefix = lab.target_prefix(50)
        service.register(
            "acme", prefix, 50, auto_mitigate=True,
            deployers=kw.pop("deployers", ()), **kw,
        )
        return service, prefix

    def test_mitigation_restores_coverage(self, lab, probes):
        service, prefix = self.armed(lab, probes)
        sub = next(iter(prefix.subnets()))
        service.ingest_event(Announce(at=0.0, prefix=prefix, origin_asn=50))
        service.ingest_event(Announce(at=1.0, prefix=sub, origin_asn=60))
        service.poll()
        assert len(service.mitigations) == 1
        record = service.mitigations[0]
        assert record.prefix == str(sub)
        assert len(record.announced) == 2
        assert record.coverage_after > record.coverage_before
        assert record.coverage_after == 1.0

    def test_mitigation_publishes_roas_for_more_specifics(self, lab, probes):
        service, prefix = self.armed(lab, probes)
        sub = next(iter(prefix.subnets()))
        service.ingest_event(Announce(at=0.0, prefix=sub, origin_asn=60))
        service.poll()
        # 1 registration ROA + 2 deaggregation ROAs.
        assert service.plane.authority_size() == 3

    def test_mitigation_fires_once_per_attack(self, lab, probes):
        service, prefix = self.armed(lab, probes)
        sub = next(iter(prefix.subnets()))
        service.ingest_event(Announce(at=0.0, prefix=sub, origin_asn=60))
        service.poll()
        mitigated = len(service.mitigations)
        # The same conflict re-announced must not re-mitigate.
        service.ingest_event(Announce(at=5.0, prefix=sub, origin_asn=60))
        service.poll()
        assert len(service.mitigations) == mitigated

    def test_defense_activate_emitted_for_deployers(self, lab, probes):
        service, prefix = self.armed(lab, probes, deployers=(30,))
        sub = next(iter(prefix.subnets()))
        service.ingest_event(Announce(at=0.0, prefix=sub, origin_asn=60))
        service.poll()
        assert service.mitigations[0].deployers == (30,)
        for shard in range(service.plane.shards):
            defense = service.plane.replayer(shard).defense()
            assert 30 in defense.strategy.deployers

    def test_no_mitigation_without_arming(self, lab, probes):
        service = service_for(lab, probes)
        prefix = lab.target_prefix(50)
        service.register("acme", prefix, 50)  # auto_mitigate=False
        sub = next(iter(prefix.subnets()))
        service.ingest_event(Announce(at=0.0, prefix=sub, origin_asn=60))
        fresh = service.poll()
        assert [v.confirmed for v in fresh] == [True]
        assert service.mitigations == []

    def test_mitigation_record_serializes(self, lab, probes):
        service, prefix = self.armed(lab, probes)
        sub = next(iter(prefix.subnets()))
        service.ingest_event(Announce(at=0.0, prefix=sub, origin_asn=60))
        service.poll()
        payload = json.loads(json.dumps(service.mitigation_payloads()))
        assert payload[0]["tenant"] == "acme"
        assert payload[0]["verdict"] == "hijack"
        assert len(payload[0]["announced"]) == 2


class TestShardParity:
    def test_verdicts_identical_across_shard_counts(self, lab, probes):
        keys = []
        for shards in (1, 2, 4):
            service = service_for(lab, probes, shards=shards)
            for target in (50, 70):
                service.register("acme", lab.target_prefix(target), target)
            for target, attacker in ((50, 60), (70, 80)):
                prefix = lab.target_prefix(target)
                service.ingest_event(
                    Announce(at=0.0, prefix=prefix, origin_asn=target)
                )
                service.ingest_event(
                    Announce(at=1.0, prefix=prefix, origin_asn=attacker)
                )
            service.poll()
            keys.append(frozenset(
                (
                    str(v.alarm.prefix), v.alarm.verdict,
                    v.alarm.origins, v.alarm.invalid_origins,
                    v.alarm.latency_time,
                )
                for v in service.verdicts
            ))
        assert len(set(keys)) == 1
        assert len(keys[0]) == 2
