"""Unit tests for the CAIDA-scale fixture generator.

The full 42,697-AS build is exercised by the scale bench and the nightly
integration test; here a proportionally shrunk configuration checks the
generator's contract fast: exact AS count, deterministic output, a
tier-1 clique, deep chains for the Fig. 2 depth ordering, and a lossless
round-trip through the real CAIDA serial-1 parser.
"""

from __future__ import annotations

import pytest

from repro.topology.caida import load_caida
from repro.topology.classify import effective_depth, find_tier1
from repro.topology.scalefixture import (
    ScaleFixtureConfig,
    generate_scale_fixture,
    write_scale_fixture,
)

SMALL = ScaleFixtureConfig.scaled(1500, seed=11)


@pytest.fixture(scope="module")
def small_graph():
    return generate_scale_fixture(SMALL)


class TestConfig:
    def test_defaults_match_paper_headline(self):
        config = ScaleFixtureConfig()
        assert config.as_count == 42_697
        assert config.link_target == 139_156
        assert config.tier1_count == 17

    def test_scaled_shrinks_proportionally(self):
        assert SMALL.as_count == 1500
        assert SMALL.link_target == round(139_156 * 1500 / 42_697)
        assert SMALL.tier1_count == 17  # >= 1200 keeps the full clique

    def test_rejects_impossible_shapes(self):
        with pytest.raises(ValueError, match="tier-1"):
            ScaleFixtureConfig(tier1_count=1)
        with pytest.raises(ValueError, match="transit budget"):
            ScaleFixtureConfig(as_count=600, link_target=2000)


class TestGeneration:
    def test_exact_as_count(self, small_graph):
        assert len(small_graph.asns()) == SMALL.as_count

    def test_deterministic(self, small_graph):
        again = generate_scale_fixture(SMALL)
        assert small_graph.asns() == again.asns()
        for asn in small_graph.asns():
            assert small_graph.providers(asn) == again.providers(asn)
            assert small_graph.peers(asn) == again.peers(asn)
            assert small_graph.siblings(asn) == again.siblings(asn)

    def test_seed_changes_topology(self):
        other = generate_scale_fixture(ScaleFixtureConfig.scaled(1500, seed=12))
        assert any(
            other.providers(asn) != generate_scale_fixture(SMALL).providers(asn)
            for asn in other.asns()
        )

    def test_tier1_clique_is_marked_and_found(self, small_graph):
        tier1 = find_tier1(small_graph)
        assert len(tier1) == SMALL.tier1_count
        assert tier1 == small_graph.marked_tier1()
        for a in tier1:
            assert tier1 - {a} <= small_graph.peers(a)

    def test_deep_chains_reach_configured_depth(self, small_graph):
        # Depth is anchored at the tier-1/tier-2 layer, which can absorb
        # one chain hop at small scale; resolve_roles needs a deep target
        # at depth >= 4 (the AS55857 analogue), so that is the contract.
        depth = effective_depth(small_graph)
        assert max(depth.values()) >= max(4, SMALL.chain_depth - 1)

    def test_link_count_near_target(self, small_graph):
        realized = small_graph.edge_count()
        assert realized >= SMALL.link_target
        # The fill loops overshoot by at most a handful of multi-home links.
        assert realized <= SMALL.link_target * 1.1


class TestRoundTrip:
    def test_written_fixture_survives_the_real_parser(self, tmp_path, small_graph):
        path = tmp_path / "scale.txt.gz"
        write_scale_fixture(path, SMALL)
        parsed = load_caida(path)
        assert parsed.asns() == small_graph.asns()
        assert parsed.edge_count() == small_graph.edge_count()
        for asn in parsed.asns():
            assert parsed.providers(asn) == small_graph.providers(asn)
            assert parsed.peers(asn) == small_graph.peers(asn)
