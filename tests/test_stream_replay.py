"""Unit tests for the replay engine and the online monitor.

The batch cross-check class is the load-bearing one: a compiled scenario
stream must land on exactly the pollution set the batch lab computes for
the same scenario — cold and cache-warm, sequential and parallel.
"""

import pytest

from repro.attacks.lab import HijackLab
from repro.attacks.scenario import HijackScenario
from repro.detection.detector import HijackDetector
from repro.detection.probes import custom_probes
from repro.stream.events import (
    Announce,
    DefenseActivate,
    RoaPublish,
    Withdraw,
    compile_campaign,
    compile_scenario,
)
from repro.stream.monitor import OnlineMonitor
from repro.stream.replay import StreamReplayer
from repro.util.rng import make_rng


@pytest.fixture
def lab(mini_graph) -> HijackLab:
    return HijackLab(mini_graph, seed=1)


def polluted_by_stream(lab: HijackLab, replayer: StreamReplayer,
                       scenario: HijackScenario) -> frozenset[int]:
    """The stream-side pollution set, in the batch lab's vocabulary."""
    ledger = replayer.ledger(scenario.prefix)
    assert ledger is not None and ledger.state is not None
    attacker_node = lab.view.node_of(scenario.attacker_asn)
    holders = ledger.state.holders_of(attacker_node)
    return lab.view.expand(holders) - {scenario.attacker_asn}


class TestBatching:
    def test_coalesces_announce_withdraw_opened_in_batch(self, lab):
        prefix = lab.target_prefix(50)
        replayer = StreamReplayer(lab, batch_window=10.0)
        report = replayer.run([
            Announce(at=0.0, prefix=prefix, origin_asn=50),
            Announce(at=1.0, prefix=prefix, origin_asn=60),
            Withdraw(at=2.0, prefix=prefix, origin_asn=60),
        ])
        assert report.events_coalesced == 2
        assert report.prefixes[str(prefix)]["active_origins"] == [50]
        solo = StreamReplayer(lab).run(
            [Announce(at=0.0, prefix=prefix, origin_asn=50)]
        )
        assert (report.prefixes[str(prefix)]["checksum"]
                == solo.prefixes[str(prefix)]["checksum"])

    def test_never_cancels_a_pre_batch_announcement(self, lab):
        prefix = lab.target_prefix(50)
        replayer = StreamReplayer(lab, batch_window=10.0)
        replayer.submit(Announce(at=0.0, prefix=prefix, origin_asn=60))
        replayer.flush()
        # The withdraw closes the *pre-batch* announcement; the duplicate
        # announce in the same batch must not pair with it.
        replayer.submit(Announce(at=1.0, prefix=prefix, origin_asn=60))
        replayer.submit(Withdraw(at=2.0, prefix=prefix, origin_asn=60))
        report = replayer.finish()
        assert report.events_coalesced == 0
        assert report.events_noop == 1  # the duplicate announce
        assert report.prefixes[str(prefix)]["active_origins"] == []

    def test_backpressure_flush_at_queue_limit(self, lab):
        prefix = lab.target_prefix(50)
        replayer = StreamReplayer(lab, batch_window=100.0, queue_limit=2)
        replayer.submit(Announce(at=0.0, prefix=prefix, origin_asn=50))
        assert replayer.pending == 1
        replayer.submit(Announce(at=1.0, prefix=prefix, origin_asn=60))
        assert replayer.pending == 0
        report = replayer.finish()
        assert report.backpressure_flushes == 1

    def test_batched_and_unbatched_replays_converge_identically(self, lab):
        scenarios = [
            HijackScenario(50, 60, lab.target_prefix(50)),
            HijackScenario(70, 80, lab.target_prefix(70)),
        ]
        events = compile_campaign(scenarios, stagger=0.5, dwell=2.0)
        per_event = StreamReplayer(lab).run(events)
        batched = StreamReplayer(lab, batch_window=3.0).run(events)
        assert {p: d["checksum"] for p, d in per_event.prefixes.items()} == {
            p: d["checksum"] for p, d in batched.prefixes.items()
        }

    def test_out_of_order_events_counted_not_dropped(self, lab):
        prefix = lab.target_prefix(50)
        replayer = StreamReplayer(lab, batch_window=100.0)
        replayer.submit(Announce(at=5.0, prefix=prefix, origin_asn=50))
        replayer.submit(Announce(at=1.0, prefix=prefix, origin_asn=60))
        report = replayer.finish()
        assert report.events_out_of_order == 1
        assert report.clock == 5.0
        assert report.prefixes[str(prefix)]["active_origins"] == [50, 60]


class TestErrorIsolation:
    def test_malformed_lines_counted_not_fatal(self, lab):
        replayer = StreamReplayer(lab)
        replayer.submit_line("{broken")
        replayer.submit_line('{"kind":"teleport","at":1.0}')
        prefix = lab.target_prefix(50)
        replayer.submit_line(
            '{"at":0.0,"kind":"announce","origin":50,"prefix":"%s"}' % prefix
        )
        report = replayer.finish()
        assert report.events_malformed == 2
        assert report.events_applied == 1
        assert len(report.errors) == 2

    def test_failing_event_does_not_kill_the_batch(self, lab):
        prefix = lab.target_prefix(50)
        report = StreamReplayer(lab).run([
            Announce(at=0.0, prefix=prefix, origin_asn=999999),
            Announce(at=0.0, prefix=prefix, origin_asn=50),
        ])
        assert report.events_applied == 1
        assert any("unknown origin AS999999" in error for error in report.errors)
        assert report.prefixes[str(prefix)]["active_origins"] == [50]

    def test_error_log_is_bounded(self, lab):
        prefix = lab.target_prefix(50)
        replayer = StreamReplayer(lab, max_errors=1)
        report = replayer.run([
            Announce(at=0.0, prefix=prefix, origin_asn=999998),
            Announce(at=0.0, prefix=prefix, origin_asn=999999),
        ])
        assert len(report.errors) == 1 and report.errors_dropped == 1

    def test_spurious_withdraw_is_a_noop(self, lab):
        report = StreamReplayer(lab).run([
            Withdraw(at=0.0, prefix=lab.target_prefix(50), origin_asn=50)
        ])
        assert report.events_noop == 1 and not report.errors


class TestLiveDefense:
    def test_roa_and_deployers_block_later_announcements(self, lab):
        prefix = lab.target_prefix(50)
        replayer = StreamReplayer(lab)
        replayer.run([
            RoaPublish(at=0.0, prefix=prefix, origin_asn=50),
            DefenseActivate(at=0.0, deployer_asns=(40,)),
            Announce(at=1.0, prefix=prefix, origin_asn=50),
            Announce(at=2.0, prefix=prefix, origin_asn=60),
        ])
        assert 40 in replayer.defense().strategy.deployers
        assert len(replayer.authority) == 1
        ledger = replayer.ledger(prefix)
        legit, attack = ledger.entries
        assert legit.blocked == frozenset()
        assert attack.blocked == frozenset({lab.view.node_of(40)})

    def test_defense_changes_are_not_retroactive(self, lab):
        prefix = lab.target_prefix(50)
        replayer = StreamReplayer(lab)
        replayer.run([
            Announce(at=0.0, prefix=prefix, origin_asn=60),
            RoaPublish(at=1.0, prefix=prefix, origin_asn=50),
            DefenseActivate(at=1.0, deployer_asns=(40,)),
        ])
        installed = replayer.ledger(prefix)
        assert installed.entries[0].blocked == frozenset()
        before = installed.checksum()
        # Re-announcing after the defense landed does pick it up.
        replayer.run([
            Withdraw(at=2.0, prefix=prefix, origin_asn=60),
            Announce(at=3.0, prefix=prefix, origin_asn=60),
        ])
        after = replayer.ledger(prefix)
        assert after.entries[0].blocked == frozenset({lab.view.node_of(40)})
        assert after.checksum() != before


class TestMonitor:
    def events(self, prefix):
        return [
            RoaPublish(at=0.0, prefix=prefix, origin_asn=50),
            Announce(at=0.0, prefix=prefix, origin_asn=50),
            Announce(at=1.0, prefix=prefix, origin_asn=60),
        ]

    def monitored(self, lab, *, batch_window=0.0):
        replayer = StreamReplayer(lab, batch_window=batch_window)
        detector = HijackDetector(
            custom_probes("pair", [10, 20]), replayer.authority
        )
        replayer.monitor = OnlineMonitor(lab.view, detector)
        return replayer

    def test_hijack_alarm_charges_queue_time_to_latency(self, lab):
        prefix = lab.target_prefix(50)
        replayer = self.monitored(lab, batch_window=2.0)
        for event in self.events(prefix):
            replayer.submit(event)
        # This event lands past the window: the pending batch flushes at
        # its virtual deadline (t=2) before the withdraw exists.
        replayer.submit(Withdraw(at=10.0, prefix=prefix, origin_asn=60))
        report = replayer.finish()
        monitor = report.monitor
        assert monitor.conflicts_judged >= 1
        alarm = monitor.first_alarm
        assert alarm.at == 2.0 and alarm.verdict == "hijack"
        assert alarm.origins == (50, 60)
        assert alarm.invalid_origins == (60,)
        assert alarm.triggered_probes == (20,)
        # Announced at t=1, judged at the t=2 flush: one virtual second.
        assert alarm.latency_time == 1.0
        assert monitor.detection_latency_time == 1.0

    def test_unbatched_alarm_has_zero_latency(self, lab):
        prefix = lab.target_prefix(50)
        replayer = self.monitored(lab)
        report = replayer.run(self.events(prefix))
        assert report.monitor.detection_latency_time == 0.0

    def test_repeated_conflict_pages_once(self, lab):
        prefix = lab.target_prefix(50)
        replayer = self.monitored(lab)
        replayer.run(self.events(prefix))
        replayer.run([
            Withdraw(at=2.0, prefix=prefix, origin_asn=60),
            Announce(at=3.0, prefix=prefix, origin_asn=60),
        ])
        monitor = replayer.monitor.report()
        assert len(monitor.alarms) == 1

    def test_coalesced_flap_never_alarms(self, lab):
        prefix = lab.target_prefix(50)
        replayer = self.monitored(lab, batch_window=10.0)
        report = replayer.run([
            Announce(at=0.0, prefix=prefix, origin_asn=50),
            Announce(at=1.0, prefix=prefix, origin_asn=60),
            Withdraw(at=2.0, prefix=prefix, origin_asn=60),
        ])
        assert report.events_coalesced == 2
        assert report.monitor.alarms == ()

    def test_report_serializes(self, lab):
        import json

        prefix = lab.target_prefix(50)
        replayer = self.monitored(lab)
        report = replayer.run(self.events(prefix))
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["monitor"]["alarm_count"] == 1
        assert payload["monitor"]["probe_set"] == "pair"
        assert payload["events"]["submitted"] == 3


class TestMonitorSchema:
    """The JSON contract the service API serves verbatim.

    Adding a key is fine; removing or renaming one breaks every consumer
    of ``/verdicts`` and the stream report files — change this snapshot
    and docs/service.md together.
    """

    def report(self, lab):
        prefix = lab.target_prefix(50)
        replayer = StreamReplayer(lab)
        detector = HijackDetector(
            custom_probes("pair", [10, 20]), replayer.authority
        )
        replayer.monitor = OnlineMonitor(lab.view, detector)
        replayer.run([
            RoaPublish(at=0.0, prefix=prefix, origin_asn=50),
            Announce(at=0.0, prefix=prefix, origin_asn=50),
            Announce(at=1.0, prefix=prefix, origin_asn=60),
        ])
        return replayer.monitor.report()

    def test_alarm_schema_snapshot(self, lab):
        alarm = self.report(lab).first_alarm
        assert set(alarm.as_dict()) == {
            "at", "prefix", "origins", "verdict", "invalid_origins",
            "latency_time", "latency_events", "triggered_probes",
            "culprit_paths",
        }

    def test_report_schema_snapshot(self, lab):
        assert set(self.report(lab).as_dict()) == {
            "probe_set", "probe_count", "events_seen", "conflicts_judged",
            "alarm_count", "detection_latency_time",
            "detection_latency_events", "alarms",
        }

    def test_round_trip_is_json_stable(self, lab):
        import json

        payload = self.report(lab).as_dict()
        once = json.dumps(payload, sort_keys=True)
        twice = json.dumps(json.loads(once), sort_keys=True)
        assert once == twice
        decoded = json.loads(once)
        assert decoded["alarms"][0]["prefix"] == str(lab.target_prefix(50))
        assert decoded["alarms"][0]["origins"] == [50, 60]
        assert decoded["alarms"][0]["invalid_origins"] == [60]


class TestBatchCrossCheck:
    """Compiled scenario streams reproduce the batch lab bit-for-bit."""

    def scenarios(self, lab: HijackLab, count: int) -> list[HijackScenario]:
        rng = make_rng(3, "stream-crosscheck")
        pool = lab.attacker_pool()
        picked: list[HijackScenario] = []
        while len(picked) < count:
            target, attacker = rng.sample(pool, 2)
            if lab.view.node_of(target) == lab.view.node_of(attacker):
                continue
            picked.append(HijackScenario(target, attacker, lab.target_prefix(target)))
        return picked

    def test_stream_matches_batch_cold_and_warm_all_worker_counts(
        self, medium_graph
    ):
        lab = HijackLab(medium_graph, seed=7)  # fresh: cold cache
        scenarios = self.scenarios(lab, 5)
        cold = lab.run_scenarios(scenarios, workers=1)
        warm_parallel = lab.run_scenarios(scenarios, workers=4)  # cache-warm
        warm_serial = lab.run_scenarios(scenarios, workers=1)
        for batch in (warm_parallel, warm_serial):
            assert [o.polluted_asns for o in batch] == [
                o.polluted_asns for o in cold
            ]
        for outcome in cold:
            replayer = StreamReplayer(lab)
            replayer.run(compile_scenario(outcome.scenario))
            assert (
                polluted_by_stream(lab, replayer, outcome.scenario)
                == outcome.polluted_asns
            )

    def test_subprefix_stream_matches_batch(self, lab):
        outcome = lab.subprefix_hijack(50, 60)
        replayer = StreamReplayer(lab)
        replayer.run(compile_scenario(outcome.scenario))
        assert (
            polluted_by_stream(lab, replayer, outcome.scenario)
            == outcome.polluted_asns
        )
