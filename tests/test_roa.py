"""Unit tests for ROAs and the RFC 6483 validation algorithm."""

import pytest

from repro.prefixes.prefix import Prefix
from repro.registry.roa import RoaTable, RouteOriginAuthorization, ValidationState


def p(text: str) -> Prefix:
    return Prefix.parse(text)


class TestRoa:
    def test_authorizes_exact(self):
        roa = RouteOriginAuthorization(p("10.0.0.0/16"), 65001)
        assert roa.authorizes(p("10.0.0.0/16"), 65001)

    def test_wrong_origin_not_authorized(self):
        roa = RouteOriginAuthorization(p("10.0.0.0/16"), 65001)
        assert not roa.authorizes(p("10.0.0.0/16"), 65002)

    def test_max_length_defaults_to_prefix_length(self):
        roa = RouteOriginAuthorization(p("10.0.0.0/16"), 65001)
        assert roa.effective_max_length == 16
        assert not roa.authorizes(p("10.0.128.0/17"), 65001)

    def test_max_length_permits_more_specifics(self):
        roa = RouteOriginAuthorization(p("10.0.0.0/16"), 65001, max_length=20)
        assert roa.authorizes(p("10.0.16.0/20"), 65001)
        assert not roa.authorizes(p("10.0.16.0/21"), 65001)

    def test_max_length_bounds_checked(self):
        with pytest.raises(ValueError):
            RouteOriginAuthorization(p("10.0.0.0/16"), 65001, max_length=8)
        with pytest.raises(ValueError):
            RouteOriginAuthorization(p("10.0.0.0/16"), 65001, max_length=33)

    def test_covers_ignores_origin(self):
        roa = RouteOriginAuthorization(p("10.0.0.0/16"), 65001)
        assert roa.covers(p("10.0.1.0/24"))
        assert not roa.covers(p("11.0.0.0/16"))


class TestRoaTable:
    @pytest.fixture
    def table(self) -> RoaTable:
        return RoaTable([
            RouteOriginAuthorization(p("10.0.0.0/16"), 65001),
            RouteOriginAuthorization(p("10.1.0.0/16"), 65002, max_length=24),
        ])

    def test_valid(self, table):
        assert table.validate(p("10.0.0.0/16"), 65001) is ValidationState.VALID

    def test_invalid_wrong_origin(self, table):
        assert table.validate(p("10.0.0.0/16"), 65999) is ValidationState.INVALID

    def test_invalid_too_specific(self, table):
        assert table.validate(p("10.0.0.0/24"), 65001) is ValidationState.INVALID

    def test_valid_within_max_length(self, table):
        assert table.validate(p("10.1.2.0/24"), 65002) is ValidationState.VALID

    def test_not_found_for_uncovered_space(self, table):
        assert table.validate(p("192.168.0.0/16"), 65001) is ValidationState.NOT_FOUND

    def test_multiple_roas_any_match_wins(self, table):
        table.add(RouteOriginAuthorization(p("10.0.0.0/16"), 65077))
        assert table.validate(p("10.0.0.0/16"), 65077) is ValidationState.VALID
        assert table.validate(p("10.0.0.0/16"), 65001) is ValidationState.VALID

    def test_add_is_idempotent(self, table):
        before = len(table)
        table.add(RouteOriginAuthorization(p("10.0.0.0/16"), 65001))
        assert len(table) == before

    def test_remove(self, table):
        roa = RouteOriginAuthorization(p("10.0.0.0/16"), 65001)
        table.remove(roa)
        assert table.validate(p("10.0.0.0/16"), 65001) is ValidationState.NOT_FOUND
        with pytest.raises(KeyError):
            table.remove(roa)

    def test_covering_collects_ancestors(self, table):
        table.add(RouteOriginAuthorization(p("10.0.0.0/8"), 65000))
        covering = table.covering(p("10.0.0.0/24"))
        assert {roa.origin_asn for roa in covering} == {65000, 65001}

    def test_iteration(self, table):
        assert {roa.origin_asn for roa in table} == {65001, 65002}
