"""Unit tests for the flat-array convergence backend's plumbing.

The checksum-equivalence *behaviour* is covered by the property battery
(``tests/property/test_kernel_equivalence.py``) and the full-scale
integration test; this file pins the plumbing around it: backend-knob
validation, the per-view compile memo, the CSR layouts (including the
fused valley-free export adjacency and its parallel kind codes), and the
lazy re-exports on :mod:`repro.bgp`.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.bgp as bgp
from repro.bgp.engine import RoutingEngine
from repro.bgp.kernel import BACKENDS, compile_view, resolve_backend
from repro.topology.view import RoutingView

from tests.conftest import build_mini_graph


class TestBackendKnob:
    def test_backends_tuple(self):
        assert BACKENDS == ("reference", "array")

    def test_resolve_accepts_known(self):
        for backend in BACKENDS:
            assert resolve_backend(backend) == backend

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown convergence backend"):
            resolve_backend("gpu")

    def test_engine_rejects_unknown_backend(self, mini_view):
        with pytest.raises(ValueError, match="unknown convergence backend"):
            RoutingEngine(mini_view, backend="vectorised")

    def test_engine_records_backend(self, mini_view):
        assert RoutingEngine(mini_view).backend == "reference"
        assert RoutingEngine(mini_view, backend="array").backend == "array"


class TestCompileMemo:
    def test_same_view_compiles_once(self, mini_view):
        assert compile_view(mini_view) is compile_view(mini_view)

    def test_distinct_views_compile_separately(self, mini_view):
        rebuilt = RoutingView.from_graph(build_mini_graph())
        assert compile_view(mini_view) is not compile_view(rebuilt)


class TestCsrLayout:
    @pytest.fixture
    def compiled(self, mini_view):
        return compile_view(mini_view)

    def _slices(self, indptr, indices, node):
        return indices[indptr[node] : indptr[node + 1]].tolist()

    def test_per_kind_csr_matches_view_adjacency(self, mini_view, compiled):
        for node in range(len(mini_view)):
            assert (
                self._slices(compiled.customer_indptr, compiled.customer_indices, node)
                == list(mini_view.customers[node])
            )
            assert (
                self._slices(compiled.peer_indptr, compiled.peer_indices, node)
                == list(mini_view.peers[node])
            )
            assert (
                self._slices(compiled.provider_indptr, compiled.provider_indices, node)
                == list(mini_view.providers[node])
            )

    def test_fused_export_csr_is_providers_peers_customers(self, mini_view, compiled):
        """The fused adjacency concatenates providers|peers|customers per
        node with parallel kind codes 0|1|2 — the layout the hot-path
        single-gather export depends on."""
        for node in range(len(mini_view)):
            lo, hi = compiled.export_indptr[node], compiled.export_indptr[node + 1]
            targets = compiled.export_indices[lo:hi].tolist()
            kinds = compiled.export_kinds[lo:hi].tolist()
            providers = list(mini_view.providers[node])
            peers = list(mini_view.peers[node])
            customers = list(mini_view.customers[node])
            assert targets == providers + peers + customers
            assert kinds == [0] * len(providers) + [1] * len(peers) + [2] * len(
                customers
            )

    def test_tier1_flags_mirror_view(self, mini_view, compiled):
        assert compiled.is_tier1.tolist() == list(mini_view.is_tier1)

    def test_gather_concatenates_in_node_order(self, compiled):
        nodes = np.array([2, 0, 2], dtype=np.int32)
        positions, senders = compiled.gather(compiled.customer_indptr, nodes)
        expected_positions = []
        expected_senders = []
        for node in nodes:
            lo, hi = compiled.customer_indptr[node], compiled.customer_indptr[node + 1]
            expected_positions.extend(range(int(lo), int(hi)))
            expected_senders.extend([int(node)] * int(hi - lo))
        assert positions.tolist() == expected_positions
        assert senders.tolist() == expected_senders


class TestLazyExports:
    def test_kernel_names_reachable_via_package(self):
        assert bgp.BACKENDS == BACKENDS
        assert bgp.resolve_backend("array") == "array"
        assert bgp.compile_view is compile_view

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="has no attribute"):
            bgp.no_such_name


class TestMiniConvergence:
    """Cheap end-to-end smoke on the hand-verifiable topology — the heavy
    equivalence coverage lives in the property battery."""

    @pytest.mark.parametrize("filter_first_hop", [False, True])
    def test_blocked_and_filtered_paths_match_reference(
        self, mini_view, filter_first_hop
    ):
        reference = RoutingEngine(mini_view)
        array = RoutingEngine(mini_view, backend="array")
        origin = mini_view.node_of(50)  # a stub, so the filter engages
        blocked = frozenset({mini_view.node_of(40)})
        ref = reference.converge(
            origin, blocked=blocked, filter_first_hop_providers=filter_first_hop
        )
        arr = array.converge(
            origin, blocked=blocked, filter_first_hop_providers=filter_first_hop
        )
        assert ref.checksum() == arr.checksum()
