"""Unit tests for the flat-array convergence backend's plumbing.

The checksum-equivalence *behaviour* is covered by the property battery
(``tests/property/test_kernel_equivalence.py``) and the full-scale
integration test; this file pins the plumbing around it: backend-knob
validation, the per-view compile memo, the CSR layouts (including the
fused valley-free export adjacency and its parallel kind codes), and the
lazy re-exports on :mod:`repro.bgp`.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.bgp as bgp
from repro.bgp.engine import RoutingEngine
from repro.bgp.kernel import BACKENDS, compile_view, resolve_backend
from repro.topology.view import RoutingView

from tests.conftest import build_mini_graph


class TestBackendKnob:
    def test_backends_tuple(self):
        assert BACKENDS == ("reference", "array")

    def test_resolve_accepts_known(self):
        for backend in BACKENDS:
            assert resolve_backend(backend) == backend

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown convergence backend"):
            resolve_backend("gpu")

    def test_engine_rejects_unknown_backend(self, mini_view):
        with pytest.raises(ValueError, match="unknown convergence backend"):
            RoutingEngine(mini_view, backend="vectorised")

    def test_engine_records_backend(self, mini_view):
        assert RoutingEngine(mini_view).backend == "reference"
        assert RoutingEngine(mini_view, backend="array").backend == "array"


class TestCompileMemo:
    def test_same_view_compiles_once(self, mini_view):
        assert compile_view(mini_view) is compile_view(mini_view)

    def test_distinct_views_compile_separately(self, mini_view):
        rebuilt = RoutingView.from_graph(build_mini_graph())
        assert compile_view(mini_view) is not compile_view(rebuilt)


class TestCsrLayout:
    @pytest.fixture
    def compiled(self, mini_view):
        return compile_view(mini_view)

    def _slices(self, indptr, indices, node):
        return indices[indptr[node] : indptr[node + 1]].tolist()

    def test_per_kind_csr_matches_view_adjacency(self, mini_view, compiled):
        for node in range(len(mini_view)):
            assert (
                self._slices(compiled.customer_indptr, compiled.customer_indices, node)
                == list(mini_view.customers[node])
            )
            assert (
                self._slices(compiled.peer_indptr, compiled.peer_indices, node)
                == list(mini_view.peers[node])
            )
            assert (
                self._slices(compiled.provider_indptr, compiled.provider_indices, node)
                == list(mini_view.providers[node])
            )

    def test_fused_export_csr_is_providers_peers_customers(self, mini_view, compiled):
        """The fused adjacency concatenates providers|peers|customers per
        node with parallel kind codes 0|1|2 — the layout the hot-path
        single-gather export depends on."""
        for node in range(len(mini_view)):
            lo, hi = compiled.export_indptr[node], compiled.export_indptr[node + 1]
            targets = compiled.export_indices[lo:hi].tolist()
            kinds = compiled.export_kinds[lo:hi].tolist()
            providers = list(mini_view.providers[node])
            peers = list(mini_view.peers[node])
            customers = list(mini_view.customers[node])
            assert targets == providers + peers + customers
            assert kinds == [0] * len(providers) + [1] * len(peers) + [2] * len(
                customers
            )

    def test_tier1_flags_mirror_view(self, mini_view, compiled):
        assert compiled.is_tier1.tolist() == list(mini_view.is_tier1)

    def test_gather_concatenates_in_node_order(self, compiled):
        nodes = np.array([2, 0, 2], dtype=np.int32)
        positions, senders = compiled.gather(compiled.customer_indptr, nodes)
        expected_positions = []
        expected_senders = []
        for node in nodes:
            lo, hi = compiled.customer_indptr[node], compiled.customer_indptr[node + 1]
            expected_positions.extend(range(int(lo), int(hi)))
            expected_senders.extend([int(node)] * int(hi - lo))
        assert positions.tolist() == expected_positions
        assert senders.tolist() == expected_senders


class TestLazyExports:
    def test_kernel_names_reachable_via_package(self):
        assert bgp.BACKENDS == BACKENDS
        assert bgp.resolve_backend("array") == "array"
        assert bgp.compile_view is compile_view

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="has no attribute"):
            bgp.no_such_name


class TestMiniConvergence:
    """Cheap end-to-end smoke on the hand-verifiable topology — the heavy
    equivalence coverage lives in the property battery."""

    @pytest.mark.parametrize("filter_first_hop", [False, True])
    def test_blocked_and_filtered_paths_match_reference(
        self, mini_view, filter_first_hop
    ):
        reference = RoutingEngine(mini_view)
        array = RoutingEngine(mini_view, backend="array")
        origin = mini_view.node_of(50)  # a stub, so the filter engages
        blocked = frozenset({mini_view.node_of(40)})
        ref = reference.converge(
            origin, blocked=blocked, filter_first_hop_providers=filter_first_hop
        )
        arr = array.converge(
            origin, blocked=blocked, filter_first_hop_providers=filter_first_hop
        )
        assert ref.checksum() == arr.checksum()


class TestBatchedKernel:
    """Unit coverage of ``converge_batch``/``converge_delta_batch`` on the
    hand-verifiable topology — the heavy batched coverage lives in
    ``tests/property/test_batched_equivalence.py``."""

    def test_fresh_batch_columns_match_scalar_converges(self, mini_view):
        engine = RoutingEngine(mini_view, backend="array")
        origins = [0, 2, 0, len(mini_view) - 1]  # duplicates allowed
        batch = engine.converge_batch(origins)
        assert [state.origin for state in batch] == origins
        for origin, state in zip(origins, batch):
            assert state.checksum() == engine.converge(origin).checksum()

    def test_per_column_knobs_apply_independently(self, mini_view):
        engine = RoutingEngine(mini_view, backend="array")
        stub = mini_view.node_of(50)
        blocked = frozenset({mini_view.node_of(40)})
        origins = [stub, stub, stub]
        batch = engine.converge_batch(
            origins,
            blocked_sets=[frozenset(), blocked, frozenset()],
            first_hop_flags=[False, False, True],
            origin_lengths=[0, 0, 2],
        )
        assert batch[0].checksum() == engine.converge(stub).checksum()
        assert batch[1].checksum() == engine.converge(stub, blocked=blocked).checksum()
        assert (
            batch[2].checksum()
            == engine.converge(
                stub, filter_first_hop_providers=True, origin_length=2
            ).checksum()
        )
        assert batch[0].checksum() != batch[1].checksum()

    def test_shared_base_batch_leaves_base_untouched(self, mini_view):
        engine = RoutingEngine(mini_view, backend="array")
        base = engine.converge(0)
        base_sum = base.checksum()
        attackers = [2, 3]
        batch = engine.converge_batch(attackers, base=base)
        for attacker, state in zip(attackers, batch):
            assert (
                state.checksum()
                == engine.converge(attacker, base=base).checksum()
            )
        assert base.checksum() == base_sum

    def test_reference_backend_falls_back_to_scalar_loop(self, mini_view):
        reference = RoutingEngine(mini_view)
        array = RoutingEngine(mini_view, backend="array")
        origins = [0, 1, 2]
        ref_batch = reference.converge_batch(origins)
        arr_batch = array.converge_batch(origins)
        assert [s.checksum() for s in ref_batch] == [
            s.checksum() for s in arr_batch
        ]

    def test_mismatched_parameter_lengths_raise(self, mini_view):
        engine = RoutingEngine(mini_view, backend="array")
        with pytest.raises(ValueError, match="match the origin count"):
            engine.converge_batch([0, 1], blocked_sets=[frozenset()])
        with pytest.raises(ValueError, match="match the origin count"):
            engine.converge_batch([0, 1], first_hop_flags=[True])

    def test_delta_batch_journals_revert_to_base(self, mini_view):
        engine = RoutingEngine(mini_view, backend="array")
        reference = RoutingEngine(mini_view)
        base = engine.converge(0)
        origins = [2, 3]
        states = [base.copy_for(origin) for origin in origins]
        before = [state.checksum() for state in states]
        deltas = engine.converge_delta_batch(states, origins)
        for index, origin in enumerate(origins):
            scalar_state = base.copy_for(origin)
            scalar_delta = reference.converge_delta(scalar_state, origin)
            assert deltas[index].journal == scalar_delta.journal
            assert states[index].checksum() == scalar_state.checksum()
        for index, delta in enumerate(deltas):
            delta.revert(states[index])
        assert [state.checksum() for state in states] == before

    def test_delta_batch_rejects_frozen_or_mismatched_states(self, mini_view):
        engine = RoutingEngine(mini_view, backend="array")
        base = engine.converge(0)
        with pytest.raises(ValueError):
            engine.converge_delta_batch([base.copy_for(2)], [2, 3])
        frozen = base.copy_for(2).freeze()
        with pytest.raises(ValueError):
            engine.converge_delta_batch([frozen], [2])
