"""Unit tests for the visualisation layer: SVG builder, layout, charts."""

import math

import pytest

from repro.attacks.lab import HijackLab
from repro.viz.charts import Series, bar_line_chart, line_chart
from repro.viz.layout import PolarLayout
from repro.viz.polar import PolarRenderer, render_attack_frames
from repro.viz.svg import SvgCanvas


class TestSvgCanvas:
    def test_document_structure(self):
        canvas = SvgCanvas(100, 50)
        canvas.line(0, 0, 10, 10)
        canvas.circle(5, 5, 2, fill="red")
        canvas.text(1, 1, "hi & bye")
        text = canvas.to_string()
        assert text.startswith("<svg ")
        assert text.rstrip().endswith("</svg>")
        assert "<line" in text and "<circle" in text
        assert "hi &amp; bye" in text  # XML escaping

    def test_background_rect(self):
        assert "<rect" in SvgCanvas(10, 10).to_string()
        assert "<rect" not in SvgCanvas(10, 10, background=None).to_string()

    def test_polyline_points(self):
        canvas = SvgCanvas(10, 10)
        canvas.polyline([(0, 0), (5, 5)], stroke="blue")
        assert 'points="0,0 5,5"' in canvas.to_string()

    def test_save(self, tmp_path):
        canvas = SvgCanvas(10, 10)
        path = canvas.save(tmp_path / "sub" / "x.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")


class TestPolarLayout:
    @pytest.fixture(scope="class")
    def layout(self, medium_graph):
        from repro.topology.generator import default_address_plan

        return PolarLayout.compute(
            medium_graph, plan=default_address_plan(medium_graph)
        )

    def test_every_as_positioned(self, layout, medium_graph):
        assert set(layout.positions) == set(medium_graph.asns())

    def test_radius_encodes_depth(self, layout, medium_graph):
        from repro.topology.classify import effective_depth

        depth = effective_depth(medium_graph)
        shallow = [p.radius for p in layout.positions.values() if depth[p.asn] == 0]
        deep = [p.radius for p in layout.positions.values() if depth[p.asn] >= 3]
        if shallow and deep:
            assert min(shallow) > max(deep)

    def test_radii_in_unit_disc(self, layout):
        for position in layout.positions.values():
            assert 0.0 < position.radius <= 1.0
            assert 0.0 <= position.angle < 2 * math.pi + 1e-9

    def test_size_scales_with_address_space(self, layout, medium_graph):
        sizes = [p.size for p in layout.positions.values()]
        assert max(sizes) > min(sizes)

    def test_xy_projection(self, layout):
        position = next(iter(layout.positions.values()))
        x, y = position.xy(center=100, scale=90)
        assert math.hypot(x - 100, y - 100) == pytest.approx(
            90 * position.radius, abs=1e-6
        )


class TestPolarRenderer:
    def test_frames_rendered(self, mini_graph, tmp_path):
        lab = HijackLab(mini_graph, seed=1)
        _, attack = lab.animate(50, 60)
        layout = PolarLayout.compute(mini_graph, plan=lab.plan)
        renderer = PolarRenderer(layout=layout, view=lab.view, size=300)
        frames = render_attack_frames(
            renderer, attack, tmp_path, attacker_asn=60, target_asn=50
        )
        assert len(frames) == attack.generations
        first = frames[0].read_text()
        assert "generation" in first and "<svg" in first

    def test_frame_shows_accept_and_reject_lines(self, mini_graph, tmp_path):
        lab = HijackLab(mini_graph, seed=1)
        _, attack = lab.animate(50, 60)
        layout = PolarLayout.compute(mini_graph, plan=lab.plan)
        renderer = PolarRenderer(layout=layout, view=lab.view, size=300)
        frames = render_attack_frames(
            renderer, attack, tmp_path, attacker_asn=60, target_asn=50
        )
        combined = "".join(path.read_text() for path in frames)
        assert "#c0392b" in combined  # accepted / polluted
        assert "#27ae60" in combined  # rejected


class TestCharts:
    def test_line_chart_contains_series_and_legend(self, tmp_path):
        series = [
            Series.from_pairs("alpha", [(0, 10), (5, 5), (10, 0)]),
            Series.from_pairs("beta", [(0, 8), (10, 1)]),
        ]
        canvas = line_chart(series, title="T", x_label="x", y_label="y")
        text = canvas.to_string()
        assert "alpha" in text and "beta" in text and "T" in text
        assert text.count("<polyline") == 2

    def test_line_chart_empty_series(self):
        canvas = line_chart([], title="T", x_label="x", y_label="y")
        assert "<svg" in canvas.to_string()

    def test_bar_line_chart(self):
        canvas = bar_line_chart(
            {0: 10, 1: 5, 2: 1},
            {0: 100.0, 1: 300.0, 2: 900.0},
            title="F7", x_label="probes", bar_label="attacks", line_label="mean",
        )
        text = canvas.to_string()
        assert text.count("<rect") >= 4  # background + three bars
        assert "<polyline" in text
        assert "F7" in text
