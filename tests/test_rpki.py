"""Unit tests for the simulated RPKI repository."""

import pytest

from repro.prefixes.prefix import Prefix
from repro.registry.roa import ValidationState
from repro.registry.rpki import RpkiError, RpkiRepository


def p(text: str) -> Prefix:
    return Prefix.parse(text)


@pytest.fixture
def repo() -> RpkiRepository:
    repo = RpkiRepository(seed=1)
    repo.create_trust_anchor("ta", [p("0.0.0.0/0")])
    repo.issue_certificate("ta", "rir", None, [p("10.0.0.0/8")])
    repo.issue_certificate("rir", "isp", 65001, [p("10.1.0.0/16")])
    return repo


class TestIssuance:
    def test_single_trust_anchor(self, repo):
        with pytest.raises(RpkiError):
            repo.create_trust_anchor("ta2", [p("0.0.0.0/0")])

    def test_resources_must_nest(self, repo):
        with pytest.raises(RpkiError):
            repo.issue_certificate("isp", "leaf", 65002, [p("11.0.0.0/16")])

    def test_unknown_issuer(self, repo):
        with pytest.raises(RpkiError):
            repo.issue_certificate("nobody", "leaf", 65002, [p("10.1.2.0/24")])

    def test_duplicate_name(self, repo):
        with pytest.raises(RpkiError):
            repo.issue_certificate("ta", "rir", None, [p("10.0.0.0/8")])

    def test_roa_resources_checked(self, repo):
        with pytest.raises(RpkiError):
            repo.publish_roa("isp", p("10.2.0.0/16"), 65001)


class TestValidation:
    def test_published_roa_validates(self, repo):
        repo.publish_roa("isp", p("10.1.0.0/16"), 65001)
        assert repo.validate(p("10.1.0.0/16"), 65001) is ValidationState.VALID

    def test_hijack_is_invalid(self, repo):
        repo.publish_roa("isp", p("10.1.0.0/16"), 65001)
        assert repo.validate(p("10.1.0.0/16"), 64999) is ValidationState.INVALID

    def test_unpublished_space_not_found(self, repo):
        assert repo.validate(p("10.9.0.0/16"), 65001) is ValidationState.NOT_FOUND

    def test_max_length(self, repo):
        repo.publish_roa("isp", p("10.1.0.0/16"), 65001, max_length=20)
        assert repo.validate(p("10.1.16.0/20"), 65001) is ValidationState.VALID
        assert repo.validate(p("10.1.16.0/24"), 65001) is ValidationState.INVALID

    def test_revocation_kills_subtree(self, repo):
        repo.publish_roa("isp", p("10.1.0.0/16"), 65001)
        repo.revoke("rir")
        assert repo.validate(p("10.1.0.0/16"), 65001) is ValidationState.NOT_FOUND

    def test_revoking_leaf_only_kills_its_roas(self, repo):
        repo.issue_certificate("rir", "isp2", 65002, [p("10.2.0.0/16")])
        repo.publish_roa("isp", p("10.1.0.0/16"), 65001)
        repo.publish_roa("isp2", p("10.2.0.0/16"), 65002)
        repo.revoke("isp")
        table = repo.validated_table()
        assert table.validate(p("10.1.0.0/16"), 65001) is ValidationState.NOT_FOUND
        assert table.validate(p("10.2.0.0/16"), 65002) is ValidationState.VALID

    def test_tampered_roa_discarded(self, repo):
        signed = repo.publish_roa("isp", p("10.1.0.0/16"), 65001)
        # Forge the payload without re-signing.
        forged = type(signed)(
            roa=type(signed.roa)(p("10.1.0.0/16"), 64999),
            certificate_name=signed.certificate_name,
            signature=signed.signature,
        )
        repo._roas.append(forged)
        table = repo.validated_table()
        assert table.validate(p("10.1.0.0/16"), 64999) is ValidationState.INVALID

    def test_validated_table_size(self, repo):
        repo.publish_roa("isp", p("10.1.0.0/16"), 65001)
        repo.publish_roa("isp", p("10.1.2.0/24"), 65001)
        assert len(repo.validated_table()) == 2
