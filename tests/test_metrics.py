"""Unit tests for reach/overlap metrics and convergence statistics."""

import pytest

from repro.bgp.convergence import (
    generation_wavefront,
    measure_convergence,
)
from repro.topology.metrics import (
    cone_overlap,
    overlap_matrix,
    provider_redundancy,
    rank_providers_by_added_reach,
)
from repro.topology.view import RoutingView


class TestConeOverlap:
    def test_disjoint_cones(self, mini_graph):
        # 30's cone = {30, 50}; 40's cone = {40, 60}: disjoint.
        assert cone_overlap(mini_graph, 30, 40) == 0

    def test_shared_customer(self, mini_graph):
        # 10's cone and 20's cone both contain AS80.
        assert cone_overlap(mini_graph, 10, 20) == 1

    def test_overlap_matrix_defaults_to_tier1(self, mini_graph):
        matrix = overlap_matrix(mini_graph)
        assert set(matrix) == {(1, 2)}
        # tier-1 cones share 80 (via 10 and 20 respectively).
        assert matrix[(1, 2)] == 1

    def test_overlap_matrix_custom_set(self, mini_graph):
        matrix = overlap_matrix(mini_graph, [10, 20, 30])
        assert (10, 20) in matrix and (10, 30) in matrix
        # 30's cone is inside 10's: full overlap of {30? exclude ends} ->
        # shared = {30, 50} minus endpoints = {50}.
        assert matrix[(10, 30)] == 1


class TestProviderRedundancy:
    def test_single_homed_has_zero_redundancy(self, mini_graph):
        redundancy = provider_redundancy(mini_graph, 50)
        assert redundancy.redundancy == 0.0
        assert redundancy.total_reach > 0

    def test_multihomed_overlapping_providers(self, mini_graph):
        # AS80 buys from 10 and 20; both cones contain 80 itself (removed)
        # but are otherwise disjoint -> low redundancy.
        redundancy = provider_redundancy(mini_graph, 80)
        assert set(redundancy.exclusive_reach) == {10, 20}
        assert 0.0 <= redundancy.redundancy <= 1.0

    def test_overlapping_providers_show_redundancy(self):
        # Two providers that share a second customer: part of the reach
        # multi-homing buys is duplicated.
        from repro.topology.asgraph import ASGraph
        from repro.topology.relationships import Relationship

        graph = ASGraph()
        for asn in (100, 101, 102, 103):
            graph.add_as(asn)
        for provider in (100, 101):
            graph.add_relationship(provider, 102, Relationship.CUSTOMER)
            graph.add_relationship(provider, 103, Relationship.CUSTOMER)
        redundancy = provider_redundancy(graph, 102)
        assert redundancy.total_reach == 3  # {100, 101, 103}
        assert redundancy.exclusive_reach == {100: 1, 101: 1}
        assert redundancy.redundancy == pytest.approx(1 / 3)

    def test_rank_providers_by_added_reach(self, mini_graph):
        ranked = rank_providers_by_added_reach(mini_graph, 50, [10, 40, 30])
        candidates = dict(ranked)
        # 30 is already the provider -> excluded; 10 adds {30?...}
        assert 30 not in candidates
        assert candidates[10] >= candidates[40] or candidates[40] >= 0
        assert ranked[0][1] >= ranked[-1][1]


class TestConvergence:
    def test_stats_over_sampled_origins(self, mini_view):
        stats = measure_convergence(mini_view, sample=6, seed=1)
        assert stats.samples == 6
        assert stats.minimum >= 1
        assert stats.maximum <= 10
        assert stats.within(1, 10) == 1.0
        assert stats.mean > 0

    def test_explicit_origins(self, mini_view):
        stats = measure_convergence(mini_view, origins=[0, 1, 2])
        assert stats.samples == 3

    def test_wavefront_sums_to_reachable(self, mini_view):
        origin = mini_view.node_of(50)
        wavefront = generation_wavefront(mini_view, origin)
        # Acceptances cover every other node at least once (improvements
        # may re-accept, so the sum is >= reachable count).
        assert sum(wavefront) >= len(mini_view) - 1
        assert wavefront[0] >= 1

    def test_paper_band_on_generated_topology(self, medium_graph):
        view = RoutingView.from_graph(medium_graph)
        stats = measure_convergence(view, sample=10, seed=2)
        # Paper: "Convergence is generally reached within 5 to 10
        # generations" — our smaller topology converges at least as fast.
        assert stats.maximum <= 10
