"""Unit tests for the IPv4 prefix value type."""

import pytest

from repro.prefixes.prefix import Prefix, PrefixError


class TestParsing:
    def test_parse_cidr(self):
        prefix = Prefix.parse("203.0.113.0/24")
        assert prefix.network == (203 << 24) | (0 << 16) | (113 << 8)
        assert prefix.length == 24

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.parse("10.0.0.1").length == 32

    def test_parse_strips_whitespace(self):
        assert Prefix.parse("  10.0.0.0/8 ") == Prefix.parse("10.0.0.0/8")

    @pytest.mark.parametrize(
        "text",
        ["10.0.0/8", "10.0.0.256/8", "10.0.0.0/33", "10.0.0.0/x", "a.b.c.d/8",
         "10.0.0.0.0/8", ""],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(PrefixError):
            Prefix.parse(text)

    def test_host_bits_must_be_zero(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/8")

    def test_from_host_masks_host_bits(self):
        prefix = Prefix.from_host((10 << 24) | 0x00FF_FFFF, 8)
        assert prefix == Prefix.parse("10.0.0.0/8")

    def test_round_trip_str(self):
        for text in ("0.0.0.0/0", "10.0.0.0/8", "192.168.1.128/25", "1.2.3.4/32"):
            assert str(Prefix.parse(text)) == text


class TestContainment:
    def test_contains_more_specific(self):
        parent = Prefix.parse("10.0.0.0/8")
        child = Prefix.parse("10.20.0.0/16")
        assert parent.contains(child)
        assert not child.contains(parent)

    def test_contains_self(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains(prefix)
        assert not prefix.is_subprefix_of(prefix)

    def test_disjoint_prefixes(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("11.0.0.0/8")
        assert not a.contains(b)
        assert not a.overlaps(b)

    def test_overlaps_is_symmetric_containment(self):
        parent = Prefix.parse("10.0.0.0/8")
        child = Prefix.parse("10.1.0.0/16")
        assert parent.overlaps(child) and child.overlaps(parent)

    def test_contains_address(self):
        prefix = Prefix.parse("192.168.1.0/24")
        assert prefix.contains_address((192 << 24) | (168 << 16) | (1 << 8) | 77)
        assert not prefix.contains_address((192 << 24) | (168 << 16) | (2 << 8))

    def test_default_route_contains_everything(self):
        assert Prefix(0, 0).contains(Prefix.parse("203.0.113.0/24"))


class TestSizeAndBits:
    def test_size(self):
        assert Prefix.parse("10.0.0.0/8").size() == 1 << 24
        assert Prefix.parse("1.2.3.4/32").size() == 1

    def test_fraction_of_space(self):
        assert Prefix(0, 0).fraction_of_space() == 1.0
        assert Prefix.parse("128.0.0.0/1").fraction_of_space() == 0.5

    def test_first_and_last_address(self):
        prefix = Prefix.parse("192.168.1.0/24")
        assert prefix.last_address() - prefix.first_address() == 255

    def test_bits_string(self):
        assert Prefix.parse("128.0.0.0/2").bits() == "10"
        assert Prefix(0, 0).bits() == ""

    def test_bit_indexing(self):
        prefix = Prefix.parse("192.0.0.0/3")
        assert [prefix.bit(i) for i in range(3)] == [1, 1, 0]
        with pytest.raises(PrefixError):
            prefix.bit(3)


class TestDerivation:
    def test_supernet(self):
        assert Prefix.parse("10.128.0.0/9").supernet() == Prefix.parse("10.0.0.0/8")

    def test_supernet_of_default_route_fails(self):
        with pytest.raises(PrefixError):
            Prefix(0, 0).supernet()

    def test_subnets_split_in_two(self):
        halves = list(Prefix.parse("10.0.0.0/8").subnets())
        assert halves == [Prefix.parse("10.0.0.0/9"), Prefix.parse("10.128.0.0/9")]

    def test_subnets_at_depth(self):
        quarters = list(Prefix.parse("10.0.0.0/8").subnets(10))
        assert len(quarters) == 4
        assert quarters[-1] == Prefix.parse("10.192.0.0/10")

    def test_subnets_reject_shorter_or_too_long(self):
        with pytest.raises(PrefixError):
            list(Prefix.parse("10.0.0.0/8").subnets(7))
        with pytest.raises(PrefixError):
            list(Prefix.parse("1.2.3.4/32").subnets())


class TestOrderingAndHashing:
    def test_sort_order_groups_supernets_first(self):
        prefixes = [
            Prefix.parse("10.0.0.0/9"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("9.0.0.0/8"),
        ]
        assert sorted(prefixes) == [
            Prefix.parse("9.0.0.0/8"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.0.0.0/9"),
        ]

    def test_usable_as_dict_key(self):
        table = {Prefix.parse("10.0.0.0/8"): "a"}
        assert table[Prefix.parse("10.0.0.0/8")] == "a"
