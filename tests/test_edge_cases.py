"""Edge-case coverage across modules: guards, empties, formatting corners."""

import pytest

from repro.bgp.convergence import ConvergenceStats
from repro.bgp.engine import RouteState, RoutingEngine
from repro.core.probe_scaling import ProbeScalingCurve
from repro.registry.dns import format_name, parse_name
from repro.registry.history import HistoricalAuthority
from repro.registry.roa import ValidationState
from repro.prefixes.prefix import Prefix
from repro.viz.charts import Series, line_chart
from repro.viz.svg import SvgCanvas


class TestRouteStateGuards:
    def test_copy_for_is_independent(self, mini_view):
        engine = RoutingEngine(mini_view)
        original = engine.converge(mini_view.node_of(50))
        clone = original.copy_for(origin=0)
        clone.cls[0] = 0
        clone.length[0] = 0
        assert original.cls != clone.cls or original.length != clone.length

    def test_parent_cycle_detected(self):
        state = RouteState.empty(3, origin=0)
        state.parent[1] = 2
        state.parent[2] = 1
        with pytest.raises(RuntimeError, match="cycle"):
            state.path_from(1)

    def test_holders_of_empty_state(self):
        state = RouteState.empty(4, origin=0)
        assert state.holders_of(0) == frozenset()


class TestConvergenceStatsEdges:
    def test_empty_stats(self):
        stats = ConvergenceStats(samples=0, histogram={})
        assert stats.mean == 0.0
        assert stats.maximum == 0
        assert stats.within(1, 10) == 0.0

    def test_within_partial_band(self):
        stats = ConvergenceStats(samples=4, histogram={3: 2, 8: 1, 12: 1})
        assert stats.within(1, 5) == 0.5
        assert stats.within(5, 10) == 0.25
        assert stats.within(1, 12) == 1.0


class TestProbeCurveEdges:
    def test_probes_needed_none_when_unreachable(self):
        curve = ProbeScalingCurve("x", ((4, 0.5), (8, 0.2)))
        assert curve.probes_needed(0.1) is None
        assert curve.probes_needed(0.2) == 8

    def test_miss_rate_at_missing_count(self):
        curve = ProbeScalingCurve("x", ((4, 0.5),))
        with pytest.raises(KeyError):
            curve.miss_rate_at(99)


class TestHistoricalAuthorityWalk:
    def test_nested_observations_any_level_authorizes(self):
        history = HistoricalAuthority()
        history.observe(Prefix.parse("10.0.0.0/8"), 65000)
        history.observe(Prefix.parse("10.1.0.0/16"), 65001)
        # The /24 is covered by both; either observed origin is VALID.
        sub = Prefix.parse("10.1.2.0/24")
        assert history.validate(sub, 65000) is ValidationState.VALID
        assert history.validate(sub, 65001) is ValidationState.VALID
        assert history.validate(sub, 64999) is ValidationState.INVALID

    def test_known_origins_exact_only(self):
        history = HistoricalAuthority()
        history.observe(Prefix.parse("10.0.0.0/8"), 65000)
        assert history.known_origins(Prefix.parse("10.0.0.0/8")) == frozenset({65000})
        assert history.known_origins(Prefix.parse("10.1.0.0/16")) == frozenset()


class TestDnsNameEdges:
    def test_root_round_trip(self):
        assert format_name(parse_name(".")) == "."

    def test_trailing_dot_ignored(self):
        assert parse_name("a.b.") == parse_name("a.b")


class TestVizEdges:
    def test_single_point_series_renders_marker(self):
        canvas = line_chart(
            [Series.from_pairs("one", [(3, 5)])],
            title="t", x_label="x", y_label="y",
        )
        assert "<circle" in canvas.to_string()

    def test_rotated_text(self):
        canvas = SvgCanvas(50, 50)
        canvas.text(10, 10, "v", rotate=-90.0)
        assert "rotate(-90" in canvas.to_string()

    def test_dash_pattern(self):
        canvas = SvgCanvas(50, 50)
        canvas.polyline([(0, 0), (10, 10)], dash="4 2")
        assert 'stroke-dasharray="4 2"' in canvas.to_string()


class TestEngineBlockedOriginIsIgnored:
    def test_origin_cannot_be_blocked(self, mini_view):
        # Blocking the announcing origin itself must not suppress the
        # announcement (blockers act on *received* routes only).
        engine = RoutingEngine(mini_view)
        origin = mini_view.node_of(50)
        state = engine.converge(origin, blocked=[origin])
        assert state.holders_of(origin)
