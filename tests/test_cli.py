"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def topo_file(tmp_path):
    path = tmp_path / "topo.txt"
    assert main(["generate", "--as-count", "400", "-o", str(path)]) == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_generate_writes_caida_file(self, topo_file):
        lines = topo_file.read_text().splitlines()
        assert lines[0].startswith("#")
        assert all("|" in line for line in lines[1:])

    def test_summarize_from_file(self, topo_file, capsys):
        assert main(["summarize", "-i", str(topo_file)]) == 0
        output = capsys.readouterr().out
        assert "ASes: 400" in output
        assert "tier-1:" in output

    def test_attack(self, topo_file, capsys):
        assert main(["attack", "--target", "300", "--attacker", "30",
                     "-i", str(topo_file)]) == 0
        output = capsys.readouterr().out
        assert "polluted ASes:" in output

    def test_attack_backend_knob_changes_nothing(self, topo_file, capsys):
        """--backend array must produce byte-identical command output —
        the backend is a wall-clock knob, never a result knob."""
        assert main(["attack", "--target", "300", "--attacker", "30",
                     "-i", str(topo_file)]) == 0
        reference_out = capsys.readouterr().out
        assert main(["--backend", "array",
                     "attack", "--target", "300", "--attacker", "30",
                     "-i", str(topo_file)]) == 0
        assert capsys.readouterr().out == reference_out

    def test_backend_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--backend", "gpu", "attack",
                                       "--target", "1", "--attacker", "2"])

    def test_attack_subprefix(self, topo_file, capsys):
        assert main(["attack", "--target", "300", "--attacker", "30",
                     "--subprefix", "-i", str(topo_file)]) == 0
        assert "subprefix hijack" in capsys.readouterr().out

    def test_sweep(self, topo_file, capsys):
        assert main(["sweep", "--target", "300", "--sample", "40",
                     "-i", str(topo_file)]) == 0
        output = capsys.readouterr().out
        assert "mean pollution" in output
        assert "CCDF" in output

    def test_figure_writes_json_and_store(self, tmp_path, capsys):
        store_path = tmp_path / "store.sqlite"
        assert main([
            "figure", "tab1",
            "--as-count", "400",
            "--sample", "30",
            "--attacks", "50",
            "--output-dir", str(tmp_path),
            "--store", str(store_path),
        ]) == 0
        data = json.loads((tmp_path / "data" / "tab1.json").read_text())
        assert data["experiment_id"] == "tab1"
        from repro.experiments.store import ResultStore

        with ResultStore(store_path) as store:
            assert store.latest("tab1") is not None

    def test_report(self, tmp_path, capsys):
        output = tmp_path / "EXPERIMENTS.md"
        assert main([
            "report",
            "--as-count", "500",
            "--sample", "40",
            "--attacks", "60",
            "--output", str(output),
            "--output-dir", str(tmp_path / "results"),
        ]) == 0
        text = output.read_text()
        assert "# EXPERIMENTS" in text
        assert "FIG7" in text and "NZ_REHOMING" in text

    def test_attack_validated(self, topo_file, capsys):
        assert main(["attack", "--target", "300", "--attacker", "30",
                     "--validate", "-i", str(topo_file)]) == 0
        assert "polluted ASes:" in capsys.readouterr().out

    def test_validate(self, capsys):
        assert main(["validate", "--cases", "15", "--max-size", "18",
                     "--as-count", "300", "--attacks", "6",
                     "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "differential oracle: OK" in output
        assert "invariant suite: OK" in output
        assert "sweep determinism + cache coherence: OK" in output
        assert "validation passed" in output

    def test_plan(self, capsys):
        # Regions are generator metadata (the CAIDA format cannot carry
        # them), so plan against an in-process generated topology.
        assert main(["plan", "--region", "R00", "--as-count", "400"]) == 0
        assert "Self-interest action plan" in capsys.readouterr().out

    def test_stream_help_smoke(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stream", "--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert "JSONL" in output and "--batch-window" in output

    def test_stream_compile_only_writes_readable_jsonl(self, tmp_path, capsys):
        from repro.stream import Announce, RoaPublish, read_events

        path = tmp_path / "campaign.jsonl"
        assert main(["stream", "--as-count", "400", "--attacks", "2",
                     "--publish-roas", "--compile-only", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out
        events = read_events(path)
        assert any(isinstance(event, Announce) for event in events)
        assert any(isinstance(event, RoaPublish) for event in events)

    def test_stream_replay_emits_json_report(self, tmp_path, capsys):
        stream_path = tmp_path / "campaign.jsonl"
        assert main(["stream", "--as-count", "400", "--attacks", "2",
                     "--publish-roas", "--compile-only", str(stream_path)]) == 0
        report_path = tmp_path / "report.json"
        assert main(["stream", "--as-count", "400", "-i", str(stream_path),
                     "--probes", "top-degree", "--batch-window", "0.5",
                     "--report", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["events"]["submitted"] == 6  # 2 ROAs + 4 announces
        assert payload["events"]["malformed"] == 0
        assert "alarms" in payload["monitor"]
        assert payload["prefixes"], "expected per-prefix final state"

    def test_stream_replay_tolerates_malformed_input_lines(self, tmp_path, capsys):
        stream_path = tmp_path / "campaign.jsonl"
        assert main(["stream", "--as-count", "400", "--attacks", "2",
                     "--publish-roas", "--compile-only", str(stream_path)]) == 0
        lines = stream_path.read_text().splitlines()
        lines.insert(1, "{this is not json")
        lines.insert(3, '{"kind":"teleport","at":1.0}')
        stream_path.write_text("\n".join(lines) + "\n")
        report_path = tmp_path / "report.json"
        assert main(["stream", "--as-count", "400", "-i", str(stream_path),
                     "--report", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["events"]["malformed"] == 2
        assert payload["events"]["applied"] == 6

    def test_stream_fail_on_hijack_exit_code(self, tmp_path, capsys):
        # A hijack campaign with ROAs published: CONFIRMED verdicts fire.
        assert main(["stream", "--as-count", "400", "--attacks", "2",
                     "--publish-roas", "--fail-on-hijack",
                     "--report", str(tmp_path / "r.json")]) == 1
        assert "fail-on-hijack" in capsys.readouterr().err

    def test_stream_fail_on_hijack_passes_clean_stream(self, tmp_path, capsys):
        # Only the legitimate announcements: nothing to page on.
        from repro.stream import read_events, write_events
        from repro.stream.events import Announce, RoaPublish

        stream_path = tmp_path / "campaign.jsonl"
        assert main(["stream", "--as-count", "400", "--attacks", "2",
                     "--publish-roas", "--compile-only", str(stream_path)]) == 0
        events = read_events(stream_path)
        roas = [e for e in events if isinstance(e, RoaPublish)]
        legit = {(roa.prefix, roa.origin_asn) for roa in roas}
        clean = roas + [
            e for e in events
            if isinstance(e, Announce) and (e.prefix, e.origin_asn) in legit
        ]
        write_events(stream_path, clean)
        assert main(["stream", "--as-count", "400", "-i", str(stream_path),
                     "--fail-on-hijack",
                     "--report", str(tmp_path / "r.json")]) == 0

    def test_bench_stream_suite(self, tmp_path, capsys):
        from repro.obs.compare import load_bench

        path = tmp_path / "BENCH_stream.json"
        assert main(["bench", "--suite", "stream", "--profile", "tiny",
                     "-o", str(path)]) == 0
        output = capsys.readouterr().out
        assert "stream bench profile: tiny" in output
        assert "incremental vs full re-convergence" in output
        payload = load_bench(path)
        assert payload["name"] == "stream-tiny"
        assert payload["derived"]["checksums_consistent"] is True
        assert payload["speedups"]["stream_incremental"] > 0

    def test_bench_scale_suite(self, tmp_path, capsys):
        from repro.obs.compare import load_bench

        path = tmp_path / "BENCH_scale.json"
        assert main(["bench", "--suite", "scale", "--profile", "tiny",
                     "-o", str(path)]) == 0
        output = capsys.readouterr().out
        assert "scale bench profile: tiny" in output
        assert "single-origin convergence" in output
        payload = load_bench(path)
        assert payload["name"] == "scale-tiny"
        assert payload["derived"]["checksums_consistent"] is True
        assert payload["speedups"]["single_origin"] > 0

    def test_bench_service_suite(self, tmp_path, capsys):
        from repro.obs.compare import load_bench

        path = tmp_path / "BENCH_service.json"
        assert main(["bench", "--suite", "service", "--profile", "tiny",
                     "-o", str(path)]) == 0
        output = capsys.readouterr().out
        assert "service bench profile: tiny" in output
        assert "shard scaling" in output
        payload = load_bench(path)
        assert payload["name"] == "service-tiny"
        assert payload["derived"]["verdicts_consistent"] is True
        for stats in payload["derived"]["shards"].values():
            assert stats["events_per_s"] > 0
            assert stats["verdicts"] > 0

    def test_bench_writes_valid_bench_file(self, tmp_path, capsys):
        from repro.obs.compare import load_bench

        path = tmp_path / "BENCH_tiny.json"
        assert main(["bench", "--profile", "tiny", "-o", str(path)]) == 0
        output = capsys.readouterr().out
        assert "bench profile: tiny" in output
        assert "metrics overhead" in output
        payload = load_bench(path)
        assert payload["name"] == "tiny"
        assert payload["derived"]["outcomes_consistent"] is True

    def test_metrics_flag_writes_snapshot(self, topo_file, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(["--metrics", str(metrics_path),
                     "attack", "--target", "300", "--attacker", "30",
                     "-i", str(topo_file)]) == 0
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["engine.convergences"] >= 1
        assert snapshot["counters"]["engine.routes_installed"] > 0
