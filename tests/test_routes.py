"""Unit tests for routes and the single-entry RIB."""

import pytest

from repro.bgp.routes import Rib, Route
from repro.prefixes.prefix import Prefix
from repro.topology.relationships import RouteClass

P = Prefix.parse("10.0.0.0/8")


class TestRoute:
    def test_origin_route(self):
        route = Route(P, RouteClass.ORIGIN, (), 7)
        assert route.length == 0
        assert route.origin == 7
        with pytest.raises(ValueError):
            route.next_hop

    def test_learned_route(self):
        route = Route(P, RouteClass.CUSTOMER, (3, 7), 7)
        assert route.length == 2
        assert route.next_hop == 3

    def test_path_must_end_at_origin(self):
        with pytest.raises(ValueError):
            Route(P, RouteClass.CUSTOMER, (3, 4), 7)

    def test_empty_path_only_for_origin_class(self):
        with pytest.raises(ValueError):
            Route(P, RouteClass.PEER, (), 7)

    def test_extend_prepends_and_reclassifies(self):
        origin = Route(P, RouteClass.ORIGIN, (), 7)
        hop1 = origin.extend(7, RouteClass.CUSTOMER)
        assert hop1.path == (7,)
        assert hop1.length == 1
        assert hop1.route_class is RouteClass.CUSTOMER
        hop2 = hop1.extend(3, RouteClass.PROVIDER)
        assert hop2.path == (3, 7)
        assert hop2.route_class is RouteClass.PROVIDER
        assert hop2.origin == 7

    def test_contains_node(self):
        route = Route(P, RouteClass.CUSTOMER, (3, 7), 7)
        assert route.contains_node(3)
        assert route.contains_node(7)
        assert not route.contains_node(4)


class TestRib:
    def test_install_and_get(self):
        rib = Rib()
        route = Route(P, RouteClass.ORIGIN, (), 1)
        rib.install(route)
        assert rib.get(P) is route
        assert P in rib
        assert len(rib) == 1

    def test_one_entry_per_prefix(self):
        rib = Rib()
        rib.install(Route(P, RouteClass.ORIGIN, (), 1))
        replacement = Route(P, RouteClass.CUSTOMER, (2,), 2)
        rib.install(replacement)
        assert rib.get(P) is replacement
        assert len(rib) == 1

    def test_multiple_prefixes(self):
        rib = Rib()
        other = Prefix.parse("11.0.0.0/8")
        rib.install(Route(P, RouteClass.ORIGIN, (), 1))
        rib.install(Route(other, RouteClass.ORIGIN, (), 1))
        assert len(rib) == 2
        assert {route.prefix for route in rib} == {P, other}

    def test_get_missing(self):
        assert Rib().get(P) is None
