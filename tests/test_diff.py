"""Unit tests for the before/after defense comparison view."""

import pytest

from repro.attacks.lab import HijackLab
from repro.defense.deployment import Defense
from repro.defense.strategies import custom_deployment
from repro.registry.publication import PublicationState
from repro.viz.diff import diff_outcomes, render_diff_frame
from repro.viz.layout import PolarLayout


@pytest.fixture
def outcomes(mini_graph):
    lab = HijackLab(mini_graph, seed=1)
    before = lab.origin_hijack(50, 60)  # pollutes {40, 20, 2}
    publication = PublicationState.full(lab.plan)
    defended = lab.with_defense(
        Defense(strategy=custom_deployment("d", [20]), authority=publication.table())
    )
    after = defended.origin_hijack(50, 60)  # pollutes {40}
    return lab, before, after


class TestDiff:
    def test_set_algebra(self, outcomes):
        _lab, before, after = outcomes
        diff = diff_outcomes(before, after)
        assert diff.still_polluted == frozenset({40})
        assert diff.protected == frozenset({20, 2})
        assert diff.newly_polluted == frozenset()
        assert diff.blockers == frozenset({20})

    def test_effectiveness(self, outcomes):
        _lab, before, after = outcomes
        diff = diff_outcomes(before, after)
        assert diff.effectiveness() == pytest.approx(2 / 3)
        assert diff.protected_count == 2

    def test_mismatched_scenarios_rejected(self, outcomes):
        lab, before, _after = outcomes
        other = lab.origin_hijack(50, 70)
        with pytest.raises(ValueError):
            diff_outcomes(before, other)

    def test_render_frame(self, outcomes, tmp_path):
        lab, before, after = outcomes
        diff = diff_outcomes(before, after)
        layout = PolarLayout.compute(lab.graph, plan=lab.plan)
        path = tmp_path / "diff.svg"
        canvas = render_diff_frame(layout, diff, title="filter test", path=path)
        text = canvas.to_string()
        assert path.exists()
        assert "#27ae60" in text  # protected ASes drawn
        assert "#c0392b" in text  # residual pollution drawn
        assert "filter test" in text

    def test_no_defense_diff_is_identity(self, outcomes):
        _lab, before, _after = outcomes
        diff = diff_outcomes(before, before)
        assert diff.protected == frozenset()
        assert diff.still_polluted == before.polluted_asns
        assert diff.effectiveness() == 0.0
