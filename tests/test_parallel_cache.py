"""Unit tests for the convergence cache and baseline-sharing safety.

Covers the cache's contract end to end: content-derived keys invalidate
on topology or policy changes, eviction respects the capacity bound, and
— the property everything else rests on — a hijack pass computed on top
of a cached baseline never mutates it (checksum before/after, plus the
freeze() hard guarantee and an order-independence regression test).
"""

from __future__ import annotations

import pytest

from repro.bgp.engine import RouteState, RoutingEngine
from repro.bgp.policy import PolicyConfig
from repro.parallel.cache import CacheStats, ConvergenceCache, context_digest
from repro.topology.relationships import Relationship
from repro.topology.view import RoutingView

from tests.conftest import build_mini_graph


@pytest.fixture
def engine(mini_view: RoutingView) -> RoutingEngine:
    return RoutingEngine(mini_view)


class TestKeying:
    def test_hit_returns_same_object(self, engine):
        cache = ConvergenceCache()
        first = cache.baseline(engine, 0)
        second = cache.baseline(engine, 0)
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_distinct_origins_are_distinct_entries(self, engine):
        cache = ConvergenceCache()
        a = cache.baseline(engine, 0)
        b = cache.baseline(engine, 1)
        assert a is not b
        assert a.origin == 0 and b.origin == 1
        assert len(cache) == 2

    def test_topology_change_invalidates(self):
        cache = ConvergenceCache()
        graph = build_mini_graph()
        engine = RoutingEngine(RoutingView.from_graph(graph))
        before = cache.baseline(engine, 0)

        graph.add_as(99)
        graph.add_relationship(1, 99, Relationship.CUSTOMER)
        changed = RoutingEngine(RoutingView.from_graph(graph))
        after = cache.baseline(changed, 0)

        assert after is not before
        assert cache.stats.misses == 2
        # The old context's entry is still present (only eviction removes
        # entries), but unreachable through the changed engine.
        assert len(cache) == 2

    def test_policy_change_invalidates(self, mini_view):
        cache = ConvergenceCache()
        default = RoutingEngine(mini_view, PolicyConfig())
        ablated = RoutingEngine(mini_view, PolicyConfig(tier1_shortest_path=False))
        assert cache.baseline(default, 0) is not cache.baseline(ablated, 0)
        assert cache.stats.misses == 2

    def test_context_digest_is_content_derived(self, mini_view):
        rebuilt = RoutingView.from_graph(build_mini_graph())
        policy = PolicyConfig()
        assert context_digest(mini_view, policy) == context_digest(rebuilt, policy)
        assert context_digest(mini_view, policy) != context_digest(
            mini_view, PolicyConfig(max_generations=3)
        )

    def test_backend_switch_is_a_cold_miss(self, mini_view):
        """Regression: the cache key must include the engine's backend
        knob. Entries are shared *objects*; handing an array-backend
        engine a state computed by a reference-backend engine (or vice
        versa) would mask any divergence between the kernels — each
        backend must converge its own baseline so the checksum
        equivalence battery actually compares independent computations."""
        cache = ConvergenceCache()
        reference = RoutingEngine(mini_view)
        array = RoutingEngine(mini_view, backend="array")
        ref_state = cache.baseline(reference, 0)
        assert cache.contains(array, 0) is False
        arr_state = cache.baseline(array, 0)
        assert arr_state is not ref_state
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert len(cache) == 2
        # Same content regardless — the backend contract — but through
        # two distinct entries.
        assert ref_state.checksum() == arr_state.checksum()
        assert context_digest(mini_view, PolicyConfig()) != context_digest(
            mini_view, PolicyConfig(), "array"
        )

    def test_batched_key_space_is_a_cold_miss(self, mini_view):
        """Regression: the cache key must include the batch shape class.
        A ``baseline_batch`` entry and a scalar ``baseline`` entry for the
        same origin are independent computations through different kernel
        paths — aliasing them would let a batched-kernel bug hide behind a
        scalar-converged entry (and vice versa), exactly the masking the
        backend-switch test above guards against."""
        cache = ConvergenceCache()
        engine = RoutingEngine(mini_view, backend="array")
        scalar_state = cache.baseline(engine, 0)
        assert cache.contains(engine, 0, batched=True) is False
        (batched_state,) = cache.baseline_batch(engine, (0,))
        assert batched_state is not scalar_state
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert len(cache) == 2
        # Same content regardless — the batched contract — but through
        # two distinct entries.
        assert scalar_state.checksum() == batched_state.checksum()
        assert context_digest(mini_view, PolicyConfig(), "array") != context_digest(
            mini_view, PolicyConfig(), "array", batched=True
        )
        # Within the batched key space the entry is warm, whatever the
        # batch width at lookup time (the key records the shape class,
        # not the batch size).
        again = cache.baseline_batch(engine, (0, 1))
        assert again[0] is batched_state
        assert cache.stats.hits == 1

    def test_equal_views_share_entries_across_engines(self, mini_view):
        """Two separately compiled views of the same graph hit one entry."""
        cache = ConvergenceCache()
        cache.baseline(RoutingEngine(mini_view), 2)
        rebuilt = RoutingEngine(RoutingView.from_graph(build_mini_graph()))
        cache.baseline(rebuilt, 2)
        assert cache.stats.hits == 1 and len(cache) == 1


class TestEviction:
    def test_capacity_bound_holds(self, engine):
        cache = ConvergenceCache(capacity=4)
        for origin in range(8):
            cache.baseline(engine, origin)
        assert len(cache) == 4
        assert cache.stats.evictions == 4

    def test_lru_order(self, engine):
        cache = ConvergenceCache(capacity=2)
        cache.baseline(engine, 0)
        cache.baseline(engine, 1)
        cache.baseline(engine, 0)  # refresh 0 → 1 is now the LRU entry
        cache.baseline(engine, 2)  # evicts 1
        assert cache.contains(engine, 0) and cache.contains(engine, 2)
        assert not cache.contains(engine, 1)

    def test_evicted_entry_recomputes_identically(self, engine):
        cache = ConvergenceCache(capacity=1)
        checksum = cache.baseline(engine, 0).checksum()
        cache.baseline(engine, 1)
        assert not cache.contains(engine, 0)
        assert cache.baseline(engine, 0).checksum() == checksum

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ConvergenceCache(capacity=0)

    def test_stats_shape(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert stats.as_dict()["hit_rate"] == 0.75
        assert CacheStats().hit_rate == 0.0


class TestBaselineSharing:
    """The bugfix regression layer: cached baselines are immutable."""

    def test_hijack_pass_leaves_baseline_untouched(self, engine):
        cache = ConvergenceCache()
        baseline = cache.baseline(engine, 0)
        checksum = baseline.checksum()
        engine.hijack(0, 5, legitimate=baseline)
        engine.converge(7, base=baseline)
        assert baseline.checksum() == checksum

    def test_cached_baselines_are_frozen(self, engine):
        baseline = ConvergenceCache().baseline(engine, 0)
        assert baseline.is_frozen
        with pytest.raises(TypeError):
            baseline.cls[0] = 0
        with pytest.raises(TypeError):
            baseline.origin_of[3] = 99

    def test_two_hijacks_from_one_baseline_do_not_contaminate(self, engine):
        """The same baseline must serve any number of attacks in any order."""
        cache = ConvergenceCache()
        baseline = cache.baseline(engine, 0)
        first_then_second = (
            engine.hijack(0, 4, legitimate=baseline).polluted_nodes,
            engine.hijack(0, 6, legitimate=baseline).polluted_nodes,
        )
        second_then_first = (
            engine.hijack(0, 6, legitimate=baseline).polluted_nodes,
            engine.hijack(0, 4, legitimate=baseline).polluted_nodes,
        )
        fresh = RoutingEngine(engine.view)
        independent = (
            fresh.hijack(0, 4).polluted_nodes,
            fresh.hijack(0, 6).polluted_nodes,
        )
        assert first_then_second == (second_then_first[1], second_then_first[0])
        assert first_then_second == independent

    def test_verify_mode_detects_mutation(self, engine):
        cache = ConvergenceCache(verify=True)
        baseline = cache.baseline(engine, 0)
        assert cache.baseline(engine, 0) is baseline  # clean hit passes
        # Simulate a buggy caller writing through the freeze guard.
        baseline.length = list(baseline.length)
        baseline.length[1] += 1
        with pytest.raises(RuntimeError, match="mutated"):
            cache.baseline(engine, 0)

    def test_entries_always_record_checksums(self, engine):
        """The insert-time checksum is stored even with verify off — it is
        what whole-cache coherence audits compare against."""
        cache = ConvergenceCache()
        state = cache.baseline(engine, 0)
        [(key, (cached, checksum))] = cache.entries()
        assert key[1] == 0
        assert cached is state
        assert checksum == state.checksum()
        cache.verify_coherence()  # a clean cache audits silently

    def test_freeze_is_idempotent_and_copyable(self, engine):
        state = engine.converge(0)
        frozen = state.freeze().freeze()
        copy = frozen.copy_for(frozen.origin)
        assert not copy.is_frozen
        copy.cls[0] = 0  # the copy is writable again
        assert frozen.checksum() != RouteState.empty(len(engine.view), 0).checksum()
