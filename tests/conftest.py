"""Shared fixtures.

Two topology tiers keep the suite fast:

* ``mini_graph`` — a dozen hand-placed ASes whose routing outcomes are
  small enough to verify by hand in the simulator/engine unit tests;
* ``medium_graph`` / ``medium_lab`` — a ~900-AS generated topology
  (session-scoped) used by analysis-layer and integration tests.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.attacks.lab import HijackLab
from repro.topology.asgraph import ASGraph
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.relationships import Relationship
from repro.topology.view import RoutingView


# Hypothesis profiles: "default" for interactive/CI runs, "fuzz" for the
# nightly long-budget job (.github/workflows/fuzz.yml). Individual tests
# scale their example counts through repro.oracle.strategies.example_budget
# (REPRO_FUZZ_MULTIPLIER); the profile only adjusts reporting knobs so a
# CI failure is reproducible from the printed blob + uploaded database.
settings.register_profile("default", deadline=None)
settings.register_profile(
    "fuzz",
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))


def build_mini_graph() -> ASGraph:
    """A hand-verifiable topology.

    ::

        tier-1:     1 ===== 2          (=== peering)
                   /|        \\
        tier-2:   10          20       (10 -- 20 peer as well)
                  |           |
        mid:      30          40
                  |           |
        stub:     50          60
        stub:     70 (customer of 1)   # depth-1 stub
        stub:     80 (customer of 10 and 20)  # multihomed depth-1

    Depth (tier-1/tier-2 anchored): 10,20 → 0; 30,40,70,80 → 1; 50,60 → 2.
    """
    graph = ASGraph()
    for asn in (1, 2):
        graph.add_as(asn, tier1=True)
    for asn, region in ((10, "west"), (20, "east"), (30, "west"), (40, "east"),
                        (50, "west"), (60, "east"), (70, "west"), (80, "east")):
        graph.add_as(asn, region=region)
    graph.add_relationship(1, 2, Relationship.PEER)
    graph.add_relationship(1, 10, Relationship.CUSTOMER)
    graph.add_relationship(2, 20, Relationship.CUSTOMER)
    graph.add_relationship(10, 20, Relationship.PEER)
    graph.add_relationship(10, 30, Relationship.CUSTOMER)
    graph.add_relationship(20, 40, Relationship.CUSTOMER)
    graph.add_relationship(30, 50, Relationship.CUSTOMER)
    graph.add_relationship(40, 60, Relationship.CUSTOMER)
    graph.add_relationship(1, 70, Relationship.CUSTOMER)
    graph.add_relationship(10, 80, Relationship.CUSTOMER)
    graph.add_relationship(20, 80, Relationship.CUSTOMER)
    return graph


@pytest.fixture
def mini_graph() -> ASGraph:
    return build_mini_graph()


@pytest.fixture
def mini_view(mini_graph: ASGraph) -> RoutingView:
    return RoutingView.from_graph(mini_graph)


MEDIUM_CONFIG = GeneratorConfig.scaled(900, seed=7)


@pytest.fixture(scope="session")
def medium_graph() -> ASGraph:
    return generate_topology(MEDIUM_CONFIG)


@pytest.fixture(scope="session")
def medium_lab(medium_graph: ASGraph) -> HijackLab:
    return HijackLab(medium_graph, seed=7)
