"""Unit tests for the observability layer (repro.obs).

Covers the Metrics sink itself, the instrumentation threaded through the
engine/lab/cache hot paths, the BENCH_*.json schema produced by
``run_bench`` (via the seconds-cheap ``tiny`` profile), and the
``repro.obs.compare`` regression gate in both directions.
"""

import json

import pytest

from repro.attacks.lab import HijackLab
from repro.obs import (
    BATCH_PROFILES,
    NULL_METRICS,
    PROFILES,
    SCALE_PROFILES,
    SCHEMA,
    Metrics,
    NullMetrics,
    SpanStats,
    STREAM_PROFILES,
    env_fingerprint,
    run_batch_bench,
    run_bench,
    run_scale_bench,
    run_stream_bench,
)
from repro.obs.compare import (
    BenchFormatError,
    compare,
    load_bench,
    main as compare_main,
)
from repro.parallel.cache import ConvergenceCache


class TestMetrics:
    def test_count_accumulates(self):
        metrics = Metrics()
        metrics.count("engine.messages")
        metrics.count("engine.messages", 41)
        assert metrics.counters["engine.messages"] == 42

    def test_gauge_overwrites(self):
        metrics = Metrics()
        metrics.gauge("executor.workers", 2)
        metrics.gauge("executor.workers", 4)
        assert metrics.gauges["executor.workers"] == 4

    def test_observe_aggregates_span_stats(self):
        metrics = Metrics()
        for seconds in (0.5, 1.5, 1.0):
            metrics.observe("phase", seconds)
        stats = metrics.spans["phase"]
        assert stats.count == 3
        assert stats.total_s == pytest.approx(3.0)
        assert stats.min_s == pytest.approx(0.5)
        assert stats.max_s == pytest.approx(1.5)
        assert stats.mean_s == pytest.approx(1.0)

    def test_span_uses_injected_clock(self):
        ticks = iter([10.0, 13.5])
        metrics = Metrics(clock=lambda: next(ticks))
        with metrics.span("work"):
            pass
        assert metrics.spans["work"].total_s == pytest.approx(3.5)

    def test_span_records_on_exception(self):
        ticks = iter([0.0, 1.0])
        metrics = Metrics(clock=lambda: next(ticks))
        with pytest.raises(RuntimeError):
            with metrics.span("work"):
                raise RuntimeError("boom")
        assert metrics.spans["work"].count == 1

    def test_snapshot_is_json_serializable_and_detached(self):
        metrics = Metrics()
        metrics.count("a")
        metrics.gauge("b", 2.5)
        metrics.observe("c", 0.1)
        snapshot = metrics.snapshot()
        json.dumps(snapshot)  # must not raise
        snapshot["counters"]["a"] = 99
        assert metrics.counters["a"] == 1

    def test_empty_span_stats_as_dict(self):
        stats = SpanStats()
        assert stats.as_dict() == {
            "count": 0, "total_s": 0.0, "mean_s": 0.0, "min_s": 0.0, "max_s": 0.0,
        }

    def test_write_json_and_clear(self, tmp_path):
        metrics = Metrics()
        metrics.count("x", 7)
        path = metrics.write_json(tmp_path / "nested" / "metrics.json")
        assert json.loads(path.read_text())["counters"]["x"] == 7
        metrics.clear()
        assert metrics.snapshot() == {"counters": {}, "gauges": {}, "spans": {}}


class TestNullMetrics:
    def test_records_nothing(self):
        sink = NullMetrics()
        sink.count("a")
        sink.gauge("b", 1)
        sink.observe("c", 0.5)
        with sink.span("d"):
            pass
        assert sink.snapshot() == {"counters": {}, "gauges": {}, "spans": {}}

    def test_shared_instance_is_disabled(self):
        assert NULL_METRICS.enabled is False
        assert Metrics().enabled is True


class TestInstrumentation:
    def test_engine_counters_through_lab(self, mini_graph):
        metrics = Metrics()
        lab = HijackLab(mini_graph, seed=1, metrics=metrics)
        lab.origin_hijack(50, 60)
        counters = metrics.counters
        assert counters["engine.convergences"] >= 1
        assert counters["engine.messages"] > 0
        assert counters["engine.routes_installed"] > 0
        assert counters["engine.convergence_rounds"] > 0

    def test_lab_sweep_spans(self, mini_graph):
        metrics = Metrics()
        lab = HijackLab(mini_graph, seed=1, metrics=metrics)
        lab.sweep_target(50, transit_only=True, seed=1)
        assert metrics.counters["lab.sweeps"] == 1
        assert metrics.spans["lab.sweep_target"].count == 1

    def test_cache_counters_mirror_stats(self, mini_graph):
        metrics = Metrics()
        cache = ConvergenceCache(capacity=16, metrics=metrics)
        lab = HijackLab(mini_graph, seed=1, cache=cache, metrics=metrics)
        lab.random_attacks(6, seed=1)
        lab.random_attacks(6, seed=1)
        assert metrics.counters["cache.hits"] == cache.stats.hits
        assert metrics.counters["cache.misses"] == cache.stats.misses
        assert metrics.counters.get("cache.evictions", 0) == cache.stats.evictions

    def test_default_lab_uses_null_sink(self, mini_graph):
        lab = HijackLab(mini_graph, seed=1)
        assert lab.metrics is NULL_METRICS
        lab.origin_hijack(50, 60)  # must not record anywhere
        assert NULL_METRICS.snapshot() == {"counters": {}, "gauges": {}, "spans": {}}


class TestBench:
    @pytest.fixture(scope="class")
    def tiny_payload(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_tiny.json"
        payload, written = run_bench("tiny", output=path)
        assert written == path
        return payload

    def test_schema_snapshot(self, tiny_payload):
        # The machine-readable contract docs/performance.md documents:
        # adding a key is fine, but removing or renaming one must bump
        # SCHEMA and this snapshot together.
        assert tiny_payload["schema"] == SCHEMA == "repro-bench/1"
        assert set(tiny_payload) == {
            "schema", "name", "created", "config", "env",
            "timings", "counters", "gauges", "spans", "speedups", "derived",
        }
        assert set(tiny_payload["timings"]) >= {
            "topology_s", "sweep_sequential_s", "sweep_parallel_s",
            "random_cold_s", "random_warm_s",
            "overhead_off_s", "overhead_on_s", "total_s",
        }
        assert set(tiny_payload["speedups"]) == {"sweep_parallel", "cache_warm"}
        assert set(tiny_payload["derived"]) == {
            "metrics_overhead_fraction", "cache_cold_hit_rate",
            "cache_warm_hit_rate", "outcomes_consistent",
        }

    def test_written_file_round_trips_through_load_bench(self, tmp_path):
        payload, path = run_bench("tiny", output=tmp_path / "b.json")
        assert load_bench(path)["name"] == "tiny"
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(payload)
        )

    def test_config_records_resolved_workers(self, tiny_payload):
        assert tiny_payload["config"]["workers_resolved"] >= 1
        assert tiny_payload["config"]["as_count"] == PROFILES["tiny"].as_count

    def test_outcomes_consistent(self, tiny_payload):
        assert tiny_payload["derived"]["outcomes_consistent"] is True

    def test_counters_present(self, tiny_payload):
        assert tiny_payload["counters"]["engine.convergences"] > 0
        assert tiny_payload["gauges"]["executor.workers"] >= 1

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown bench profile"):
            run_bench("nope")

    def test_env_fingerprint_keys(self):
        env = env_fingerprint()
        assert set(env) == {
            "python", "implementation", "platform", "machine", "cpu_count",
        }
        assert env["cpu_count"] >= 1


class TestStreamBench:
    @pytest.fixture(scope="class")
    def tiny_payload(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_stream.json"
        payload, written = run_stream_bench("tiny", output=path)
        assert written == path
        return payload

    def test_schema_snapshot(self, tiny_payload):
        # Same top-level contract as run_bench (docs/performance.md):
        # the compare gate diffs the stream timing keys by name.
        assert tiny_payload["schema"] == SCHEMA
        assert set(tiny_payload) == {
            "schema", "name", "created", "config", "env",
            "timings", "counters", "gauges", "spans", "speedups", "derived",
        }
        assert set(tiny_payload["timings"]) >= {
            "topology_s", "stream_incremental_s", "stream_full_s",
            "stream_replay_s", "total_s",
        }
        assert set(tiny_payload["speedups"]) == {"stream_incremental"}
        assert set(tiny_payload["derived"]) == {
            "events", "checksums_consistent", "events_per_s",
            "replay_events_submitted", "replay_events_coalesced",
            "replay_flushes", "alarms", "detection_latency_time",
            "detection_latency_events",
        }

    def test_name_carries_profile(self, tiny_payload):
        assert tiny_payload["name"] == "stream-tiny"
        assert tiny_payload["config"]["as_count"] == STREAM_PROFILES["tiny"].as_count

    def test_incremental_checksums_consistent(self, tiny_payload):
        assert tiny_payload["derived"]["checksums_consistent"] is True
        assert tiny_payload["speedups"]["stream_incremental"] > 0

    def test_stream_counters_present(self, tiny_payload):
        assert tiny_payload["counters"]["stream.ledger.convergences"] > 0
        assert tiny_payload["counters"]["stream.replay.submitted"] > 0

    def test_round_trips_through_load_bench(self, tmp_path):
        payload, path = run_stream_bench("tiny", output=tmp_path / "s.json")
        assert load_bench(path)["name"] == "stream-tiny"
        assert json.loads(path.read_text()) == json.loads(json.dumps(payload))

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown stream bench profile"):
            run_stream_bench("nope")


class TestScaleBench:
    @pytest.fixture(scope="class")
    def tiny_payload(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_scale.json"
        payload, written = run_scale_bench("tiny", output=path)
        assert written == path
        return payload

    def test_schema_snapshot(self, tiny_payload):
        assert tiny_payload["schema"] == SCHEMA
        assert set(tiny_payload) == {
            "schema", "name", "created", "config", "env",
            "timings", "counters", "gauges", "spans", "speedups", "derived",
        }
        # The keys the scale-smoke CI gate diffs by name.
        assert set(tiny_payload["timings"]) >= {
            "fixture_s", "parse_s", "compile_s",
            "converge_reference_s", "converge_array_s",
            "converge_multi_array_s", "converge_batch_s",
            "hijack_reference_s", "hijack_array_s", "total_s",
        }
        assert set(tiny_payload["speedups"]) == {
            "single_origin", "multi_origin_batch", "hijack",
        }

    def test_name_carries_profile(self, tiny_payload):
        assert tiny_payload["name"] == "scale-tiny"
        assert tiny_payload["config"]["as_count"] == SCALE_PROFILES["tiny"].as_count

    def test_backends_agree_and_speedups_recorded(self, tiny_payload):
        """The bench cross-checks every timed convergence and hijack
        between the backends; a divergence would land here first."""
        assert tiny_payload["derived"]["checksums_consistent"] is True
        assert tiny_payload["speedups"]["single_origin"] > 0
        assert tiny_payload["speedups"]["multi_origin_batch"] > 0
        assert tiny_payload["speedups"]["hijack"] > 0
        assert tiny_payload["derived"]["as_count"] == SCALE_PROFILES["tiny"].as_count
        assert tiny_payload["derived"]["links"] > 0
        batch = tiny_payload["derived"]["batch_origins_timed"]
        assert batch == SCALE_PROFILES["tiny"].batch_origins

    def test_round_trips_through_load_bench(self, tmp_path):
        payload, path = run_scale_bench("tiny", output=tmp_path / "s.json")
        assert load_bench(path)["name"] == "scale-tiny"
        assert json.loads(path.read_text()) == json.loads(json.dumps(payload))

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown scale bench profile"):
            run_scale_bench("nope")


class TestBatchBench:
    @pytest.fixture(scope="class")
    def tiny_payload(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("bench") / "BENCH_batch.json"
        payload, written = run_batch_bench("tiny", output=path)
        assert written == path
        return payload

    def test_schema_snapshot(self, tiny_payload):
        assert tiny_payload["schema"] == SCHEMA
        assert set(tiny_payload) == {
            "schema", "name", "created", "config", "env",
            "timings", "counters", "gauges", "spans", "speedups", "derived",
        }
        # The keys the batch-smoke CI gate diffs by name.
        assert set(tiny_payload["timings"]) >= {
            "topology_s", "sweep_scalar_s", "sweep_batch_s",
            "deploy_cold_s", "deploy_batch_s", "total_s",
        }
        assert set(tiny_payload["speedups"]) == {"sweep_batch", "deployment_warm"}

    def test_name_carries_profile(self, tiny_payload):
        assert tiny_payload["name"] == "batch-tiny"
        assert tiny_payload["config"]["as_count"] == BATCH_PROFILES["tiny"].as_count
        batch = tiny_payload["derived"]["batch_origins"]
        assert batch == BATCH_PROFILES["tiny"].batch_origins

    def test_batched_paths_reproduce_unbatched_outcomes(self, tiny_payload):
        """The bench compares every sweep outcome and ladder evaluation
        item-by-item; a batched divergence would land here first."""
        assert tiny_payload["derived"]["outcomes_consistent"] is True
        assert tiny_payload["derived"]["ladder_consistent"] is True
        assert tiny_payload["speedups"]["sweep_batch"] > 0
        assert tiny_payload["speedups"]["deployment_warm"] > 0
        assert tiny_payload["derived"]["rungs"] == BATCH_PROFILES["tiny"].rungs

    def test_round_trips_through_load_bench(self, tmp_path):
        payload, path = run_batch_bench("tiny", output=tmp_path / "b.json")
        assert load_bench(path)["name"] == "batch-tiny"
        assert json.loads(path.read_text()) == json.loads(json.dumps(payload))

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown batch bench profile"):
            run_batch_bench("nope")


def _payload(name="smoke", **timings):
    base = {
        "sweep_sequential_s": 1.0, "sweep_parallel_s": 0.5,
        "random_cold_s": 2.0, "random_warm_s": 1.0, "total_s": 5.0,
    }
    base.update(timings)
    return {"schema": SCHEMA, "name": name, "timings": base, "env": {}}


class TestCompare:
    def test_synthetic_slowdown_regresses(self):
        baseline = _payload()
        candidate = _payload(sweep_sequential_s=2.0)  # 2x slower
        comparison = compare(baseline, candidate, threshold=0.25)
        assert not comparison.ok
        regressed = comparison.regressions()
        assert [d.key for d in regressed] == ["sweep_sequential_s"]
        assert regressed[0].ratio == pytest.approx(2.0)
        assert "REGRESSED" in comparison.report()

    def test_speedup_and_within_threshold_pass(self):
        faster = compare(_payload(), _payload(sweep_parallel_s=0.25))
        assert faster.ok
        mild = compare(_payload(), _payload(random_cold_s=2.4))  # +20% < 25%
        assert mild.ok

    def test_total_s_not_enforced(self):
        comparison = compare(_payload(), _payload(total_s=50.0))
        assert comparison.ok

    def test_profile_mismatch_rejected(self):
        with pytest.raises(BenchFormatError, match="profile mismatch"):
            compare(_payload(name="smoke"), _payload(name="default"))

    def test_load_bench_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/1", "timings": {}}))
        with pytest.raises(BenchFormatError):
            load_bench(bad)
        missing = tmp_path / "missing.json"
        with pytest.raises(BenchFormatError):
            load_bench(missing)

    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_cli_exit_codes(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _payload())
        slow = self._write(
            tmp_path, "slow.json",
            _payload(sweep_sequential_s=2.0, random_warm_s=2.0),
        )
        fast = self._write(tmp_path, "fast.json", _payload(random_cold_s=1.0))
        assert compare_main([base, fast]) == 0
        assert "PASS" in capsys.readouterr().out
        assert compare_main([base, slow]) == 1
        assert "FAIL" in capsys.readouterr().out
        assert compare_main([base, slow, "--threshold", "1.5"]) == 0
        capsys.readouterr()

    def test_cli_format_error_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        base = self._write(tmp_path, "base.json", _payload())
        assert compare_main([base, str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
