"""Full-CAIDA-scale integration: the paper's Fig. 2 at 42,697 ASes.

Everything below the unit tiers runs on reduced topologies; this module
is the one place the whole pipeline — CAIDA serial-1 fixture on disk,
the real :func:`repro.topology.caida.load_caida` parser, role
resolution, the array convergence backend, the vulnerability profiler —
runs at the paper's actual scale (42,697 ASes, ~139k links). The
headline assertion is Fig. 2's: vulnerability rises sharply with target
depth, so severity must rank tier-1 < depth-1 stubs < depth-2 stub <
the deepest stub, with the multi-homed depth-1 stub no more vulnerable
than the single-homed one.

The sweep takes ~40 s, so the module is marked ``scale`` and gated on
``REPRO_SCALE=1`` — the nightly fuzz workflow sets it; the per-PR gate
never runs it (see docs/testing.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.attacks.lab import HijackLab
from repro.bgp.engine import RoutingEngine
from repro.core.roles import resolve_roles
from repro.core.vulnerability import profile_target
from repro.topology.caida import load_caida
from repro.topology.scalefixture import ScaleFixtureConfig, write_scale_fixture

pytestmark = [
    pytest.mark.scale,
    pytest.mark.skipif(
        not os.environ.get("REPRO_SCALE"),
        reason="full-CAIDA-scale test; set REPRO_SCALE=1 (nightly job) to run",
    ),
]

ATTACKER_SAMPLE = 250


@pytest.fixture(scope="module")
def scale_graph(tmp_path_factory):
    """The deterministic 42,697-AS fixture, via the real CAIDA parser."""
    path = tmp_path_factory.mktemp("scale") / "caida-scale.txt.gz"
    config = ScaleFixtureConfig()
    write_scale_fixture(path, config)
    graph = load_caida(path)
    assert len(graph.asns()) == config.as_count
    return graph


def test_fig2_vulnerability_ranks_by_depth_at_full_scale(scale_graph):
    roles = resolve_roles(scale_graph)
    lab = HijackLab(scale_graph, backend="array", seed=2014)
    severity = {
        label: profile_target(
            lab, asn, label=label, sample=ATTACKER_SAMPLE, seed=99
        ).severity()
        for label, asn in roles.fig2_targets().items()
    }
    deep_label = f"depth-{roles.deep_target_depth} AS"
    single = severity["depth-1 single-homed stub"]
    multi = severity["depth-1 multi-homed stub"]
    # Fig. 2's qualitative content: each step down the hierarchy is
    # strictly more vulnerable, and multihoming helps at equal depth.
    assert severity["tier-1"] < min(single, multi)
    assert max(single, multi) < severity["depth-2 stub"]
    assert severity["depth-2 stub"] < severity[deep_label]
    assert multi <= single


def test_array_backend_checksums_match_reference_at_full_scale(scale_graph):
    """Spot-check the backend contract at the paper's scale: same fixture,
    same origins, identical checksums (the property battery covers the
    small-topology space exhaustively; this pins the 42k-node path)."""
    from repro.topology.view import RoutingView

    view = RoutingView.from_graph(scale_graph)
    reference = RoutingEngine(view)
    array = RoutingEngine(view, backend="array")
    origins = (0, len(view) // 2, len(view) - 1)
    for origin in origins:
        assert reference.converge(origin).checksum() == array.converge(origin).checksum()
    base_ref = reference.converge(origins[0]).freeze()
    base_arr = array.converge(origins[0]).freeze()
    hijacked_ref = reference.converge(origins[1], base=base_ref)
    hijacked_arr = array.converge(origins[1], base=base_arr)
    assert hijacked_ref.checksum() == hijacked_arr.checksum()
